"""Cross-validation of the four trend-inference algorithms.

Exact enumeration is the oracle: BP must match it on trees, Gibbs must
converge to it everywhere (small instances), and propagation must match
it on chains/trees with uniform priors and be directionally correct in
general. These are the correctness guarantees behind experiment F2.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InferenceError
from repro.core.types import Trend
from repro.trend.bp import LoopyBeliefPropagation
from repro.trend.exact import (
    ExactEnumerationInference,
    exact_map_assignment,
)
from repro.trend.gibbs import GibbsSamplingInference
from repro.trend.model import TrendInstance
from repro.trend.propagation import TrendPropagationInference


def chain_instance(potentials=(0.9, 0.8, 0.7), priors=None, evidence=None):
    n = len(potentials) + 1
    priors = priors if priors is not None else np.full(n, 0.5)
    return TrendInstance(
        road_ids=tuple(range(100, 100 + n)),
        prior_rise=np.asarray(priors, dtype=float),
        edges=tuple((i, i + 1, p) for i, p in enumerate(potentials)),
        evidence=evidence if evidence is not None else {100: Trend.RISE},
    )


def loop_instance():
    """A 4-cycle with one observed node."""
    return TrendInstance(
        road_ids=(0, 1, 2, 3),
        prior_rise=np.array([0.5, 0.55, 0.45, 0.5]),
        edges=((0, 1, 0.8), (1, 2, 0.75), (2, 3, 0.7), (3, 0, 0.85)),
        evidence={0: Trend.FALL},
    )


class TestExact:
    def test_chain_marginal_closed_form(self):
        """One edge with agreement p: neighbour marginal equals p."""
        inst = chain_instance(potentials=(0.9,))
        post = ExactEnumerationInference().infer(inst)
        assert post.p_rise(101) == pytest.approx(0.9)

    def test_chain_composes_like_channels(self):
        """Two edges: P = p1*p2 + (1-p1)(1-p2) with uniform priors."""
        inst = chain_instance(potentials=(0.9, 0.8))
        post = ExactEnumerationInference().infer(inst)
        assert post.p_rise(102) == pytest.approx(0.9 * 0.8 + 0.1 * 0.2)

    def test_evidence_clamped(self):
        inst = chain_instance()
        post = ExactEnumerationInference().infer(inst)
        assert post.p_rise(100) == 1.0

    def test_no_evidence_respects_priors_on_isolated_node(self):
        inst = TrendInstance(
            road_ids=(0, 1),
            prior_rise=np.array([0.7, 0.3]),
            edges=(),
            evidence={},
        )
        post = ExactEnumerationInference().infer(inst)
        assert post.p_rise(0) == pytest.approx(0.7)
        assert post.p_rise(1) == pytest.approx(0.3)

    def test_size_cap(self):
        inst = TrendInstance(
            road_ids=tuple(range(30)),
            prior_rise=np.full(30, 0.5),
            edges=(),
            evidence={},
        )
        with pytest.raises(InferenceError, match="exceed"):
            ExactEnumerationInference(max_free_variables=20).infer(inst)

    def test_map_assignment_follows_evidence(self):
        inst = chain_instance(potentials=(0.9, 0.9, 0.9))
        assignment = exact_map_assignment(inst)
        assert all(t is Trend.RISE for t in assignment.values())


class TestLoopyBP:
    def test_matches_exact_on_tree(self):
        inst = chain_instance(potentials=(0.85, 0.7, 0.65),
                              priors=[0.5, 0.6, 0.45, 0.5])
        exact = ExactEnumerationInference().infer(inst)
        bp = LoopyBeliefPropagation(tolerance=1e-10).infer(inst)
        for road in inst.road_ids:
            assert bp.p_rise(road) == pytest.approx(exact.p_rise(road), abs=1e-4)

    def test_close_to_exact_on_small_loop(self):
        inst = loop_instance()
        exact = ExactEnumerationInference().infer(inst)
        bp = LoopyBeliefPropagation().infer(inst)
        for road in inst.road_ids:
            assert bp.p_rise(road) == pytest.approx(exact.p_rise(road), abs=0.05)

    def test_converges(self):
        engine = LoopyBeliefPropagation()
        engine.infer(loop_instance())
        assert engine.last_converged

    def test_no_edges(self):
        inst = TrendInstance(
            road_ids=(0, 1),
            prior_rise=np.array([0.7, 0.3]),
            edges=(),
            evidence={1: Trend.RISE},
        )
        post = LoopyBeliefPropagation().infer(inst)
        assert post.p_rise(0) == pytest.approx(0.7)
        assert post.p_rise(1) == 1.0

    def test_parameter_validation(self):
        with pytest.raises(InferenceError):
            LoopyBeliefPropagation(max_iterations=0)
        with pytest.raises(InferenceError):
            LoopyBeliefPropagation(damping=1.0)
        with pytest.raises(InferenceError):
            LoopyBeliefPropagation(tolerance=0)


class TestGibbs:
    def test_matches_exact_on_loop(self):
        inst = loop_instance()
        exact = ExactEnumerationInference().infer(inst)
        gibbs = GibbsSamplingInference(
            num_samples=20000, burn_in=2000, seed=1
        ).infer(inst)
        for road in inst.road_ids:
            assert gibbs.p_rise(road) == pytest.approx(
                exact.p_rise(road), abs=0.03
            )

    def test_deterministic_given_seed(self):
        inst = chain_instance()
        a = GibbsSamplingInference(num_samples=500, seed=4).infer(inst)
        b = GibbsSamplingInference(num_samples=500, seed=4).infer(inst)
        assert np.array_equal(a.as_array(), b.as_array())

    def test_parameter_validation(self):
        with pytest.raises(InferenceError):
            GibbsSamplingInference(num_samples=0)
        with pytest.raises(InferenceError):
            GibbsSamplingInference(burn_in=-1)

    def test_extreme_potentials_stay_finite(self):
        """Near-zero agreements must not overflow the conditional sigmoid.

        An edge potential of 5e-324 contributes log-odds of about -744,
        far past the ~709 range of exp; the naive ``1/(1+exp(-x))``
        raised overflow warnings and the sampler saw garbage. The stable
        form saturates cleanly, so the chain follows the evidence.
        """
        inst = chain_instance(
            potentials=(5e-324, 5e-324, 5e-324),
            evidence={100: Trend.RISE},
        )
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            post = GibbsSamplingInference(
                num_samples=400, burn_in=100, seed=3
            ).infer(inst)
        arr = post.as_array()
        assert np.all(np.isfinite(arr))
        assert np.all((arr >= 0.0) & (arr <= 1.0))
        # Disagreement potentials: each hop flips the trend almost surely.
        assert post.p_rise(101) < 0.05
        assert post.p_rise(102) > 0.95


class TestPropagation:
    def test_matches_exact_on_chain_with_uniform_priors(self):
        inst = chain_instance(potentials=(0.9, 0.8, 0.7))
        exact = ExactEnumerationInference().infer(inst)
        prop = TrendPropagationInference().infer(inst)
        for road in inst.road_ids:
            assert prop.p_rise(road) == pytest.approx(
                exact.p_rise(road), abs=1e-9
            )

    def test_fall_evidence_pushes_down(self):
        inst = chain_instance(evidence={100: Trend.FALL})
        prop = TrendPropagationInference().infer(inst)
        assert prop.p_rise(101) < 0.5
        assert prop.p_rise(100) == 0.0

    def test_competing_seeds_balance(self):
        """RISE at one end, FALL at the other, symmetric chain."""
        inst = TrendInstance(
            road_ids=(0, 1, 2),
            prior_rise=np.full(3, 0.5),
            edges=((0, 1, 0.8), (1, 2, 0.8)),
            evidence={0: Trend.RISE, 2: Trend.FALL},
        )
        prop = TrendPropagationInference().infer(inst)
        assert prop.p_rise(1) == pytest.approx(0.5)

    def test_closer_seed_dominates(self):
        inst = TrendInstance(
            road_ids=(0, 1, 2, 3),
            prior_rise=np.full(4, 0.5),
            edges=((0, 1, 0.9), (1, 2, 0.9), (2, 3, 0.9)),
            evidence={0: Trend.RISE, 3: Trend.FALL},
        )
        prop = TrendPropagationInference().infer(inst)
        assert prop.p_rise(1) > 0.5  # closer to the RISE seed
        assert prop.p_rise(2) < 0.5

    def test_min_fidelity_truncates(self):
        inst = chain_instance(potentials=(0.6, 0.6, 0.6))  # q = 0.2 per hop
        prop = TrendPropagationInference(min_fidelity=0.1).infer(inst)
        # Two hops: q = 0.04 < 0.1 -> prior only.
        assert prop.p_rise(102) == pytest.approx(0.5)
        assert prop.p_rise(103) == pytest.approx(0.5)

    def test_prior_only_without_evidence(self):
        inst = TrendInstance(
            road_ids=(0, 1),
            prior_rise=np.array([0.7, 0.4]),
            edges=((0, 1, 0.8),),
            evidence={},
        )
        prop = TrendPropagationInference().infer(inst)
        assert prop.p_rise(0) == pytest.approx(0.7)
        assert prop.p_rise(1) == pytest.approx(0.4)


@settings(max_examples=25, deadline=None)
@given(
    potentials=st.lists(
        st.floats(min_value=0.55, max_value=0.95), min_size=1, max_size=6
    ),
    priors=st.lists(
        st.floats(min_value=0.1, max_value=0.9), min_size=2, max_size=7
    ),
    rise=st.booleans(),
)
def test_bp_equals_exact_on_random_chains(potentials, priors, rise):
    """Property: BP is exact on trees for arbitrary priors/potentials."""
    n = min(len(potentials) + 1, len(priors))
    if n < 2:
        return
    inst = TrendInstance(
        road_ids=tuple(range(n)),
        prior_rise=np.asarray(priors[:n]),
        edges=tuple((i, i + 1, potentials[i]) for i in range(n - 1)),
        evidence={0: Trend.RISE if rise else Trend.FALL},
    )
    exact = ExactEnumerationInference().infer(inst)
    bp = LoopyBeliefPropagation(max_iterations=500, tolerance=1e-12).infer(inst)
    for road in inst.road_ids:
        assert bp.p_rise(road) == pytest.approx(exact.p_rise(road), abs=1e-5)


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_all_methods_agree_on_map_direction_for_strong_evidence(data):
    """With strong agreement and one seed, all methods point the same way."""
    n = data.draw(st.integers(min_value=3, max_value=8))
    rise = data.draw(st.booleans())
    inst = TrendInstance(
        road_ids=tuple(range(n)),
        prior_rise=np.full(n, 0.5),
        edges=tuple((i, i + 1, 0.92) for i in range(n - 1)),
        evidence={0: Trend.RISE if rise else Trend.FALL},
    )
    expected = Trend.RISE if rise else Trend.FALL
    exact = ExactEnumerationInference().infer(inst)
    prop = TrendPropagationInference(min_fidelity=0.01).infer(inst)
    bp = LoopyBeliefPropagation().infer(inst)
    for road in range(min(n, 4)):  # within propagation reach
        assert exact.trend(road) is expected
        assert prop.trend(road) is expected
        assert bp.trend(road) is expected
