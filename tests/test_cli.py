"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_info_defaults(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"
        assert args.city == "beijing"

    def test_city_choice(self):
        args = build_parser().parse_args(["--city", "tianjin", "info"])
        assert args.city == "tianjin"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--city", "atlantis", "info"])

    def test_select_options(self):
        args = build_parser().parse_args(
            ["select", "--budget", "9", "--method", "random"]
        )
        assert args.budget == 9
        assert args.method == "random"

    def test_route_requires_endpoints(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", "--from", "0"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_obs_record_options(self):
        args = build_parser().parse_args(
            ["obs", "record", "--out", "run.jsonl", "--rounds", "3"]
        )
        assert args.obs_command == "record"
        assert args.out == "run.jsonl"
        assert args.rounds == 3

    def test_obs_record_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "record"])

    def test_obs_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])

    def test_serve_slo_options(self):
        args = build_parser().parse_args(
            [
                "serve", "--slo-check",
                "--expect-page", "read-availability",
                "--explain", "3", "--metrics-out", "m.json",
            ]
        )
        assert args.command == "serve"
        assert args.slo_check is True
        assert args.expect_page == "read-availability"
        assert args.explain == 3
        assert args.metrics_out == "m.json"

    def test_serve_slo_defaults_off(self):
        args = build_parser().parse_args(["serve"])
        assert args.slo is False
        assert args.slo_check is False
        assert args.expect_page is None
        assert args.explain is None
        assert args.metrics_out is None

    def test_sharded_plan_options(self):
        args = build_parser().parse_args(
            [
                "estimate", "--sharded-plan",
                "--plan-shards", "4", "--plan-workers", "1",
            ]
        )
        assert args.sharded_plan is True
        assert args.plan_shards == 4
        assert args.plan_workers == 1
        serve = build_parser().parse_args(["serve", "--sharded-plan"])
        assert serve.sharded_plan is True
        assert serve.plan_shards == 0
        assert serve.plan_workers == 0

    def test_obs_top_source(self):
        args = build_parser().parse_args(["obs", "top", "metrics.json"])
        assert args.obs_command == "top"
        assert args.source == "metrics.json"

    def test_obs_top_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "top"])


class TestCommands:
    """End-to-end command runs on the (cached) tianjin dataset."""

    def test_info(self, capsys):
        assert main(["--city", "tianjin", "info"]) == 0
        out = capsys.readouterr().out
        assert "synthetic-tianjin" in out
        assert "roads" in out

    def test_select(self, capsys):
        assert main(
            ["--city", "tianjin", "select", "--budget", "5", "--method", "lazy"]
        ) == 0
        out = capsys.readouterr().out
        assert "Selected 5 seeds with lazy-greedy" in out
        assert "marginal gain" in out

    def test_estimate(self, capsys):
        assert main(
            ["--city", "tianjin", "estimate", "--budget", "8", "--show", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "MAE" in out
        assert "historical-average" in out

    def test_route(self, capsys):
        assert main(
            [
                "--city", "tianjin", "route",
                "--from", "0", "--to", "30", "--budget", "8",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Planned ETA" in out
        assert "ETA error" in out

    def test_estimate_sharded_plan(self, capsys):
        assert main(
            [
                "--city", "tianjin", "estimate", "--budget", "8",
                "--show", "4", "--sharded-plan",
                "--plan-shards", "4", "--plan-workers", "1",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "MAE" in out

    def test_plan_shards_requires_sharded_plan(self):
        with pytest.raises(SystemExit, match="sharded-plan"):
            main(
                ["--city", "tianjin", "estimate", "--plan-shards", "4"]
            )

    def test_bad_budget(self):
        with pytest.raises(SystemExit, match="budget"):
            main(["--city", "tianjin", "select", "--budget", "0"])

    def test_bad_hour(self):
        with pytest.raises(SystemExit, match="hour"):
            main(["--city", "tianjin", "estimate", "--hour", "25"])

    def test_unroutable(self):
        with pytest.raises(SystemExit, match="no route"):
            main(
                [
                    "--city", "tianjin", "route",
                    "--from", "0", "--to", "999999", "--budget", "5",
                ]
            )


class TestObsCommands:
    """Record → report → verify round trip through the CLI."""

    def test_record_report_verify(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        metrics = tmp_path / "metrics.prom"
        assert main(
            [
                "--city", "tianjin", "obs", "record",
                "--out", str(out), "--rounds", "2", "--budget", "5",
                "--metrics-out", str(metrics),
            ]
        ) == 0
        recorded = capsys.readouterr().out
        assert "Recorded 2 rounds" in recorded
        assert out.exists()
        assert "# TYPE" in metrics.read_text()

        assert main(["obs", "report", str(out)]) == 0
        report = capsys.readouterr().out
        assert "crowd ms" in report and "trend ms" in report
        assert "2 rounds" in report

        assert main(["obs", "verify", str(out)]) == 0
        assert "round" in capsys.readouterr().out

    def test_record_with_fault_scenario(self, tmp_path, capsys):
        out = tmp_path / "faulty.jsonl"
        assert main(
            [
                "--city", "tianjin", "obs", "record",
                "--out", str(out), "--rounds", "2", "--budget", "5",
                "--scenario", "spam-burst",
            ]
        ) == 0
        assert "Recorded 2 rounds" in capsys.readouterr().out
        assert main(["obs", "verify", str(out)]) == 0

    def test_report_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="does not exist"):
            main(["obs", "report", str(tmp_path / "missing.jsonl")])

    def test_verify_malformed_file(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(SystemExit, match="malformed"):
            main(["obs", "verify", str(bad)])


class TestServeSLOCommands:
    """Serve with the SLO engine on, then feed the metrics to obs top."""

    def test_serve_with_slo_explain_and_metrics(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        assert main(
            [
                "--city", "tianjin", "serve",
                "--rounds", "3", "--budget", "5", "--slo",
                "--explain", "0", "--metrics-out", str(metrics),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "SLO arc over the run" in out
        assert "Explain road 0: fresh" in out
        assert "Produced by round" in out
        assert metrics.exists()

        # The metrics dump drives the live ops dashboard directly.
        assert main(["obs", "top", str(metrics)]) == 0
        top = capsys.readouterr().out
        assert "SLO status" in top
        assert "Read ladder" in top
        assert "read-availability" in top

    def test_serve_expect_page_fails_without_outage(self, tmp_path, capsys):
        assert main(
            [
                "--city", "tianjin", "serve",
                "--rounds", "3", "--budget", "5",
                "--expect-page", "read-availability",
            ]
        ) == 1
        out = capsys.readouterr().out
        assert "SLO CHECK FAILED" in out
        assert "never reached page" in out

    def test_serve_slo_check_healthy_run_passes(self, capsys):
        assert main(
            [
                "--city", "tianjin", "serve",
                "--rounds", "3", "--budget", "5", "--slo-check",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "slo check ok" in out

    def test_obs_top_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="does not exist"):
            main(["obs", "top", str(tmp_path / "missing.json")])


class TestEstimateMap:
    def test_map_flag(self, capsys):
        from repro.cli import main

        assert main(
            ["--city", "tianjin", "estimate", "--budget", "8", "--map"]
        ) == 0
        out = capsys.readouterr().out
        assert "Estimated congestion" in out
