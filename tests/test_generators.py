"""Unit tests for synthetic city generators."""

import pytest

from repro.roadnet.generators import (
    composite_city,
    grid_city,
    metropolitan_city,
    ring_radial_city,
    sized_grid,
    sized_metropolis,
)


class TestGridCity:
    def test_node_and_segment_counts(self):
        net = grid_city(4, 5)
        assert net.num_intersections == 20
        # Undirected streets: 4*(5-1) horizontal + 5*(4-1) vertical = 31.
        assert net.num_segments == 2 * 31

    def test_two_way_pairing(self):
        net = grid_city(3, 3)
        for seg in net.segments():
            twins = [
                other
                for other in net.outgoing(seg.end_node)
                if other.end_node == seg.start_node
            ]
            assert len(twins) == 1, f"road {seg.road_id} lacks a reverse twin"

    def test_arterial_hierarchy(self):
        net = grid_city(9, 9, arterial_every=4)
        counts = net.class_counts()
        assert counts["arterial"] > 0
        assert counts["local"] > counts["arterial"]

    def test_all_arterials_when_every_1(self):
        net = grid_city(3, 3, arterial_every=1)
        assert net.class_counts() == {"arterial": net.num_segments}

    def test_block_size_sets_lengths(self):
        net = grid_city(3, 3, block_m=250.0)
        assert all(s.length_m == pytest.approx(250.0) for s in net.segments())

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            grid_city(1, 5)
        with pytest.raises(ValueError):
            grid_city(3, 3, arterial_every=0)

    def test_deterministic(self):
        a, b = grid_city(5, 5), grid_city(5, 5)
        assert a.road_ids() == b.road_ids()
        assert [s.road_class for s in a.segments()] == [
            s.road_class for s in b.segments()
        ]


class TestRingRadialCity:
    def test_counts(self):
        net = ring_radial_city(rings=3, spokes=8)
        assert net.num_intersections == 1 + 3 * 8
        # Ring streets: 3*8; radial streets: 8*3 (centre link + 2 between rings).
        assert net.num_segments == 2 * (3 * 8 + 8 * 3)

    def test_validation(self):
        ring_radial_city(rings=2, spokes=6).validate()

    def test_ring_roads_are_arterials(self):
        net = ring_radial_city(rings=2, spokes=6)
        ring_segments = [s for s in net.segments() if s.name.startswith("Ring")]
        assert ring_segments
        assert all(s.road_class == "arterial" for s in ring_segments)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ring_radial_city(rings=0)
        with pytest.raises(ValueError):
            ring_radial_city(spokes=2)

    def test_connected(self):
        net = ring_radial_city(rings=3, spokes=8)
        # Every node reachable from the centre.
        reachable = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for seg in net.outgoing(node):
                if seg.end_node not in reachable:
                    reachable.add(seg.end_node)
                    frontier.append(seg.end_node)
        assert reachable == set(net.node_ids())


class TestCompositeCity:
    def test_builds_and_validates(self):
        net = composite_city(core_rows=5, core_cols=5, rings=2, spokes=8)
        net.validate()
        assert net.num_segments > grid_city(5, 5).num_segments

    def test_has_all_three_structures(self):
        net = composite_city(core_rows=5, core_cols=5, rings=2, spokes=8)
        counts = net.class_counts()
        assert counts.get("highway", 0) > 0  # outer rings + links
        assert counts.get("arterial", 0) > 0  # core arterials
        assert counts.get("local", 0) > 0  # core locals

    def test_core_connected_to_periphery(self):
        net = composite_city(core_rows=4, core_cols=4, rings=2, spokes=6)
        outer_node = max(net.node_ids())
        assert net.shortest_path(0, outer_node) is not None


class TestSizedGrid:
    @pytest.mark.parametrize("target", [50, 200, 500, 1000])
    def test_meets_target(self, target):
        net = sized_grid(target)
        assert net.num_segments >= target
        # Not wildly oversized: next grid step is bounded.
        assert net.num_segments <= target * 2 + 40

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            sized_grid(4)


class TestMetropolitanCity:
    def test_small_metro_counts(self):
        # 2x2 districts of 4x4 grids: 4 * (2 * 2 * (4*3)) = 192 local
        # segments plus the stitch arterials between adjacent districts.
        net = metropolitan_city(
            districts_x=2, districts_y=2, district_rows=4, district_cols=4
        )
        assert net.num_intersections == 4 * 16
        per_district = 2 * 2 * (4 * 3)
        assert net.num_segments > 4 * per_district
        stitches = net.num_segments - 4 * per_district
        assert stitches % 2 == 0  # stitch links are two-way pairs

    def test_single_connected_component(self):
        net = metropolitan_city(
            districts_x=3, districts_y=2, district_rows=4, district_cols=4
        )
        # Undirected BFS over shared intersections must reach every road.
        roads = net.road_ids()
        seen = {roads[0]}
        frontier = [roads[0]]
        while frontier:
            road = frontier.pop()
            seg = net.segment(road)
            for node in (seg.start_node, seg.end_node):
                for nxt in net.outgoing(node) + net.incoming(node):
                    if nxt.road_id not in seen:
                        seen.add(nxt.road_id)
                        frontier.append(nxt.road_id)
        assert len(seen) == len(roads)

    def test_stitch_arterials_present_and_named(self):
        net = metropolitan_city(
            districts_x=2, districts_y=2, district_rows=4, district_cols=4
        )
        stitch_names = {
            s.name for s in net.segments() if s.name.startswith("Stitch-")
        }
        assert any(name.startswith("Stitch-E-") for name in stitch_names)
        assert any(name.startswith("Stitch-N-") for name in stitch_names)
        assert all(
            s.road_class == "arterial"
            for s in net.segments()
            if s.name.startswith("Stitch-")
        )

    def test_deterministic(self):
        kwargs = dict(districts_x=2, districts_y=3, district_rows=4, district_cols=5)
        a, b = metropolitan_city(**kwargs), metropolitan_city(**kwargs)
        assert a.road_ids() == b.road_ids()
        assert [s.name for s in a.segments()] == [s.name for s in b.segments()]

    def test_validation(self):
        with pytest.raises(ValueError):
            metropolitan_city(districts_x=0)
        with pytest.raises(ValueError):
            metropolitan_city(district_rows=1)


class TestSizedMetropolis:
    @pytest.mark.parametrize("target", [528, 2000, 5000])
    def test_meets_target(self, target):
        net = sized_metropolis(target)
        assert net.num_segments >= target

    def test_scales_past_100k_roads(self):
        """The XL cold-round benchmark's scale: 100k+ roads, validated."""
        net = sized_metropolis(110_000)
        assert net.num_segments >= 110_000
        net.validate()
        # The super-grid stays near-square so cross-district stitches
        # (and the partitioner's BFS frontiers) don't degenerate.
        assert net.num_segments < 130_000

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            sized_metropolis(100)
