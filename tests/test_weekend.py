"""Tests for weekday/weekend traffic profiles and weekend-aware buckets."""

import numpy as np
import pytest

from repro.history.store import HistoricalSpeedStore
from repro.history.timebuckets import TimeGrid
from repro.traffic.profiles import (
    WEEKEND_PROFILES,
    ProfileSet,
    weekday_weekend_profiles,
)
from repro.traffic.simulator import TrafficSimulator


class TestWeekendProfiles:
    def test_default_has_no_weekend(self):
        assert not ProfileSet().has_weekend

    def test_factory_has_weekend(self):
        assert weekday_weekend_profiles().has_weekend

    def test_weekend_skips_commuter_rush(self):
        profiles = weekday_weekend_profiles()
        rush = 8.25
        for road_class in ("highway", "arterial"):
            weekday = profiles.multiplier(road_class, rush, weekend=False)
            weekend = profiles.multiplier(road_class, rush, weekend=True)
            assert weekend > weekday + 0.15

    def test_weekend_afternoon_dip(self):
        profiles = weekday_weekend_profiles()
        afternoon = profiles.multiplier("arterial", 14.0, weekend=True)
        night = profiles.multiplier("arterial", 3.0, weekend=True)
        assert afternoon < night

    def test_without_weekend_flag_is_identity(self):
        plain = ProfileSet()
        assert plain.multiplier("local", 8.0, weekend=True) == plain.multiplier(
            "local", 8.0, weekend=False
        )

    def test_weekend_table_covers_all_classes(self):
        assert set(WEEKEND_PROFILES) == {
            "highway", "arterial", "collector", "local",
        }


class TestWeekendSimulation:
    @pytest.fixture(scope="class")
    def fields(self, small_network):
        grid = TimeGrid(60)
        weekday_only = TrafficSimulator(small_network, grid)
        with_weekend = TrafficSimulator(
            small_network, grid, profiles=weekday_weekend_profiles()
        )
        a, _ = weekday_only.simulate(0, 7, seed=9)
        b, _ = with_weekend.simulate(0, 7, seed=9)
        return grid, a, b

    def test_weekdays_identical(self, fields):
        grid, plain, weekendised = fields
        monday = list(grid.day_range(0))
        assert np.allclose(
            plain.matrix[monday[0] : monday[-1] + 1],
            weekendised.matrix[monday[0] : monday[-1] + 1],
        )

    def test_weekend_days_differ(self, fields):
        grid, plain, weekendised = fields
        saturday = list(grid.day_range(5))
        assert not np.allclose(
            plain.matrix[saturday[0] : saturday[-1] + 1],
            weekendised.matrix[saturday[0] : saturday[-1] + 1],
        )

    def test_weekend_rush_is_faster(self, fields):
        grid, plain, weekendised = fields
        rush_row = grid.interval_at(5, 8.0)  # Saturday 08:00
        assert (
            weekendised.matrix[rush_row].mean()
            > plain.matrix[rush_row].mean() * 1.2
        )


class TestWeekendAwareBuckets:
    def test_weekend_buckets_reduce_ha_error(self, small_network):
        """With weekend traffic, weekend-aware buckets give a better
        historical average on weekend test days (averaged across
        several weekends — single days are dominated by day-level
        noise, which is the whole point of the paper)."""
        grid_plain = TimeGrid(60)
        grid_aware = TimeGrid(60, distinguish_weekend=True)
        simulator = TrafficSimulator(
            small_network, grid_plain, profiles=weekday_weekend_profiles()
        )
        history, _ = simulator.simulate(0, 35, seed=4)  # 5 full weeks

        store_plain = HistoricalSpeedStore.from_fields(grid_plain, [history])
        store_aware = HistoricalSpeedStore.from_fields(grid_aware, [history])

        errors_plain, errors_aware = [], []
        for seed in (99, 100, 101):
            test, _ = simulator.simulate(40, 2, seed=seed)  # Sat + Sun
            for interval in test.intervals:
                truth = test.speeds_at(interval)
                for road, speed in truth.items():
                    errors_plain.append(
                        abs(store_plain.historical_speed(road, interval) - speed)
                    )
                    errors_aware.append(
                        abs(store_aware.historical_speed(road, interval) - speed)
                    )
        assert np.mean(errors_aware) < np.mean(errors_plain) * 0.95
