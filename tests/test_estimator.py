"""Unit/integration tests for the two-step estimator."""

import numpy as np
import pytest

from repro.core.errors import InferenceError
from repro.core.types import Trend
from repro.speed.estimator import TwoStepEstimator
from repro.speed.hlm import HlmParams
from repro.trend.bp import LoopyBeliefPropagation


@pytest.fixture(scope="module")
def estimator(small_dataset):
    return TwoStepEstimator(
        small_dataset.network, small_dataset.store, small_dataset.graph
    )


@pytest.fixture(scope="module")
def round_data(small_dataset):
    interval = small_dataset.test_day_intervals()[34]
    truth = small_dataset.test.speeds_at(interval)
    seeds = small_dataset.network.road_ids()[::12][:10]
    return interval, truth, {r: truth[r] for r in seeds}


class TestEstimateInterval:
    def test_covers_every_road(self, estimator, small_dataset, round_data):
        interval, _, seed_speeds = round_data
        estimates = estimator.estimate_interval(interval, seed_speeds)
        assert set(estimates) == set(small_dataset.graph.road_ids)

    def test_seeds_pass_through(self, estimator, round_data):
        interval, _, seed_speeds = round_data
        estimates = estimator.estimate_interval(interval, seed_speeds)
        for road, speed in seed_speeds.items():
            assert estimates[road].speed_kmh == speed
            assert estimates[road].is_seed

    def test_non_seeds_marked(self, estimator, round_data):
        interval, _, seed_speeds = round_data
        estimates = estimator.estimate_interval(interval, seed_speeds)
        non_seeds = [e for e in estimates.values() if not e.is_seed]
        assert non_seeds
        for est in non_seeds:
            assert 0.0 <= est.trend_probability <= 1.0
            assert est.speed_kmh > 0

    def test_trend_matches_probability(self, estimator, round_data):
        interval, _, seed_speeds = round_data
        for est in estimator.estimate_interval(interval, seed_speeds).values():
            if est.trend_probability >= 0.5:
                assert est.trend is Trend.RISE
            else:
                assert est.trend is Trend.FALL

    def test_empty_seeds_rejected(self, estimator):
        with pytest.raises(InferenceError):
            estimator.estimate_interval(0, {})

    def test_unknown_seed_rejected(self, estimator):
        with pytest.raises(InferenceError):
            estimator.estimate_interval(0, {999999: 30.0})

    def test_deterministic(self, estimator, round_data):
        interval, _, seed_speeds = round_data
        a = estimator.estimate_interval(interval, seed_speeds)
        b = estimator.estimate_interval(interval, seed_speeds)
        assert a == b

    def test_beats_historical_average(self, small_dataset, estimator, round_data):
        """The headline property: two-step beats HA on its own turf."""
        interval, truth, seed_speeds = round_data
        estimates = estimator.estimate_interval(interval, seed_speeds)
        store = small_dataset.store
        ours, has = [], []
        for road in small_dataset.network.road_ids():
            if road in seed_speeds:
                continue
            ours.append(abs(estimates[road].speed_kmh - truth[road]))
            has.append(abs(store.historical_speed(road, interval) - truth[road]))
        assert np.mean(ours) < np.mean(has)

    def test_pluggable_inference(self, small_dataset, round_data):
        interval, _, seed_speeds = round_data
        bp_estimator = TwoStepEstimator(
            small_dataset.network,
            small_dataset.store,
            small_dataset.graph,
            trend_inference=LoopyBeliefPropagation(max_iterations=30),
        )
        estimates = bp_estimator.estimate_interval(interval, seed_speeds)
        assert len(estimates) == small_dataset.network.num_segments

    def test_influence_cache_reused_across_intervals(
        self, small_dataset, round_data
    ):
        _, _, seed_speeds = round_data
        from repro.history.fidelity import FidelityCacheService

        service = FidelityCacheService()
        estimator = TwoStepEstimator(
            small_dataset.network,
            small_dataset.store,
            small_dataset.graph,
            fidelity_service=service,
        )
        intervals = small_dataset.test_day_intervals()[30:34]
        for interval in intervals:
            estimator.estimate_interval(interval, seed_speeds)
        assert len(estimator._influence_cache) == 1
        # Per-seed influence lives in the shared cross-stage service:
        # at most one miss per (seed, transform) across all intervals
        # (raw fidelity for Step-2 weighting, log-odds for Step-1 votes),
        # everything after the first interval is a hit.
        stats = service.stats()
        assert stats.misses <= 2 * len(seed_speeds)
        assert stats.hits > 0

    def test_ablation_params_accepted(self, small_dataset, round_data):
        interval, _, seed_speeds = round_data
        ablated = TwoStepEstimator(
            small_dataset.network,
            small_dataset.store,
            small_dataset.graph,
            hlm_params=HlmParams(use_trend=False, hierarchical=False),
        )
        estimates = ablated.estimate_interval(interval, seed_speeds)
        assert len(estimates) == small_dataset.network.num_segments


class TestEdgeCases:
    def test_single_seed(self, small_dataset):
        estimator = TwoStepEstimator(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        interval = small_dataset.test_day_intervals()[20]
        road = small_dataset.network.road_ids()[0]
        speed = small_dataset.test.speed(road, interval)
        estimates = estimator.estimate_interval(interval, {road: speed})
        assert len(estimates) == small_dataset.network.num_segments
        assert estimates[road].is_seed

    def test_every_road_as_seed(self, small_dataset):
        estimator = TwoStepEstimator(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        interval = small_dataset.test_day_intervals()[20]
        truth = small_dataset.test.speeds_at(interval)
        estimates = estimator.estimate_interval(interval, dict(truth))
        assert all(e.is_seed for e in estimates.values())
        assert all(
            estimates[r].speed_kmh == truth[r] for r in truth
        )

    def test_zero_speed_seed_handled(self, small_dataset):
        """A fully blocked seed road (0 km/h) must not crash anything."""
        estimator = TwoStepEstimator(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        interval = small_dataset.test_day_intervals()[20]
        roads = small_dataset.network.road_ids()
        seed_speeds = {roads[0]: 0.0, roads[5]: 30.0}
        estimates = estimator.estimate_interval(interval, seed_speeds)
        for road, est in estimates.items():
            if not est.is_seed:
                assert est.speed_kmh >= 2.0

    def test_changing_seed_sets_between_calls(self, small_dataset):
        """The caches must not leak across different seed sets."""
        estimator = TwoStepEstimator(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        interval = small_dataset.test_day_intervals()[20]
        truth = small_dataset.test.speeds_at(interval)
        roads = small_dataset.network.road_ids()
        set_a = {r: truth[r] for r in roads[:5]}
        set_b = {r: truth[r] for r in roads[5:10]}
        a1 = estimator.estimate_interval(interval, set_a)
        b1 = estimator.estimate_interval(interval, set_b)
        a2 = estimator.estimate_interval(interval, set_a)
        assert a1 == a2
        assert {r for r, e in a1.items() if e.is_seed} != {
            r for r, e in b1.items() if e.is_seed
        }


class TestEstimateRoads:
    def test_subset_matches_full_run(self, small_dataset, round_data):
        estimator = TwoStepEstimator(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        interval, _, seed_speeds = round_data
        full = estimator.estimate_interval(interval, seed_speeds)
        subset = small_dataset.network.road_ids()[20:30]
        partial = estimator.estimate_roads(interval, seed_speeds, subset)
        assert set(partial) == set(subset)
        for road in subset:
            assert partial[road] == full[road]

    def test_duplicates_collapse(self, small_dataset, round_data):
        estimator = TwoStepEstimator(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        interval, _, seed_speeds = round_data
        road = small_dataset.network.road_ids()[25]
        partial = estimator.estimate_roads(
            interval, seed_speeds, [road, road, road]
        )
        assert list(partial) == [road]

    def test_validation(self, small_dataset, round_data):
        estimator = TwoStepEstimator(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        interval, _, seed_speeds = round_data
        with pytest.raises(InferenceError, match="at least one road"):
            estimator.estimate_roads(interval, seed_speeds, [])
        with pytest.raises(InferenceError, match="not in correlation graph"):
            estimator.estimate_roads(interval, seed_speeds, [999999])
