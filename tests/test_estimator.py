"""Unit/integration tests for the two-step estimator."""

import numpy as np
import pytest

from repro.core.errors import InferenceError
from repro.core.types import Trend
from repro.speed.estimator import TwoStepEstimator
from repro.speed.hlm import HlmParams
from repro.trend.bp import LoopyBeliefPropagation


@pytest.fixture(scope="module")
def estimator(small_dataset):
    return TwoStepEstimator(
        small_dataset.network, small_dataset.store, small_dataset.graph
    )


@pytest.fixture(scope="module")
def round_data(small_dataset):
    interval = small_dataset.test_day_intervals()[34]
    truth = small_dataset.test.speeds_at(interval)
    seeds = small_dataset.network.road_ids()[::12][:10]
    return interval, truth, {r: truth[r] for r in seeds}


class TestEstimateInterval:
    def test_covers_every_road(self, estimator, small_dataset, round_data):
        interval, _, seed_speeds = round_data
        estimates = estimator.estimate_interval(interval, seed_speeds)
        assert set(estimates) == set(small_dataset.graph.road_ids)

    def test_seeds_pass_through(self, estimator, round_data):
        interval, _, seed_speeds = round_data
        estimates = estimator.estimate_interval(interval, seed_speeds)
        for road, speed in seed_speeds.items():
            assert estimates[road].speed_kmh == speed
            assert estimates[road].is_seed

    def test_non_seeds_marked(self, estimator, round_data):
        interval, _, seed_speeds = round_data
        estimates = estimator.estimate_interval(interval, seed_speeds)
        non_seeds = [e for e in estimates.values() if not e.is_seed]
        assert non_seeds
        for est in non_seeds:
            assert 0.0 <= est.trend_probability <= 1.0
            assert est.speed_kmh > 0

    def test_trend_matches_probability(self, estimator, round_data):
        interval, _, seed_speeds = round_data
        for est in estimator.estimate_interval(interval, seed_speeds).values():
            if est.trend_probability >= 0.5:
                assert est.trend is Trend.RISE
            else:
                assert est.trend is Trend.FALL

    def test_empty_seeds_rejected(self, estimator):
        with pytest.raises(InferenceError):
            estimator.estimate_interval(0, {})

    def test_unknown_seed_rejected(self, estimator):
        with pytest.raises(InferenceError):
            estimator.estimate_interval(0, {999999: 30.0})

    def test_deterministic(self, estimator, round_data):
        interval, _, seed_speeds = round_data
        a = estimator.estimate_interval(interval, seed_speeds)
        b = estimator.estimate_interval(interval, seed_speeds)
        assert a == b

    def test_beats_historical_average(self, small_dataset, estimator, round_data):
        """The headline property: two-step beats HA on its own turf."""
        interval, truth, seed_speeds = round_data
        estimates = estimator.estimate_interval(interval, seed_speeds)
        store = small_dataset.store
        ours, has = [], []
        for road in small_dataset.network.road_ids():
            if road in seed_speeds:
                continue
            ours.append(abs(estimates[road].speed_kmh - truth[road]))
            has.append(abs(store.historical_speed(road, interval) - truth[road]))
        assert np.mean(ours) < np.mean(has)

    def test_pluggable_inference(self, small_dataset, round_data):
        interval, _, seed_speeds = round_data
        bp_estimator = TwoStepEstimator(
            small_dataset.network,
            small_dataset.store,
            small_dataset.graph,
            trend_inference=LoopyBeliefPropagation(max_iterations=30),
        )
        estimates = bp_estimator.estimate_interval(interval, seed_speeds)
        assert len(estimates) == small_dataset.network.num_segments

    def test_influence_cache_reused_across_intervals(
        self, small_dataset, round_data
    ):
        _, _, seed_speeds = round_data
        from repro.history.fidelity import FidelityCacheService

        service = FidelityCacheService()
        estimator = TwoStepEstimator(
            small_dataset.network,
            small_dataset.store,
            small_dataset.graph,
            fidelity_service=service,
        )
        intervals = small_dataset.test_day_intervals()[30:34]
        for interval in intervals:
            estimator.estimate_interval(interval, seed_speeds)
        assert len(estimator._influence_cache) == 1
        # Per-seed influence lives in the shared cross-stage service:
        # at most one miss per (seed, transform) across all intervals
        # (raw fidelity for Step-2 weighting, log-odds for Step-1 votes),
        # everything after the first interval is a hit.
        stats = service.stats()
        assert stats.misses <= 2 * len(seed_speeds)
        assert stats.hits > 0

    def test_ablation_params_accepted(self, small_dataset, round_data):
        interval, _, seed_speeds = round_data
        ablated = TwoStepEstimator(
            small_dataset.network,
            small_dataset.store,
            small_dataset.graph,
            hlm_params=HlmParams(use_trend=False, hierarchical=False),
        )
        estimates = ablated.estimate_interval(interval, seed_speeds)
        assert len(estimates) == small_dataset.network.num_segments


class TestEdgeCases:
    def test_single_seed(self, small_dataset):
        estimator = TwoStepEstimator(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        interval = small_dataset.test_day_intervals()[20]
        road = small_dataset.network.road_ids()[0]
        speed = small_dataset.test.speed(road, interval)
        estimates = estimator.estimate_interval(interval, {road: speed})
        assert len(estimates) == small_dataset.network.num_segments
        assert estimates[road].is_seed

    def test_every_road_as_seed(self, small_dataset):
        estimator = TwoStepEstimator(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        interval = small_dataset.test_day_intervals()[20]
        truth = small_dataset.test.speeds_at(interval)
        estimates = estimator.estimate_interval(interval, dict(truth))
        assert all(e.is_seed for e in estimates.values())
        assert all(
            estimates[r].speed_kmh == truth[r] for r in truth
        )

    def test_zero_speed_seed_handled(self, small_dataset):
        """A fully blocked seed road (0 km/h) must not crash anything."""
        estimator = TwoStepEstimator(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        interval = small_dataset.test_day_intervals()[20]
        roads = small_dataset.network.road_ids()
        seed_speeds = {roads[0]: 0.0, roads[5]: 30.0}
        estimates = estimator.estimate_interval(interval, seed_speeds)
        for road, est in estimates.items():
            if not est.is_seed:
                assert est.speed_kmh >= 2.0

    def test_changing_seed_sets_between_calls(self, small_dataset):
        """The caches must not leak across different seed sets."""
        estimator = TwoStepEstimator(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        interval = small_dataset.test_day_intervals()[20]
        truth = small_dataset.test.speeds_at(interval)
        roads = small_dataset.network.road_ids()
        set_a = {r: truth[r] for r in roads[:5]}
        set_b = {r: truth[r] for r in roads[5:10]}
        a1 = estimator.estimate_interval(interval, set_a)
        b1 = estimator.estimate_interval(interval, set_b)
        a2 = estimator.estimate_interval(interval, set_a)
        assert a1 == a2
        assert {r for r, e in a1.items() if e.is_seed} != {
            r for r, e in b1.items() if e.is_seed
        }


class TestEstimateRoads:
    def test_subset_matches_full_run(self, small_dataset, round_data):
        estimator = TwoStepEstimator(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        interval, _, seed_speeds = round_data
        full = estimator.estimate_interval(interval, seed_speeds)
        subset = small_dataset.network.road_ids()[20:30]
        partial = estimator.estimate_roads(interval, seed_speeds, subset)
        assert set(partial) == set(subset)
        for road in subset:
            assert partial[road] == full[road]

    def test_duplicates_collapse(self, small_dataset, round_data):
        estimator = TwoStepEstimator(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        interval, _, seed_speeds = round_data
        road = small_dataset.network.road_ids()[25]
        partial = estimator.estimate_roads(
            interval, seed_speeds, [road, road, road]
        )
        assert list(partial) == [road]

    def test_validation(self, small_dataset, round_data):
        estimator = TwoStepEstimator(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        interval, _, seed_speeds = round_data
        with pytest.raises(InferenceError, match="at least one road"):
            estimator.estimate_roads(interval, seed_speeds, [])
        with pytest.raises(InferenceError, match="not in correlation graph"):
            estimator.estimate_roads(interval, seed_speeds, [999999])

    def test_unknown_road_error_reports_full_count(self, small_dataset, round_data):
        """The error counts every unknown road, not just the listed few."""
        estimator = TwoStepEstimator(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        interval, _, seed_speeds = round_data
        known = small_dataset.network.road_ids()[:2]
        unknown = list(range(900000, 900008))
        with pytest.raises(
            InferenceError, match=r"8 of 10 requested roads"
        ) as excinfo:
            estimator.estimate_roads(interval, seed_speeds, known + unknown)
        # Only the first five are spelled out.
        assert "900004" in str(excinfo.value)
        assert "900005" not in str(excinfo.value)

    def test_unknown_duplicates_counted_once(self, small_dataset, round_data):
        estimator = TwoStepEstimator(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        interval, _, seed_speeds = round_data
        with pytest.raises(InferenceError, match=r"1 of 1 requested roads"):
            estimator.estimate_roads(
                interval, seed_speeds, [999999, 999999, 999999]
            )


class TestServingPathFlag:
    def test_scalar_reference_selectable(self, small_dataset, round_data):
        """use_plan=False serves through the per-road reference path."""
        interval, _, seed_speeds = round_data
        vec = TwoStepEstimator(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        sca = TwoStepEstimator(
            small_dataset.network,
            small_dataset.store,
            small_dataset.graph,
            use_plan=False,
        )
        ev = vec.estimate_interval(interval, seed_speeds)
        es = sca.estimate_interval(interval, seed_speeds)
        assert set(ev) == set(es)
        for road in ev:
            assert ev[road].speed_kmh == pytest.approx(
                es[road].speed_kmh, abs=1e-9
            )
        # Only the vectorized estimator compiled plans.
        assert vec.plan_cache.stats().misses == 1
        assert sca.plan_cache.stats().total == 0


class TestSpeedEstimateType:
    """The tuple-backed SpeedEstimate keeps dataclass-era guarantees."""

    def make(self, **overrides):
        from repro.core.types import SpeedEstimate

        fields = dict(
            road_id=1,
            interval=0,
            speed_kmh=42.0,
            trend=Trend.RISE,
            trend_probability=0.75,
        )
        fields.update(overrides)
        return SpeedEstimate(**fields)

    def test_constructor_validates_probability(self):
        with pytest.raises(ValueError):
            self.make(trend_probability=1.5)
        with pytest.raises(ValueError):
            self.make(trend_probability=-0.1)

    def test_replace_validates_probability(self):
        """Regression: _replace's _make path calls tuple.__new__
        directly and skipped the range check."""
        est = self.make()
        with pytest.raises(ValueError):
            est.replace(trend_probability=1.5)

    def test_replace_derives_modified_copy(self):
        est = self.make()
        flagged = est.replace(degraded=True)
        assert flagged.degraded and not est.degraded
        assert flagged.speed_kmh == est.speed_kmh
        assert flagged != est and est == self.make()

    def test_immutable(self):
        with pytest.raises(AttributeError):
            self.make().speed_kmh = 3.0
