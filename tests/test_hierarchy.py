"""Unit tests for the deviation hierarchy (shrinkage multilevel means)."""

import pytest

from repro.core.errors import DataError
from repro.core.types import Trend
from repro.speed.hierarchy import DeviationHierarchy


@pytest.fixture(scope="module")
def hierarchy(small_dataset):
    return DeviationHierarchy(
        small_dataset.store, small_dataset.network, kappa=8.0
    )


class TestFitting:
    def test_rise_mean_above_fall_mean(self, hierarchy):
        """Rising roads run above their mean, falling below — by definition."""
        assert hierarchy.global_mean(Trend.RISE) > 1.0
        assert hierarchy.global_mean(Trend.FALL) < 1.0

    def test_ordering_holds_at_every_level(self, hierarchy, small_dataset):
        road = small_dataset.network.road_ids()[10]
        assert hierarchy.road_mean(road, Trend.RISE) > hierarchy.road_mean(
            road, Trend.FALL
        )
        assert hierarchy.class_mean(road, Trend.RISE) > hierarchy.class_mean(
            road, Trend.FALL
        )

    def test_cell_mean_between_extremes(self, hierarchy, small_dataset):
        """Shrunk cell means stay within a plausible deviation band."""
        for road in small_dataset.network.road_ids()[:20]:
            for bucket in (0, 34, 72):
                for trend in (Trend.RISE, Trend.FALL):
                    m = hierarchy.conditional_mean(road, bucket, trend)
                    assert 0.5 < m < 1.6

    def test_cell_counts_sum(self, hierarchy, small_dataset):
        """Rise + fall counts per cell equal the bucket's training rows."""
        store = small_dataset.store
        road = store.road_ids[0]
        for bucket in (0, 50):
            total = hierarchy.cell_count(road, bucket, Trend.RISE) + (
                hierarchy.cell_count(road, bucket, Trend.FALL)
            )
            assert total == store.bucket_count(bucket)

    def test_negative_kappa_rejected(self, small_dataset):
        with pytest.raises(DataError):
            DeviationHierarchy(small_dataset.store, small_dataset.network, kappa=-1)

    def test_unknown_road_rejected(self, hierarchy):
        with pytest.raises(DataError):
            hierarchy.road_mean(999999, Trend.RISE)


class TestShrinkage:
    def test_large_kappa_pulls_to_global(self, small_dataset):
        tight = DeviationHierarchy(
            small_dataset.store, small_dataset.network, kappa=1e9
        )
        road = small_dataset.network.road_ids()[5]
        for trend in (Trend.RISE, Trend.FALL):
            assert tight.conditional_mean(road, 34, trend) == pytest.approx(
                tight.global_mean(trend), abs=1e-3
            )

    def test_zero_kappa_is_raw_cell_mean(self, small_dataset):
        import numpy as np

        raw = DeviationHierarchy(small_dataset.store, small_dataset.network, kappa=0.0)
        store = small_dataset.store
        road = store.road_ids[3]
        bucket = 34
        col = store.road_column(road)
        deviations = store.deviation_matrix()[:, col]
        trends = store.trend_matrix()[:, col]
        rows = store.bucket_rows(bucket)
        mask = rows & (trends == 1)
        if mask.sum() > 0:
            manual = float(np.mean(deviations[mask]))
            assert raw.conditional_mean(road, bucket, Trend.RISE) == pytest.approx(
                manual
            )

    def test_sparse_cells_shrink_more(self, small_dataset):
        """A cell with few observations sits closer to its parent level
        than a cell with many observations does."""
        hierarchy = DeviationHierarchy(
            small_dataset.store, small_dataset.network, kappa=8.0
        )
        store = small_dataset.store
        gaps = []  # (count, |cell - road_level|)
        for road in store.road_ids[:40]:
            for bucket in range(0, 96, 8):
                for trend in (Trend.RISE, Trend.FALL):
                    count = hierarchy.cell_count(road, bucket, trend)
                    gap = abs(
                        hierarchy.conditional_mean(road, bucket, trend)
                        - hierarchy.road_mean(road, trend)
                    )
                    gaps.append((count, gap))
        sparse = [g for c, g in gaps if c <= 1]
        dense = [g for c, g in gaps if c >= 5]
        if sparse and dense:
            assert sum(sparse) / len(sparse) < sum(dense) / len(dense) + 0.05
