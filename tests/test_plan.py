"""Compiled interval plans: differential equivalence and cache behaviour.

The vectorized Step-2 serving path (``repro.speed.plan``) must agree
with the per-road scalar reference (`use_plan=False`) to within 1e-9 on
every query shape — full intervals, partial ``estimate_roads`` queries,
rounds with substituted seed observations, and the ``use_trend=False``
ablation — and its incremental cross-interval updates must be
bit-for-bit identical to evaluating a freshly compiled plan.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.errors import InferenceError
from repro.history.fidelity import FidelityCacheService
from repro.speed.estimator import TwoStepEstimator
from repro.speed.hlm import HierarchicalLinearModel, HlmParams
from repro.speed.plan import IntervalPlanCache

SPEED_TOL = 1e-9


@pytest.fixture(scope="module")
def pair(small_dataset):
    """A vectorized and a scalar estimator sharing one fitted HLM."""
    params = HlmParams()
    hlm = HierarchicalLinearModel.fit(
        small_dataset.store, small_dataset.network, small_dataset.graph, params
    )
    vec = TwoStepEstimator(
        small_dataset.network,
        small_dataset.store,
        small_dataset.graph,
        hlm=hlm,
        hlm_params=params,
    )
    sca = TwoStepEstimator(
        small_dataset.network,
        small_dataset.store,
        small_dataset.graph,
        hlm=hlm,
        hlm_params=params,
        use_plan=False,
    )
    return small_dataset, vec, sca


@pytest.fixture(scope="module")
def pair_no_trend(small_dataset):
    """The same pairing with the trend-conditional prior disabled."""
    params = HlmParams(use_trend=False)
    hlm = HierarchicalLinearModel.fit(
        small_dataset.store, small_dataset.network, small_dataset.graph, params
    )
    vec = TwoStepEstimator(
        small_dataset.network,
        small_dataset.store,
        small_dataset.graph,
        hlm=hlm,
        hlm_params=params,
    )
    sca = TwoStepEstimator(
        small_dataset.network,
        small_dataset.store,
        small_dataset.graph,
        hlm=hlm,
        hlm_params=params,
        use_plan=False,
    )
    return small_dataset, vec, sca


def seed_speeds_for(dataset, seeds, interval, factor=1.0):
    return {r: dataset.test.speed(r, interval) * factor for r in seeds}


def assert_equivalent(got, want):
    assert set(got) == set(want)
    for road, e in want.items():
        v = got[road]
        assert v.speed_kmh == pytest.approx(e.speed_kmh, abs=SPEED_TOL)
        assert v.trend is e.trend
        assert v.trend_probability == pytest.approx(
            e.trend_probability, abs=SPEED_TOL
        )
        assert v.is_seed == e.is_seed
        assert v.road_id == road and v.interval == e.interval


def seed_sets(dataset):
    roads = list(dataset.graph.road_ids)
    return st.sets(st.sampled_from(roads), min_size=1, max_size=12).map(sorted)


class TestDifferentialEquivalence:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_full_interval_matches_scalar(self, pair, data):
        dataset, vec, sca = pair
        seeds = data.draw(seed_sets(dataset))
        interval = data.draw(
            st.sampled_from(dataset.test_day_intervals()), label="interval"
        )
        speeds = seed_speeds_for(dataset, seeds, interval)
        assert_equivalent(
            vec.estimate_interval(interval, speeds),
            sca.estimate_interval(interval, speeds),
        )

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_partial_queries_match_scalar(self, pair, data):
        dataset, vec, sca = pair
        seeds = data.draw(seed_sets(dataset))
        interval = data.draw(
            st.sampled_from(dataset.test_day_intervals()), label="interval"
        )
        roads = data.draw(
            st.lists(
                st.sampled_from(list(dataset.graph.road_ids)),
                min_size=1,
                max_size=30,
            ),
            label="roads",
        )
        speeds = seed_speeds_for(dataset, seeds, interval)
        assert_equivalent(
            vec.estimate_roads(interval, speeds, roads),
            sca.estimate_roads(interval, speeds, roads),
        )

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_substituted_seed_sequences_match_scalar(self, pair, data):
        """Rounds whose seed observations get substituted mid-sequence.

        The seed set stays fixed while some observations change between
        consecutive intervals (what degradation-driven substitution
        produces), which drives the plan's incremental update path.
        """
        dataset, vec, sca = pair
        seeds = data.draw(seed_sets(dataset))
        intervals = dataset.test_day_intervals()
        start = data.draw(
            st.integers(min_value=0, max_value=len(intervals) - 3), label="start"
        )
        substituted = data.draw(
            st.sets(st.sampled_from(seeds)), label="substituted"
        )
        factor = data.draw(
            st.floats(min_value=0.5, max_value=1.5), label="factor"
        )
        for step, interval in enumerate(intervals[start : start + 3]):
            speeds = seed_speeds_for(dataset, seeds, interval)
            if step > 0:
                for road in substituted:
                    speeds[road] *= factor
            assert_equivalent(
                vec.estimate_interval(interval, speeds),
                sca.estimate_interval(interval, speeds),
            )

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_use_trend_false_matches_scalar(self, pair_no_trend, data):
        dataset, vec, sca = pair_no_trend
        seeds = data.draw(seed_sets(dataset))
        interval = data.draw(
            st.sampled_from(dataset.test_day_intervals()), label="interval"
        )
        speeds = seed_speeds_for(dataset, seeds, interval)
        assert_equivalent(
            vec.estimate_interval(interval, speeds),
            sca.estimate_interval(interval, speeds),
        )


class TestIncrementalUpdates:
    def _fresh(self, dataset):
        return TwoStepEstimator(
            dataset.network, dataset.store, dataset.graph, hlm_params=HlmParams()
        )

    def test_incremental_identical_to_cold_plan(self, small_dataset):
        """Warm incremental evaluation is bit-for-bit the cold result."""
        seeds = list(small_dataset.graph.road_ids)[::7][:8]
        intervals = small_dataset.test_day_intervals()[:4]
        warm = self._fresh(small_dataset)
        warm_results = {}
        for interval in intervals:
            speeds = seed_speeds_for(small_dataset, seeds, interval)
            warm_results[interval] = warm.estimate_interval(interval, speeds)
        # Each interval cold, in a fresh estimator with no prior state.
        for interval in intervals:
            cold = self._fresh(small_dataset)
            speeds = seed_speeds_for(small_dataset, seeds, interval)
            cold_result = cold.estimate_interval(interval, speeds)
            assert warm_results[interval] == cold_result

    def test_repeated_observations_reuse_cached_solution(self, small_dataset):
        est = self._fresh(small_dataset)
        seeds = list(small_dataset.graph.road_ids)[::9][:6]
        interval = small_dataset.test_day_intervals()[10]
        speeds = seed_speeds_for(small_dataset, seeds, interval)
        first = est.estimate_interval(interval, speeds)
        second = est.estimate_interval(interval, dict(speeds))
        assert first == second
        stats = est.plan_cache.stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_changing_one_seed_changes_only_its_influence(self, small_dataset):
        """A single substituted observation leaves unrelated roads exact."""
        est = self._fresh(small_dataset)
        seeds = list(small_dataset.graph.road_ids)[::9][:6]
        interval = small_dataset.test_day_intervals()[10]
        speeds = seed_speeds_for(small_dataset, seeds, interval)
        base = est.estimate_interval(interval, speeds)
        bumped = dict(speeds)
        bumped[seeds[0]] *= 1.2
        shifted = est.estimate_interval(interval, bumped)
        influence = est.influence_index(frozenset(seeds))
        for road, estimate in shifted.items():
            if road == seeds[0]:
                continue
            touched = seeds[0] in influence.get(road, {})
            if not touched:
                assert estimate.speed_kmh == base[road].speed_kmh


class TestPlanCache:
    def test_lru_evicts_oldest_and_counts(self, small_dataset):
        cache = IntervalPlanCache(maxsize=2)
        est = TwoStepEstimator(
            small_dataset.network,
            small_dataset.store,
            small_dataset.graph,
            hlm_params=HlmParams(),
            plan_cache=cache,
        )
        seeds = list(small_dataset.graph.road_ids)[:5]
        intervals = small_dataset.test_day_intervals()[:3]
        for interval in intervals:  # three distinct buckets -> eviction
            est.estimate_interval(
                interval, seed_speeds_for(small_dataset, seeds, interval)
            )
        stats = cache.stats()
        assert stats.misses == 3 and stats.evictions == 1 and stats.size == 2
        # Oldest bucket was evicted: estimating it again recompiles.
        est.estimate_interval(
            intervals[0], seed_speeds_for(small_dataset, seeds, intervals[0])
        )
        assert cache.stats().misses == 4

    def test_maxsize_validated(self):
        with pytest.raises(InferenceError):
            IntervalPlanCache(maxsize=0)

    def test_invalidated_with_fidelity_service(self, small_dataset):
        fidelity = FidelityCacheService()
        cache = IntervalPlanCache(maxsize=8).attach(fidelity)
        est = TwoStepEstimator(
            small_dataset.network,
            small_dataset.store,
            small_dataset.graph,
            hlm_params=HlmParams(),
            fidelity_service=fidelity,
            plan_cache=cache,
        )
        seeds = list(small_dataset.graph.road_ids)[:4]
        interval = small_dataset.test_day_intervals()[0]
        speeds = seed_speeds_for(small_dataset, seeds, interval)
        est.estimate_interval(interval, speeds)
        assert cache.stats().size == 1
        fidelity.invalidate()
        assert cache.stats().size == 0
        # Serving again after invalidation recompiles and still works.
        result = est.estimate_interval(interval, speeds)
        assert len(result) == len(small_dataset.graph.road_ids)

    def test_distinct_seed_sets_get_distinct_plans(self, small_dataset):
        est = TwoStepEstimator(
            small_dataset.network,
            small_dataset.store,
            small_dataset.graph,
            hlm_params=HlmParams(),
        )
        interval = small_dataset.test_day_intervals()[0]
        roads = list(small_dataset.graph.road_ids)
        est.estimate_interval(
            interval, seed_speeds_for(small_dataset, roads[:4], interval)
        )
        est.estimate_interval(
            interval, seed_speeds_for(small_dataset, roads[4:8], interval)
        )
        assert est.plan_cache.stats().misses == 2


class TestDegradedPathDifferential:
    """The degraded path must not diverge between plan and scalar.

    Fault-forced seed substitution flows through ``run_round``'s
    degradation machinery; the ``degraded`` flags, substitution map and
    widened uncertainty bands must be identical whether Step-2 serving
    used the compiled interval plan or the per-road scalar reference.
    """

    def _system(self, dataset, use_plan):
        from repro.core.config import PipelineConfig
        from repro.core.pipeline import SpeedEstimationSystem

        system = SpeedEstimationSystem.from_parts(
            dataset.network,
            dataset.store,
            dataset.graph,
            PipelineConfig(use_interval_plan=use_plan),
        )
        system.select_seeds(8)
        return system

    def _platform(self):
        from repro.crowd.platform import CrowdsourcingPlatform
        from repro.crowd.workers import WorkerPool, WorkerPoolParams
        from repro.faults import get_scenario, inject_faults

        pool = WorkerPool.sample(
            60, WorkerPoolParams(noise_std_frac=0.10), seed=7
        )
        pool = inject_faults(pool, get_scenario("outage-window"))
        return CrowdsourcingPlatform(pool, workers_per_task=3)

    def test_degraded_flags_and_bands_match_scalar(self, small_dataset):
        from repro.speed.uncertainty import UncertaintyModel

        fast = self._system(small_dataset, use_plan=True)
        slow = self._system(small_dataset, use_plan=False)
        assert fast.seeds == slow.seeds
        platform_fast = self._platform()
        platform_slow = self._platform()
        intervals = small_dataset.test_day_intervals()
        fast_bands_model = UncertaintyModel(
            fast.estimator, small_dataset.store
        )
        slow_bands_model = UncertaintyModel(
            slow.estimator, small_dataset.store
        )
        saw_substitution = False
        # The outage window spans several rounds; drive far enough to
        # cover healthy rounds, the outage, and the recovery after it.
        for i in range(6):
            interval = intervals[i]
            fast_out = fast.run_round(
                interval, small_dataset.test, platform_fast, crowd_seed=i
            )
            slow_out = slow.run_round(
                interval, small_dataset.test, platform_slow, crowd_seed=i
            )
            assert fast_out.substituted == slow_out.substituted
            assert fast_out.degraded == slow_out.degraded
            saw_substitution |= bool(fast_out.substituted)
            fast_estimates = fast_out.estimates
            slow_estimates = slow_out.estimates
            assert set(fast_estimates) == set(slow_estimates)
            for road, fast_estimate in fast_estimates.items():
                slow_estimate = slow_estimates[road]
                assert fast_estimate.degraded == slow_estimate.degraded
                assert fast_estimate.speed_kmh == pytest.approx(
                    slow_estimate.speed_kmh, abs=SPEED_TOL
                )
            seeds = {r: fast_out.observed.get(r) for r in fast.seeds}
            seeds = {r: v for r, v in seeds.items() if v is not None}
            fast_bands = fast_bands_model.bands_for(fast_estimates, seeds)
            slow_bands = slow_bands_model.bands_for(slow_estimates, seeds)
            assert set(fast_bands) == set(slow_bands)
            for road, fast_band in fast_bands.items():
                slow_band = slow_bands[road]
                assert fast_band.std_kmh == pytest.approx(
                    slow_band.std_kmh, abs=SPEED_TOL
                )
                assert fast_band.lower_kmh == pytest.approx(
                    slow_band.lower_kmh, abs=SPEED_TOL
                )
                assert fast_band.upper_kmh == pytest.approx(
                    slow_band.upper_kmh, abs=SPEED_TOL
                )
        # The scenario must actually have exercised the degraded path.
        assert saw_substitution


class TestPosteriorArrays:
    def test_estimates_independent_of_seed_order(self, pair):
        dataset, vec, _ = pair
        seeds = list(dataset.graph.road_ids)[::11][:5]
        interval = dataset.test_day_intervals()[5]
        forward = seed_speeds_for(dataset, seeds, interval)
        backward = {r: forward[r] for r in reversed(seeds)}
        assert vec.estimate_interval(interval, forward) == vec.estimate_interval(
            interval, backward
        )


class TestGraphDeltaEviction:
    """Regression: delta-driven row invalidation must evict stale plans.

    ``IntervalPlanCache.attach`` historically registered only the
    whole-graph listener, so ``invalidate_rows`` dropped fidelity rows
    while compiled plans kept serving coefficients derived from the
    pre-delta graph. The cache now evicts exactly the plans whose seed
    rows dropped, and a warm estimator afterwards matches a cold one
    built from the mutated graph bit for bit.
    """

    def _build(self, dataset):
        from repro.history.correlation import CorrelationGraph

        # A private, mutable copy of the session graph.
        graph = CorrelationGraph(dataset.graph.road_ids, list(dataset.graph.edges()))
        params = HlmParams()
        hlm = HierarchicalLinearModel.fit(
            dataset.store, dataset.network, graph, params
        )
        fidelity = FidelityCacheService()
        cache = IntervalPlanCache(maxsize=8).attach(fidelity)
        est = TwoStepEstimator(
            dataset.network,
            dataset.store,
            graph,
            hlm=hlm,
            hlm_params=params,
            fidelity_service=fidelity,
            plan_cache=cache,
        )
        return graph, hlm, params, fidelity, cache, est

    def _delta_around(self, graph, road):
        from repro.history.correlation import CorrelationEdge
        from repro.history.incremental import GraphDelta

        edge = graph.neighbours(road)[0]
        new_weight = 0.93 if abs(edge.agreement - 0.93) > 1e-9 else 0.88
        return GraphDelta(
            added=(),
            removed=(),
            reweighted=(CorrelationEdge(edge.road_u, edge.road_v, new_weight),),
        )

    def test_row_invalidation_evicts_stale_plan(self, small_dataset):
        from repro.seeds.lazy import lazy_greedy_select
        from repro.seeds.objective import SeedSelectionObjective
        from repro.seeds.reselect import IncrementalCelfSelector

        graph, hlm, params, fidelity, cache, est = self._build(small_dataset)
        objective = SeedSelectionObjective(graph, fidelity_service=fidelity)
        selector = IncrementalCelfSelector(objective)
        seeds = list(selector.select(6).seeds)
        interval = small_dataset.test_day_intervals()[0]
        speeds = seed_speeds_for(small_dataset, seeds, interval)
        warm_before = est.estimate_interval(interval, speeds)
        assert cache.stats().size == 1

        delta = self._delta_around(graph, seeds[0])
        graph.apply_delta(delta)
        dropped = fidelity.apply_graph_delta(graph, delta)
        assert seeds[0] in dropped

        stats = cache.stats()
        assert stats.row_evictions == 1  # the stale plan is gone...
        assert stats.flushes == 0  # ...without a wholesale flush
        assert stats.size == 0

        # Re-selection through the warm CELF selector matches a cold run
        # against the mutated graph.
        warm_sel = selector.select(6)
        cold_sel = lazy_greedy_select(
            SeedSelectionObjective(graph, fidelity_service=FidelityCacheService()), 6
        )
        assert warm_sel.seeds == cold_sel.seeds
        assert warm_sel.gains == cold_sel.gains

        # And serving through the warm estimator is bit-identical to a
        # cold compile from the mutated graph.
        new_seeds = list(warm_sel.seeds)
        new_speeds = seed_speeds_for(small_dataset, new_seeds, interval)
        warm = est.estimate_interval(interval, new_speeds)
        cold_est = TwoStepEstimator(
            small_dataset.network,
            small_dataset.store,
            graph,
            hlm=hlm,
            hlm_params=params,
            fidelity_service=FidelityCacheService(),
            plan_cache=IntervalPlanCache(maxsize=8),
        )
        cold = cold_est.estimate_interval(interval, new_speeds)
        assert set(warm) == set(cold)
        for road in warm:
            assert warm[road].speed_kmh == cold[road].speed_kmh
        # Sanity: the delta actually moved at least one estimate, so the
        # pre-delta plan really was stale.
        assert any(
            warm_before[r].speed_kmh != warm[r].speed_kmh for r in warm
        ) or new_seeds != seeds

    def test_untouched_plans_survive_delta(self, small_dataset):
        graph, hlm, params, fidelity, cache, est = self._build(small_dataset)
        roads = list(graph.road_ids)
        interval = small_dataset.test_day_intervals()[0]
        set_a = roads[:4]
        set_b = roads[-4:]
        est.estimate_interval(
            interval, seed_speeds_for(small_dataset, set_a, interval)
        )
        est.estimate_interval(
            interval, seed_speeds_for(small_dataset, set_b, interval)
        )
        assert cache.stats().size == 2

        delta = self._delta_around(graph, set_a[0])
        graph.apply_delta(delta)
        dropped = set(fidelity.apply_graph_delta(graph, delta))

        survivors = [
            s for s in (set_a, set_b) if not dropped.intersection(s)
        ]
        stats = cache.stats()
        assert stats.flushes == 0
        assert stats.size == len(survivors)
        assert stats.row_evictions == 2 - len(survivors)


class TestEvictionIndexPinning:
    """The seed->keys inverted index must evict *exactly* the set a
    linear scan over every cached structure would."""

    def _planner(self, pair):
        from repro.speed.plan import IntervalPlanner

        dataset, vec, _ = pair
        return dataset, IntervalPlanner(
            dataset.store,
            dataset.network,
            vec.hlm,
            list(dataset.graph.road_ids),
        )

    def _compile(self, planner, roads, seeds):
        seeds = tuple(seeds)
        influence = {roads[0]: {seeds[0]: 0.9}}
        return planner.compile(seeds, 0, influence)

    def test_indexed_eviction_matches_linear_scan(self, pair):
        dataset, planner = self._planner(pair)
        roads = list(dataset.graph.road_ids)
        seed_sets = [
            tuple(roads[:4]),
            tuple(roads[2:6]),  # overlaps the first
            tuple(roads[50:54]),
            tuple(roads[100:103]),
        ]
        drops = [
            set(),
            {roads[3]},              # hits two overlapping sets
            {roads[2], roads[101]},  # hits sets in different regions
            {roads[110]},            # no structure uses this road
            {roads[0], roads[50], roads[100]},  # hits three sets
            {-1, 10**9},             # roads the planner never saw
        ]
        for drop in drops:
            plans = [self._compile(planner, roads, s) for s in seed_sets]
            live = set(planner._structures.keys())
            assert live == set(seed_sets)
            expected = {k for k in live if set(k) & drop}  # reference scan
            planner.evict_structures(drop)
            assert set(planner._structures.keys()) == live - expected
            del plans

    def test_evict_all_clears_index(self, pair):
        dataset, planner = self._planner(pair)
        roads = list(dataset.graph.road_ids)
        plan = self._compile(planner, roads, roads[:3])
        assert planner._keys_by_seed
        planner.evict_structures(None)
        assert not planner._keys_by_seed
        assert not list(planner._structures.keys())
        # Recompiling after a full evict re-registers cleanly.
        plan = self._compile(planner, roads, roads[:3])
        assert tuple(roads[:3]) in planner._structures
        del plan

    def test_garbage_collected_structures_are_pruned(self, pair):
        import gc

        dataset, planner = self._planner(pair)
        roads = list(dataset.graph.road_ids)
        plan = self._compile(planner, roads, roads[:3])
        del plan
        gc.collect()
        assert tuple(roads[:3]) not in planner._structures
        # Index may still hold the dead key; eviction filters it
        # without error and prunes it.
        planner.evict_structures({roads[0]})
        assert all(
            tuple(roads[:3]) not in keys
            for keys in planner._keys_by_seed.values()
        )
