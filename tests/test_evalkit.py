"""Unit tests for metrics, reporting and the evaluation harness."""

import pytest

from repro.baselines.historical import HistoricalAverageBaseline
from repro.core.errors import DataError
from repro.core.types import Trend
from repro.evalkit.harness import Evaluation, TwoStepMethod, intervals_for_day
from repro.evalkit.metrics import (
    improvement_percent,
    speed_errors,
    trend_metrics,
)
from repro.evalkit.reporting import fmt, fmt_pct, fmt_speedup, format_table
from repro.speed.estimator import TwoStepEstimator


class TestSpeedErrors:
    def test_known_values(self):
        errors = speed_errors([10.0, 20.0], [12.0, 16.0])
        assert errors.mae == pytest.approx(3.0)
        assert errors.rmse == pytest.approx((0.5 * (4 + 16)) ** 0.5)
        assert errors.mape == pytest.approx(0.5 * (2 / 12 + 4 / 16))
        assert errors.count == 2

    def test_perfect(self):
        errors = speed_errors([5.0], [5.0])
        assert errors.mae == 0.0
        assert errors.rmse == 0.0

    def test_mape_floors_denominator(self):
        errors = speed_errors([1.0], [0.1])
        assert errors.mape == pytest.approx(0.9)  # / max(0.1, 1)

    def test_validation(self):
        with pytest.raises(DataError):
            speed_errors([1.0], [1.0, 2.0])
        with pytest.raises(DataError):
            speed_errors([], [])

    def test_str(self):
        assert "MAE" in str(speed_errors([1.0], [2.0]))


class TestTrendMetrics:
    def test_perfect(self):
        m = trend_metrics([Trend.RISE, Trend.FALL], [Trend.RISE, Trend.FALL])
        assert m.accuracy == 1.0
        assert m.fall_f1 == 1.0

    def test_confusion_arithmetic(self):
        predicted = [Trend.FALL, Trend.FALL, Trend.RISE, Trend.RISE]
        actual = [Trend.FALL, Trend.RISE, Trend.FALL, Trend.RISE]
        m = trend_metrics(predicted, actual)
        assert m.accuracy == 0.5
        assert m.fall_precision == 0.5
        assert m.fall_recall == 0.5

    def test_no_falls_predicted(self):
        m = trend_metrics([Trend.RISE, Trend.RISE], [Trend.FALL, Trend.RISE])
        assert m.fall_precision == 0.0
        assert m.fall_recall == 0.0
        assert m.fall_f1 == 0.0

    def test_validation(self):
        with pytest.raises(DataError):
            trend_metrics([], [])
        with pytest.raises(DataError):
            trend_metrics([Trend.RISE], [])


class TestImprovement:
    def test_positive_when_better(self):
        assert improvement_percent(6.0, 10.0) == pytest.approx(40.0)

    def test_negative_when_worse(self):
        assert improvement_percent(12.0, 10.0) == pytest.approx(-20.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(DataError):
            improvement_percent(1.0, 0.0)


class TestReporting:
    def test_aligned_table(self):
        table = format_table(
            ["method", "mae"], [["two-step", "2.09"], ["ha", "3.71"]],
            title="T2",
        )
        lines = table.splitlines()
        assert lines[0] == "T2"
        assert lines[1].startswith("method")
        assert len(lines) == 5  # title, header, rule, two rows

    def test_row_width_validation(self):
        with pytest.raises(DataError):
            format_table(["a", "b"], [["only-one"]])
        with pytest.raises(DataError):
            format_table([], [])

    def test_formatters(self):
        assert fmt(3.14159, 2) == "3.14"
        assert fmt_pct(42.123) == "42.1%"
        assert fmt_speedup(113.25) == "113.2x"


class TestEvaluation:
    @pytest.fixture(scope="class")
    def evaluation(self, small_dataset):
        seeds = small_dataset.network.road_ids()[::12][:8]
        return Evaluation(
            truth=small_dataset.test,
            store=small_dataset.store,
            seeds=seeds,
            intervals=small_dataset.test_day_intervals(stride=16),
        )

    def test_scored_roads_exclude_seeds(self, evaluation):
        assert not set(evaluation.seeds) & set(evaluation.scored_roads)

    def test_run_baseline(self, small_dataset, evaluation):
        result = evaluation.run(HistoricalAverageBaseline(small_dataset.store))
        assert result.method == "historical-average"
        assert result.speed.count == len(evaluation.scored_roads) * len(
            evaluation.intervals
        )
        assert result.trend is not None
        assert result.wall_time_s > 0

    def test_run_two_step_collects_trends(self, small_dataset, evaluation):
        estimator = TwoStepEstimator(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        method = TwoStepMethod(estimator)
        result = evaluation.run(method)
        assert result.trend.count == result.speed.count
        assert method.last_trends  # populated during the run

    def test_crowd_noise_optional(self, small_dataset):
        from repro.crowd.platform import CrowdsourcingPlatform
        from repro.crowd.workers import WorkerPool

        seeds = small_dataset.network.road_ids()[:5]
        noisy = Evaluation(
            truth=small_dataset.test,
            store=small_dataset.store,
            seeds=seeds,
            intervals=small_dataset.test_day_intervals(stride=32),
            crowd_platform=CrowdsourcingPlatform(
                WorkerPool.sample(30, seed=1), workers_per_task=5
            ),
        )
        interval = noisy.intervals[0]
        observed = noisy.seed_speeds_at(interval)
        true = {r: small_dataset.test.speed(r, interval) for r in seeds}
        assert observed != true  # perturbed
        assert all(abs(observed[r] - true[r]) < 20 for r in seeds)

    def test_validation(self, small_dataset):
        with pytest.raises(DataError):
            Evaluation(small_dataset.test, small_dataset.store, [], [0])
        with pytest.raises(DataError):
            Evaluation(small_dataset.test, small_dataset.store, [0], [])
        with pytest.raises(DataError):
            Evaluation(small_dataset.test, small_dataset.store, [10**7], [0])

    def test_intervals_for_day(self, small_dataset):
        day = small_dataset.first_test_day
        intervals = intervals_for_day(
            small_dataset.test, small_dataset.grid, day, stride=4
        )
        assert len(intervals) == 24
        with pytest.raises(DataError):
            intervals_for_day(small_dataset.test, small_dataset.grid, 999)
