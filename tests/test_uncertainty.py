"""Tests for speed prediction intervals."""

import numpy as np
import pytest

from repro.core.errors import InferenceError
from repro.speed.estimator import TwoStepEstimator
from repro.speed.uncertainty import (
    SpeedBand,
    UncertaintyModel,
    margin_kmh,
    normal_confidences,
    sharpness_kmh,
    z_for_confidence,
)


@pytest.fixture(scope="module")
def banded(small_dataset):
    estimator = TwoStepEstimator(
        small_dataset.network, small_dataset.store, small_dataset.graph
    )
    model = UncertaintyModel(estimator, small_dataset.store, confidence=0.90)
    seeds = small_dataset.network.road_ids()[::10][:12]
    interval = small_dataset.test_day_intervals()[36]
    truth = small_dataset.test.speeds_at(interval)
    seed_speeds = {r: truth[r] for r in seeds}
    estimates = estimator.estimate_interval(interval, seed_speeds)
    bands = model.bands_for(estimates, seed_speeds)
    return small_dataset, model, seeds, truth, estimates, bands


class TestHelpers:
    def test_z_values(self):
        assert z_for_confidence(0.90) == pytest.approx(1.6449)
        assert z_for_confidence(0.99) > z_for_confidence(0.80)
        with pytest.raises(InferenceError):
            z_for_confidence(0.5)

    def test_margin(self):
        assert margin_kmh(2.0, 0.90) == pytest.approx(2.0 * 1.6449)
        with pytest.raises(InferenceError):
            margin_kmh(-1.0, 0.90)

    def test_confidence_list(self):
        assert 0.90 in normal_confidences()

    def test_band_geometry(self):
        band = SpeedBand(1, 0, 30.0, 25.0, 35.0, 3.0, 0.9)
        assert band.width_kmh == 10.0
        assert band.contains(25.0) and band.contains(35.0)
        assert not band.contains(36.0)


class TestBands:
    def test_every_road_gets_a_band(self, banded):
        dataset, _, _, _, estimates, bands = banded
        assert set(bands) == set(estimates)

    def test_bands_centred_on_estimates(self, banded):
        *_, estimates, bands = banded
        for road, band in bands.items():
            assert band.lower_kmh <= estimates[road].speed_kmh <= band.upper_kmh

    def test_seed_bands_are_tight(self, banded):
        _, _, seeds, _, _, bands = banded
        seed_widths = [bands[r].width_kmh for r in seeds]
        non_seed_widths = [
            b.width_kmh for r, b in bands.items() if r not in set(seeds)
        ]
        assert max(seed_widths) < np.mean(non_seed_widths)

    def test_coverage_near_nominal(self, banded):
        dataset, model, seeds, truth, _, bands = banded
        coverage = model.empirical_coverage(bands, truth, set(seeds))
        # Nominal 90%; in-sample residual stds give approximate bands.
        assert 0.75 <= coverage <= 1.0

    def test_higher_confidence_wider_and_more_covering(self, small_dataset):
        estimator = TwoStepEstimator(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        seeds = small_dataset.network.road_ids()[::10][:12]
        interval = small_dataset.test_day_intervals()[36]
        truth = small_dataset.test.speeds_at(interval)
        seed_speeds = {r: truth[r] for r in seeds}
        estimates = estimator.estimate_interval(interval, seed_speeds)
        narrow = UncertaintyModel(estimator, small_dataset.store, 0.80)
        wide = UncertaintyModel(estimator, small_dataset.store, 0.99)
        bands80 = narrow.bands_for(estimates, seed_speeds)
        bands99 = wide.bands_for(estimates, seed_speeds)
        assert sharpness_kmh(bands99) > sharpness_kmh(bands80)
        cov80 = narrow.empirical_coverage(bands80, truth, set(seeds))
        cov99 = wide.empirical_coverage(bands99, truth, set(seeds))
        assert cov99 >= cov80

    def test_coverage_over_full_day(self, banded):
        """Averaged across a day, 90% bands cover 75-99% of truths."""
        dataset, model, seeds, _, _, _ = banded
        estimator = TwoStepEstimator(
            dataset.network, dataset.store, dataset.graph
        )
        day_model = UncertaintyModel(estimator, dataset.store, 0.90)
        covered = []
        for interval in dataset.test_day_intervals(stride=8):
            truth = dataset.test.speeds_at(interval)
            seed_speeds = {r: truth[r] for r in seeds}
            estimates = estimator.estimate_interval(interval, seed_speeds)
            bands = day_model.bands_for(estimates, seed_speeds)
            covered.append(
                day_model.empirical_coverage(bands, truth, set(seeds))
            )
        assert 0.75 <= float(np.mean(covered)) <= 0.99

    def test_validation(self, small_dataset):
        estimator = TwoStepEstimator(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        with pytest.raises(InferenceError):
            UncertaintyModel(estimator, small_dataset.store, confidence=0.5)
        with pytest.raises(InferenceError):
            sharpness_kmh({})
