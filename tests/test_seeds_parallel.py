"""Differential tests for process-parallel district selection.

The contract under test: a :class:`~repro.seeds.parallel.DistrictPool`
over shared CSR arrays returns the **identical** seed sequence, gains
and values as the single-process partition path — workers recompute
influence rows from the same arrays with the same kernel and transform
math, and districts stitch in district order. The pool here is small
(2 workers, 4 districts) so the differential runs in tier-1 CI.
"""

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.errors import ConfigError, SelectionError
from repro.core.pipeline import SpeedEstimationSystem
from repro.seeds.objective import SeedSelectionObjective
from repro.seeds.parallel import DistrictPool, parallel_partition_select
from repro.seeds.partition import partition_greedy_select


@pytest.fixture(scope="module")
def objective(small_dataset):
    return SeedSelectionObjective(small_dataset.graph)


@pytest.fixture(scope="module")
def pool(objective):
    with DistrictPool(objective, num_partitions=4, num_workers=2) as pool:
        yield pool


class TestParallelVsSerialDifferential:
    def test_identical_selection(self, objective, pool):
        serial = partition_greedy_select(objective, 9, num_partitions=4)
        parallel = pool.select(9)
        assert parallel.seeds == serial.seeds
        assert parallel.gains == serial.gains
        assert parallel.values == serial.values
        assert parallel.evaluations == serial.evaluations

    def test_identical_across_budgets(self, objective, pool):
        for budget in (1, 4, 13):
            serial = partition_greedy_select(objective, budget, 4)
            assert pool.select(budget).seeds == serial.seeds

    def test_one_shot_helper(self, objective):
        serial = partition_greedy_select(objective, 6, num_partitions=4)
        parallel = parallel_partition_select(
            objective, 6, num_partitions=4, num_workers=2
        )
        assert parallel.seeds == serial.seeds
        assert parallel.method == "partition-greedy-parallel"

    def test_vote_accumulator_matches_matmul(
        self, objective, pool, small_dataset
    ):
        seeds = objective.road_ids[::7][:12]
        signs = np.array(
            [1.0 if i % 3 else -1.0 for i in range(len(seeds))]
        )
        votes, nonzeros = pool.vote_accumulator(
            small_dataset.graph, seeds, signs
        )
        matrix = objective.fidelity_service.rows(
            small_dataset.graph, seeds, transform="logodds"
        )
        serial = signs @ matrix
        assert np.abs(votes - serial).max() <= 1e-9
        assert nonzeros == int(np.count_nonzero(matrix))


class TestDistrictPoolLifecycle:
    def test_partitions_match_partition_graph(self, objective, pool):
        from repro.seeds.partition import partition_graph

        assert pool.partitions == partition_graph(objective, 4)

    def test_worker_count_capped_by_districts(self, objective):
        with DistrictPool(objective, num_partitions=2, num_workers=8) as p:
            assert p.num_workers == 2

    def test_closed_pool_rejects_work(self, objective):
        pool = DistrictPool(objective, num_partitions=2, num_workers=1)
        pool.close()
        with pytest.raises(SelectionError, match="closed"):
            pool.select(2)
        pool.close()  # idempotent

    def test_scalar_objective_rejected(self, small_dataset):
        scalar = SeedSelectionObjective(small_dataset.graph, use_kernel=False)
        with pytest.raises(SelectionError, match="kernel"):
            DistrictPool(scalar, num_partitions=2)

    def test_vote_accumulator_wrong_graph(self, pool, tiny_dataset):
        with pytest.raises(Exception, match="different correlation graph"):
            pool.vote_accumulator(tiny_dataset.graph, [0], np.array([1.0]))


class TestPipelineParallelIntegration:
    def test_config_requires_kernel(self, small_dataset):
        with pytest.raises(ConfigError, match="kernel"):
            SpeedEstimationSystem.from_parts(
                small_dataset.network,
                small_dataset.store,
                small_dataset.graph,
                PipelineConfig(
                    use_parallel_partitions=True, use_fidelity_kernel=False
                ),
            )

    def test_parallel_system_matches_serial_system(self, small_dataset):
        parts = (
            small_dataset.network,
            small_dataset.store,
            small_dataset.graph,
        )
        serial_system = SpeedEstimationSystem.from_parts(
            *parts,
            PipelineConfig(selection_method="partition", num_partitions=4),
        )
        serial_seeds = serial_system.select_seeds(8)
        with SpeedEstimationSystem.from_parts(
            *parts,
            PipelineConfig(
                selection_method="partition",
                num_partitions=4,
                use_parallel_partitions=True,
                num_partition_workers=2,
            ),
        ) as parallel_system:
            assert parallel_system.select_seeds(8) == serial_seeds
            # Step-1 runs through the district vote accumulator and must
            # match the serial estimate to float re-association.
            interval = small_dataset.test_day_intervals()[32]
            truth = small_dataset.test.speeds_at(interval)
            crowd = {road: truth[road] for road in serial_seeds}
            parallel_estimates = parallel_system.estimate(interval, crowd)
        serial_estimates = serial_system.estimate(interval, crowd)
        for road in small_dataset.network.road_ids():
            assert parallel_estimates[road].speed_kmh == pytest.approx(
                serial_estimates[road].speed_kmh, abs=1e-6
            )

    def test_district_pool_requires_flag(self, small_dataset):
        system = SpeedEstimationSystem.from_parts(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        with pytest.raises(ConfigError, match="use_parallel_partitions"):
            system.district_pool()

    def test_close_is_idempotent_without_pool(self, small_dataset):
        system = SpeedEstimationSystem.from_parts(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        system.close()  # never created a pool; must be a no-op
