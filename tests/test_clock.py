"""The injectable clock abstraction (repro.core.clock)."""

import pytest

from repro.core.clock import (
    Clock,
    ManualClock,
    MonotonicClock,
    get_clock,
    set_clock,
    use_clock,
)


class TestManualClock:
    def test_starts_where_told(self):
        assert ManualClock().monotonic() == 0.0
        assert ManualClock(start=10.0).monotonic() == 10.0

    def test_advance_moves_time(self):
        clock = ManualClock()
        clock.advance(5.0)
        clock.advance(2.5)
        assert clock.monotonic() == 7.5

    def test_sleep_advances_instead_of_blocking(self):
        clock = ManualClock()
        clock.sleep(30.0)
        assert clock.monotonic() == 30.0

    def test_negative_advance_rejected(self):
        clock = ManualClock(start=100.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        assert clock.monotonic() == 100.0

    def test_satisfies_protocol(self):
        assert isinstance(ManualClock(), Clock)


class TestMonotonicClock:
    def test_never_goes_backwards(self):
        clock = MonotonicClock()
        a = clock.monotonic()
        b = clock.monotonic()
        assert b >= a

    def test_sleep_accepts_nonpositive(self):
        # Must not raise and must not block.
        MonotonicClock().sleep(0.0)
        MonotonicClock().sleep(-1.0)

    def test_satisfies_protocol(self):
        assert isinstance(MonotonicClock(), Clock)


class TestProcessDefault:
    def test_default_is_monotonic(self):
        assert isinstance(get_clock(), MonotonicClock)

    def test_set_clock_returns_previous(self):
        manual = ManualClock()
        previous = set_clock(manual)
        try:
            assert get_clock() is manual
        finally:
            set_clock(previous)
        assert get_clock() is previous

    def test_use_clock_restores_on_exit(self):
        before = get_clock()
        manual = ManualClock()
        with use_clock(manual) as installed:
            assert installed is manual
            assert get_clock() is manual
        assert get_clock() is before

    def test_use_clock_restores_on_error(self):
        before = get_clock()
        with pytest.raises(RuntimeError):
            with use_clock(ManualClock()):
                raise RuntimeError("boom")
        assert get_clock() is before


class TestTimedCallSitesUseInjectedClock:
    """The satellite audit: timing call sites read the injectable clock."""

    def test_span_tracer_times_on_manual_clock(self):
        from repro.obs.spans import SpanTracer

        clock = ManualClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("work"):
            clock.advance(3.0)
        (span,) = tracer.drain()
        assert span.duration_s == pytest.approx(3.0)

    def test_selection_timings_on_manual_clock(self, small_dataset):
        from repro.obs import FlightRecorder, recording
        from repro.seeds.greedy import greedy_select
        from repro.seeds.objective import SeedSelectionObjective

        objective = SeedSelectionObjective(small_dataset.graph)
        with use_clock(ManualClock()), recording(FlightRecorder()) as recorder:
            greedy_select(objective, 3)
        # On a frozen clock every recorded pick duration must be exactly
        # zero — proof the timing came from the injected clock.
        histogram = recorder.registry.histogram(
            "seeds.pick_seconds", method="greedy"
        )
        assert histogram.count == 3
        assert histogram.sum == 0.0
