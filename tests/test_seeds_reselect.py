"""Warm-started incremental CELF re-selection.

Correctness contract: every :meth:`IncrementalCelfSelector.select` call
returns the **identical** sequence a cold ``lazy_greedy_select`` would,
while the empty-set gain scan is paid only for candidates whose
fidelity rows were invalidated since the previous round — zero on a
stable network.
"""

import pytest

from repro.core.errors import SelectionError
from repro.history.fidelity import FidelityCacheService
from repro.obs import FlightRecorder, set_recorder
from repro.seeds.lazy import lazy_greedy_select
from repro.seeds.objective import SeedSelectionObjective
from repro.seeds.reselect import IncrementalCelfSelector


@pytest.fixture
def objective(small_dataset):
    # A dedicated service per test: selectors register invalidation
    # listeners on it, and tests trigger invalidations on purpose.
    return SeedSelectionObjective(
        small_dataset.graph, fidelity_service=FidelityCacheService()
    )


@pytest.fixture
def recorder():
    rec = FlightRecorder()
    previous = set_recorder(rec)
    try:
        yield rec
    finally:
        set_recorder(previous)


def _reevaluated(rec) -> float:
    return rec.registry.counter("seeds.reselect.reevaluated").value


class TestWarmStartEquivalence:
    def test_first_select_matches_cold_lazy(self, objective):
        cold = lazy_greedy_select(objective, 10)
        result = IncrementalCelfSelector(objective).select(10)
        assert result.seeds == cold.seeds
        assert result.gains == cold.gains
        assert result.values == cold.values
        assert result.evaluations == cold.evaluations
        assert result.method == "lazy-greedy-incremental"

    def test_reselect_on_stable_network_is_identical(self, objective):
        selector = IncrementalCelfSelector(objective)
        first = selector.select(8)
        second = selector.select(8)
        third = selector.select(8)
        assert second.seeds == first.seeds
        assert third.seeds == first.seeds
        assert second.gains == first.gains

    def test_reselect_after_invalidation_matches_cold(self, objective):
        selector = IncrementalCelfSelector(objective)
        selector.select(6)
        touched = objective.road_ids[:15]
        objective.fidelity_service.invalidate_rows(objective.graph, touched)
        cold = lazy_greedy_select(objective, 6)
        assert selector.select(6).seeds == cold.seeds


class TestIncrementalAccounting:
    def test_stable_round_reevaluates_nothing(self, objective, recorder):
        selector = IncrementalCelfSelector(objective)
        selector.select(5)
        after_first = _reevaluated(recorder)
        assert after_first == len(objective.road_ids)
        assert selector.dirty_candidates == set()
        selector.select(5)
        assert _reevaluated(recorder) == after_first
        assert recorder.registry.counter("seeds.reselect.cached").value == len(
            objective.road_ids
        )

    def test_row_invalidation_dirties_only_touched(self, objective, recorder):
        selector = IncrementalCelfSelector(objective)
        selector.select(5)
        touched = objective.road_ids[3:9]
        objective.fidelity_service.invalidate_rows(objective.graph, touched)
        assert selector.dirty_candidates == set(touched)
        before = _reevaluated(recorder)
        selector.select(5)
        assert _reevaluated(recorder) - before == len(touched)
        assert selector.dirty_candidates == set()

    def test_whole_graph_invalidation_dirties_everything(self, objective):
        selector = IncrementalCelfSelector(objective)
        selector.select(5)
        objective.fidelity_service.invalidate()
        assert selector.dirty_candidates == set(objective.road_ids)

    def test_foreign_graph_invalidation_ignored(self, objective, tiny_dataset):
        selector = IncrementalCelfSelector(objective)
        selector.select(5)
        objective.fidelity_service.invalidate_rows(
            tiny_dataset.graph, objective.road_ids[:4]
        )
        assert selector.dirty_candidates == set()


class TestReselectValidation:
    def test_budget_exceeding_pool_rejected(self, objective):
        pool = objective.road_ids[:4]
        selector = IncrementalCelfSelector(objective, candidates=list(pool))
        with pytest.raises(SelectionError, match="budget"):
            selector.select(5)

    def test_restricted_pool_matches_cold(self, objective):
        pool = list(objective.road_ids[::3])
        selector = IncrementalCelfSelector(objective, candidates=pool)
        cold = lazy_greedy_select(objective, 6, candidates=pool)
        assert selector.select(6).seeds == cold.seeds
