"""Unit tests for the time grid."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.history.timebuckets import MINUTES_PER_DAY, TimeGrid


class TestConstruction:
    def test_defaults(self):
        grid = TimeGrid()
        assert grid.interval_minutes == 15
        assert grid.intervals_per_day == 96
        assert grid.num_buckets == 96

    def test_weekend_doubles_buckets(self):
        grid = TimeGrid(30, distinguish_weekend=True)
        assert grid.num_buckets == 2 * 48

    @pytest.mark.parametrize("minutes", [0, -5, 7, 25])
    def test_invalid_lengths_rejected(self, minutes):
        with pytest.raises(ValueError):
            TimeGrid(minutes)

    @pytest.mark.parametrize("minutes", [1, 5, 10, 15, 20, 30, 60, 120])
    def test_valid_lengths(self, minutes):
        assert TimeGrid(minutes).intervals_per_day == MINUTES_PER_DAY // minutes


class TestMapping:
    def test_day_and_slot(self):
        grid = TimeGrid(15)
        assert grid.day_of(0) == 0
        assert grid.day_of(95) == 0
        assert grid.day_of(96) == 1
        assert grid.slot_of(96) == 0
        assert grid.slot_of(100) == 4

    def test_hour_of(self):
        grid = TimeGrid(15)
        assert grid.hour_of(0) == 0.0
        assert grid.hour_of(34) == 8.5
        assert grid.hour_of(96 + 34) == 8.5  # same time next day

    def test_interval_at(self):
        grid = TimeGrid(15)
        assert grid.interval_at(0, 8.5) == 34
        assert grid.interval_at(2, 0.0) == 192

    def test_interval_at_validation(self):
        grid = TimeGrid(15)
        with pytest.raises(ValueError):
            grid.interval_at(-1, 0.0)
        with pytest.raises(ValueError):
            grid.interval_at(0, 24.0)

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            TimeGrid(15).day_of(-1)

    def test_day_range(self):
        grid = TimeGrid(60)
        assert list(grid.day_range(1)) == list(range(24, 48))
        with pytest.raises(ValueError):
            grid.day_range(-1)

    def test_days_range(self):
        grid = TimeGrid(60)
        assert list(grid.days_range(1, 2)) == list(range(24, 72))
        assert list(grid.days_range(0, 0)) == []


class TestWeekend:
    def test_day_zero_is_monday(self):
        grid = TimeGrid(60)
        assert not grid.is_weekend(0)
        # Day 5 = Saturday, day 6 = Sunday, day 7 = Monday again.
        assert grid.is_weekend(5 * 24)
        assert grid.is_weekend(6 * 24)
        assert not grid.is_weekend(7 * 24)

    def test_weekend_bucket_offset(self):
        grid = TimeGrid(60, distinguish_weekend=True)
        weekday_noon = grid.interval_at(0, 12.0)
        weekend_noon = grid.interval_at(5, 12.0)
        assert grid.bucket_of(weekday_noon) == 12
        assert grid.bucket_of(weekend_noon) == 24 + 12

    def test_without_flag_buckets_merge(self):
        grid = TimeGrid(60)
        assert grid.bucket_of(grid.interval_at(0, 12.0)) == grid.bucket_of(
            grid.interval_at(5, 12.0)
        )


@given(st.integers(min_value=0, max_value=10**6))
def test_bucket_always_in_range(interval):
    grid = TimeGrid(15, distinguish_weekend=True)
    assert 0 <= grid.bucket_of(interval) < grid.num_buckets


@given(st.integers(min_value=0, max_value=10**6))
def test_day_slot_reconstruction(interval):
    grid = TimeGrid(15)
    assert grid.day_of(interval) * 96 + grid.slot_of(interval) == interval
