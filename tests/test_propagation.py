"""Unit tests for best-path fidelity propagation (shared by Step 1 + seeds)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InferenceError
from repro.core.types import Trend
from repro.history.correlation import CorrelationEdge, CorrelationGraph
from repro.history.fidelity import FidelityCacheService
from repro.trend.model import TrendInstance
from repro.trend.propagation import (
    TrendPropagationInference,
    edge_fidelity,
    propagate_fidelity,
)


def line_graph(agreements):
    n = len(agreements) + 1
    return CorrelationGraph(
        list(range(n)),
        [CorrelationEdge(i, i + 1, a) for i, a in enumerate(agreements)],
    )


class TestEdgeFidelity:
    def test_values(self):
        assert edge_fidelity(1.0) == 1.0
        assert edge_fidelity(0.75) == pytest.approx(0.5)
        assert edge_fidelity(0.5) == 0.0
        assert edge_fidelity(0.3) == 0.0  # sub-coin-flip carries nothing


class TestPropagation:
    def test_source_has_fidelity_one(self):
        graph = line_graph([0.8])
        assert propagate_fidelity(graph, 0)[0] == 1.0

    def test_chain_multiplies(self):
        graph = line_graph([0.8, 0.9])
        fid = propagate_fidelity(graph, 0, min_fidelity=0.01)
        assert fid[1] == pytest.approx(0.6)
        assert fid[2] == pytest.approx(0.6 * 0.8)

    def test_best_path_chosen(self):
        """Two routes 0->2: direct weak edge vs strong two-hop path."""
        graph = CorrelationGraph(
            [0, 1, 2],
            [
                CorrelationEdge(0, 2, 0.55),  # q = 0.1 direct
                CorrelationEdge(0, 1, 0.95),  # q = 0.9
                CorrelationEdge(1, 2, 0.95),  # q = 0.9, path q = 0.81
            ],
        )
        fid = propagate_fidelity(graph, 0, min_fidelity=0.01)
        assert fid[2] == pytest.approx(0.81)

    def test_floor_prunes(self):
        graph = line_graph([0.7, 0.7, 0.7, 0.7])  # q = 0.4 per hop
        fid = propagate_fidelity(graph, 0, min_fidelity=0.1)
        # 0.4, 0.16, 0.064 < 0.1 -> pruned at hop 3.
        assert set(fid) == {0, 1, 2}

    def test_max_hops_prunes(self):
        graph = line_graph([0.9, 0.9, 0.9, 0.9])
        fid = propagate_fidelity(graph, 0, min_fidelity=0.001, max_hops=2)
        assert set(fid) == {0, 1, 2}

    def test_max_hops_counts_candidate_path_hops(self):
        """Regression: a strong long path must not shadow a weak short one.

        Roads 0-1-2 form a strong two-hop route (0.9 * 0.9 = 0.81) while
        the direct 0-2 edge carries only 0.2; road 3 hangs off road 2.
        With ``max_hops=2`` road 3 is reachable within budget as 0->2->3
        through the weak edge (0.2 * 0.8 = 0.16). The old implementation
        settled road 2 via the two-hop route first, recorded its hop
        count as 2, and then refused to extend to road 3 — dropping a
        road that a legal two-hop path reaches.
        """
        graph = CorrelationGraph(
            [0, 1, 2, 3],
            [
                CorrelationEdge(0, 1, 0.95),
                CorrelationEdge(1, 2, 0.95),
                CorrelationEdge(0, 2, 0.6),
                CorrelationEdge(2, 3, 0.9),
            ],
        )
        fid = propagate_fidelity(graph, 0, min_fidelity=0.01, max_hops=2)
        assert set(fid) == {0, 1, 2, 3}
        # Road 2 still gets the *best* fidelity over <=2-hop paths ...
        assert fid[2] == pytest.approx(0.81)
        # ... while road 3 gets the best among paths that fit the budget.
        assert fid[3] == pytest.approx(0.2 * 0.8)

    def test_unknown_source(self):
        with pytest.raises(InferenceError):
            propagate_fidelity(line_graph([0.8]), 99)

    def test_bad_floor(self):
        with pytest.raises(InferenceError):
            propagate_fidelity(line_graph([0.8]), 0, min_fidelity=0.0)

    def test_disconnected_not_reached(self):
        graph = CorrelationGraph([0, 1, 2], [CorrelationEdge(0, 1, 0.9)])
        fid = propagate_fidelity(graph, 0, min_fidelity=0.01)
        assert 2 not in fid


@settings(max_examples=30, deadline=None)
@given(
    agreements=st.lists(
        st.floats(min_value=0.55, max_value=0.99), min_size=1, max_size=8
    )
)
def test_fidelity_decreases_along_chain(agreements):
    graph = line_graph(agreements)
    fid = propagate_fidelity(graph, 0, min_fidelity=1e-6)
    reached = sorted(fid)
    values = [fid[r] for r in reached]
    assert all(a >= b for a, b in zip(values, values[1:]))
    assert all(0.0 < v <= 1.0 for v in values)


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_symmetry_on_undirected_graphs(data):
    """fidelity(a -> b) == fidelity(b -> a) on any undirected graph."""
    n = data.draw(st.integers(min_value=3, max_value=7))
    edges = []
    seen = set()
    for _ in range(data.draw(st.integers(min_value=2, max_value=10))):
        u = data.draw(st.integers(min_value=0, max_value=n - 1))
        v = data.draw(st.integers(min_value=0, max_value=n - 1))
        if u == v or (min(u, v), max(u, v)) in seen:
            continue
        seen.add((min(u, v), max(u, v)))
        edges.append(
            CorrelationEdge(
                u, v, data.draw(st.floats(min_value=0.55, max_value=0.99))
            )
        )
    if not edges:
        return
    graph = CorrelationGraph(list(range(n)), edges)
    a = data.draw(st.integers(min_value=0, max_value=n - 1))
    b = data.draw(st.integers(min_value=0, max_value=n - 1))
    fid_a = propagate_fidelity(graph, a, min_fidelity=1e-9)
    fid_b = propagate_fidelity(graph, b, min_fidelity=1e-9)
    assert fid_a.get(b, 0.0) == pytest.approx(fid_b.get(a, 0.0), abs=1e-12)


class TestUnknownEvidenceRoads:
    """Regression: evidence on a road the instance no longer indexes.

    Streaming deployments can deliver a late observation for a road
    that was dropped from the current interval's instance. The vote
    loop always skipped such roads; the evidence-clamp loop indexed
    ``index[road]`` unconditionally and raised ``KeyError``. Both loops
    must apply the same skip policy.
    """

    def _instance(self, graph):
        return TrendInstance(
            road_ids=tuple(graph.road_ids),
            prior_rise=np.full(len(graph.road_ids), 0.5),
            edges=tuple(),
            evidence={0: Trend.RISE},
            graph=graph,
        )

    @pytest.mark.parametrize("use_kernel", [True, False])
    def test_unknown_evidence_road_is_skipped(self, use_kernel):
        graph = line_graph([0.9, 0.9])
        inference = TrendPropagationInference(
            fidelity_service=FidelityCacheService(use_kernel=use_kernel),
            use_kernel=use_kernel,
        )
        baseline = inference.infer(self._instance(graph)).as_array()

        late = self._instance(graph)
        late.evidence[999] = Trend.FALL  # road unknown to index AND graph
        posterior = inference.infer(late)  # must not raise
        np.testing.assert_array_equal(posterior.as_array(), baseline)

    def test_evidence_road_missing_from_graph_still_clamps(self):
        """In the index but not in the graph: clamped, never voted."""
        graph = CorrelationGraph([0, 1], [CorrelationEdge(0, 1, 0.9)])
        instance = TrendInstance(
            road_ids=(0, 1, 2),
            prior_rise=np.full(3, 0.5),
            edges=tuple(),
            evidence={0: Trend.RISE, 2: Trend.FALL},
            graph=graph,
        )
        for use_kernel in (True, False):
            posterior = TrendPropagationInference(
                fidelity_service=FidelityCacheService(use_kernel=use_kernel),
                use_kernel=use_kernel,
            ).infer(instance)
            assert posterior.p_rise(0) == 1.0
            assert posterior.p_rise(2) == 0.0  # clamped despite no vote
            assert posterior.p_rise(1) > 0.5  # road 0's vote arrived
