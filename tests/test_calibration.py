"""Tests for trend-posterior calibration diagnostics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DataError
from repro.core.types import Trend
from repro.evalkit.calibration import CalibrationReport, calibration_report


class TestCalibrationReport:
    def test_perfectly_calibrated_synthetic(self):
        """Outcomes drawn with exactly the predicted probability."""
        rng = np.random.default_rng(0)
        probs = list(rng.uniform(0.0, 1.0, size=20000))
        actual = [
            Trend.RISE if rng.random() < p else Trend.FALL for p in probs
        ]
        report = calibration_report(probs, actual)
        assert report.expected_calibration_error < 0.03
        # Brier of a calibrated predictor: E[p(1-p)] = 1/6 for uniform p.
        assert report.brier_score == pytest.approx(1 / 6, abs=0.02)

    def test_overconfident_predictor_penalised(self):
        """Always claiming certainty on a fair coin: ECE near 0.5."""
        rng = np.random.default_rng(1)
        probs = [1.0] * 2000
        actual = [
            Trend.RISE if rng.random() < 0.5 else Trend.FALL for _ in probs
        ]
        report = calibration_report(probs, actual)
        assert report.expected_calibration_error > 0.4
        assert report.brier_score > 0.4

    def test_binary_correct_predictions(self):
        probs = [1.0, 0.0, 1.0]
        actual = [Trend.RISE, Trend.FALL, Trend.RISE]
        report = calibration_report(probs, actual)
        assert report.expected_calibration_error == pytest.approx(0.0)
        assert report.brier_score == pytest.approx(0.0)

    def test_bins_partition_counts(self):
        probs = [0.05, 0.15, 0.25, 0.95]
        actual = [Trend.FALL] * 3 + [Trend.RISE]
        report = calibration_report(probs, actual, num_bins=10)
        assert sum(b.count for b in report.bins) == 4
        assert report.count == 4

    def test_bin_edges_sane(self):
        probs = list(np.linspace(0.0, 1.0, 50))
        actual = [Trend.RISE] * 50
        report = calibration_report(probs, actual, num_bins=5)
        for b in report.bins:
            assert 0.0 <= b.lower < b.upper <= 1.0
            assert b.lower <= b.mean_predicted <= b.upper + 1e-9

    def test_validation(self):
        with pytest.raises(DataError):
            calibration_report([], [])
        with pytest.raises(DataError):
            calibration_report([0.5], [])
        with pytest.raises(DataError):
            calibration_report([1.5], [Trend.RISE])
        with pytest.raises(DataError):
            calibration_report([0.5], [Trend.RISE], num_bins=0)

    @settings(max_examples=30, deadline=None)
    @given(
        probs=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=50
        ),
        data=st.data(),
    )
    def test_properties(self, probs, data):
        actual = [
            data.draw(st.sampled_from([Trend.RISE, Trend.FALL]))
            for _ in probs
        ]
        report = calibration_report(probs, actual)
        assert 0.0 <= report.expected_calibration_error <= 1.0
        assert 0.0 <= report.brier_score <= 1.0
        assert sum(b.count for b in report.bins) == len(probs)


class TestOnRealPosterior:
    def test_propagation_posterior_reasonably_calibrated(self, small_dataset):
        """The Step-1 posterior is informative and not wildly miscalibrated."""
        from repro.trend.model import TrendModel
        from repro.trend.propagation import TrendPropagationInference

        city = small_dataset
        model = TrendModel(city.graph, city.store)
        inference = TrendPropagationInference()
        seeds = city.network.road_ids()[::12][:10]
        probs, actual = [], []
        for interval in city.test_day_intervals(stride=6):
            truth = city.test.speeds_at(interval)
            seed_trends = {
                r: city.store.trend_of(r, interval, truth[r]) for r in seeds
            }
            posterior = inference.infer(model.instance(interval, seed_trends))
            for road in city.network.road_ids():
                if road in seed_trends:
                    continue
                probs.append(posterior.p_rise(road))
                actual.append(city.store.trend_of(road, interval, truth[road]))
        report = calibration_report(probs, actual)
        # Better than an uninformative coin (Brier 0.25), and the
        # independence approximation costs bounded calibration error.
        assert report.brier_score < 0.25
        assert report.expected_calibration_error < 0.25
