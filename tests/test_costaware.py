"""Tests for cost-aware (budgeted) seed selection."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SelectionError
from repro.history.correlation import CorrelationEdge, CorrelationGraph
from repro.seeds.costaware import (
    DEFAULT_CLASS_COSTS,
    cost_aware_select,
    default_road_costs,
    selection_cost,
)
from repro.seeds.objective import SeedSelectionObjective


def small_graph():
    return CorrelationGraph(
        [0, 1, 2, 3, 4],
        [
            CorrelationEdge(0, 1, 0.9),
            CorrelationEdge(1, 2, 0.85),
            CorrelationEdge(2, 3, 0.8),
            CorrelationEdge(3, 4, 0.75),
        ],
    )


class TestCostModel:
    def test_default_costs_cover_all_roads(self, small_network):
        costs = default_road_costs(small_network)
        assert set(costs) == set(small_network.road_ids())
        assert all(c > 0 for c in costs.values())

    def test_quiet_roads_cost_more(self, small_network):
        costs = default_road_costs(small_network)
        arterial = next(
            s.road_id for s in small_network.segments()
            if s.road_class == "arterial"
        )
        local = next(
            s.road_id for s in small_network.segments()
            if s.road_class == "local"
        )
        assert costs[local] > costs[arterial]

    def test_class_cost_table_ordered(self):
        assert (
            DEFAULT_CLASS_COSTS["highway"]
            < DEFAULT_CLASS_COSTS["arterial"]
            < DEFAULT_CLASS_COSTS["collector"]
            < DEFAULT_CLASS_COSTS["local"]
        )


class TestSelection:
    def test_budget_respected(self):
        objective = SeedSelectionObjective(small_graph(), min_fidelity=0.01)
        costs = {0: 1.0, 1: 2.0, 2: 1.0, 3: 2.0, 4: 1.0}
        result = cost_aware_select(objective, costs, budget_cost=3.0)
        assert selection_cost(result.seeds, costs) <= 3.0
        assert result.seeds  # something affordable was chosen

    def test_uniform_costs_match_lazy_greedy(self):
        """With unit costs and integral budget, result equals plain greedy."""
        from repro.seeds.lazy import lazy_greedy_select

        objective = SeedSelectionObjective(small_graph(), min_fidelity=0.01)
        costs = {r: 1.0 for r in objective.road_ids}
        budgeted = cost_aware_select(objective, costs, budget_cost=2.0)
        plain = lazy_greedy_select(objective, 2)
        assert set(budgeted.seeds) == set(plain.seeds)

    def test_cheap_coverage_preferred_under_tight_budget(self):
        """Ratio pass wins when expensive hubs crowd out cheap spread."""
        # Star: hub 0 covers everything but costs the whole budget;
        # two cheap leaves cover almost as much together.
        graph = CorrelationGraph(
            [0, 1, 2, 3, 4],
            [
                CorrelationEdge(0, 1, 0.9),
                CorrelationEdge(0, 2, 0.9),
                CorrelationEdge(0, 3, 0.9),
                CorrelationEdge(0, 4, 0.9),
            ],
        )
        objective = SeedSelectionObjective(graph, min_fidelity=0.01)
        costs = {0: 4.0, 1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0}
        result = cost_aware_select(objective, costs, budget_cost=4.0)
        # Four leaves (cost 4) beat the single hub (cost 4): the leaves
        # cover themselves fully plus the hub at high fidelity.
        assert 0 not in result.seeds
        assert len(result.seeds) == 4

    def test_validation(self):
        objective = SeedSelectionObjective(small_graph())
        good = {r: 1.0 for r in objective.road_ids}
        with pytest.raises(SelectionError):
            cost_aware_select(objective, good, budget_cost=0)
        with pytest.raises(SelectionError):
            cost_aware_select(objective, {0: 1.0}, budget_cost=5)
        with pytest.raises(SelectionError):
            bad = dict(good)
            bad[0] = -1.0
            cost_aware_select(objective, bad, budget_cost=5)
        with pytest.raises(SelectionError):
            cost_aware_select(objective, {r: 10.0 for r in good}, budget_cost=5)

    def test_approximation_vs_brute_force(self):
        """Combined algorithm >= 1/2(1-1/e) of the budgeted optimum."""
        objective = SeedSelectionObjective(small_graph(), min_fidelity=0.01)
        costs = {0: 1.0, 1: 3.0, 2: 1.5, 3: 2.0, 4: 1.0}
        budget = 4.0
        roads = objective.road_ids
        best = 0.0
        for size in range(1, len(roads) + 1):
            for combo in itertools.combinations(roads, size):
                if sum(costs[r] for r in combo) <= budget:
                    best = max(best, objective.value(list(combo)))
        result = cost_aware_select(objective, costs, budget)
        assert result.final_value >= 0.5 * (1 - 1 / 2.718281828) * best

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_never_exceeds_budget_property(self, data):
        objective = SeedSelectionObjective(small_graph(), min_fidelity=0.01)
        costs = {
            r: data.draw(st.floats(min_value=0.5, max_value=3.0))
            for r in objective.road_ids
        }
        budget = data.draw(st.floats(min_value=0.5, max_value=8.0))
        if min(costs.values()) > budget:
            with pytest.raises(SelectionError):
                cost_aware_select(objective, costs, budget)
            return
        result = cost_aware_select(objective, costs, budget)
        assert selection_cost(result.seeds, costs) <= budget + 1e-9
        # Monotone values.
        assert all(a <= b + 1e-9 for a, b in zip(result.values, result.values[1:]))
