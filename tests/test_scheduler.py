"""Tests for the adaptive crowd-budget scheduler."""

import pytest

from repro.core.errors import CrowdsourcingError
from repro.crowd.scheduler import AdaptiveBudgetScheduler, RoundPlan


SEEDS = list(range(100, 120))


def neutral(seeds, value=1.0):
    return {s: value for s in seeds}


class TestConstruction:
    def test_light_set_is_spread_subset(self):
        scheduler = AdaptiveBudgetScheduler(SEEDS, light_fraction=0.25)
        assert set(scheduler.light_seeds) <= set(scheduler.full_seeds)
        assert len(scheduler.light_seeds) == 5

    def test_validation(self):
        with pytest.raises(CrowdsourcingError):
            AdaptiveBudgetScheduler([])
        with pytest.raises(CrowdsourcingError):
            AdaptiveBudgetScheduler(SEEDS, light_fraction=0.0)
        with pytest.raises(CrowdsourcingError):
            AdaptiveBudgetScheduler(SEEDS, max_light_rounds=0)
        with pytest.raises(CrowdsourcingError):
            AdaptiveBudgetScheduler(SEEDS, drift_threshold=0)


class TestScheduling:
    def test_bootstrap_is_full(self):
        scheduler = AdaptiveBudgetScheduler(SEEDS)
        plan = scheduler.plan_round()
        assert plan.is_full and plan.reason == "bootstrap"

    def test_calm_traffic_goes_light(self):
        scheduler = AdaptiveBudgetScheduler(SEEDS, max_light_rounds=5)
        plan = scheduler.plan_round()
        scheduler.record_round(plan, neutral(plan.seeds))
        for _ in range(4):
            plan = scheduler.plan_round()
            assert not plan.is_full
            scheduler.record_round(plan, neutral(plan.seeds))
        assert scheduler.light_rounds == 4
        assert scheduler.savings_fraction() > 0.5

    def test_staleness_deadline_forces_full(self):
        scheduler = AdaptiveBudgetScheduler(SEEDS, max_light_rounds=3)
        plan = scheduler.plan_round()
        scheduler.record_round(plan, neutral(plan.seeds))
        for _ in range(3):
            plan = scheduler.plan_round()
            scheduler.record_round(plan, neutral(plan.seeds))
        plan = scheduler.plan_round()
        assert plan.is_full
        assert plan.reason == "staleness deadline"

    def test_drift_triggers_full_round(self):
        scheduler = AdaptiveBudgetScheduler(
            SEEDS, max_light_rounds=50, drift_threshold=0.05
        )
        plan = scheduler.plan_round()
        scheduler.record_round(plan, neutral(plan.seeds, 1.0))
        # Calm light round.
        plan = scheduler.plan_round()
        scheduler.record_round(plan, neutral(plan.seeds, 1.01))
        assert not scheduler.plan_round().is_full
        scheduler.record_round(
            scheduler.plan_round(), neutral(scheduler.light_seeds, 1.02)
        )
        # Traffic shifts hard: sentinels report a 20% drop.
        plan = scheduler.plan_round()
        scheduler.record_round(plan, neutral(plan.seeds, 0.8))
        escalation = scheduler.plan_round()
        assert escalation.is_full
        assert escalation.reason == "drift detected"

    def test_full_round_resets_baseline(self):
        scheduler = AdaptiveBudgetScheduler(
            SEEDS, max_light_rounds=50, drift_threshold=0.05
        )
        plan = scheduler.plan_round()
        scheduler.record_round(plan, neutral(plan.seeds, 1.0))
        plan = scheduler.plan_round()
        scheduler.record_round(plan, neutral(plan.seeds, 0.8))  # drift
        plan = scheduler.plan_round()
        assert plan.is_full
        scheduler.record_round(plan, neutral(plan.seeds, 0.8))  # new normal
        # Sentinels at the new level are calm again.
        plan = scheduler.plan_round()
        assert not plan.is_full
        scheduler.record_round(plan, neutral(plan.seeds, 0.81))
        assert not scheduler.plan_round().is_full

    def test_partial_round_counts_as_degraded(self):
        """Missing observations no longer raise: the round is recorded
        as degraded and the next round escalates to full."""
        scheduler = AdaptiveBudgetScheduler(SEEDS)
        plan = scheduler.plan_round()
        scheduler.record_round(plan, {})
        assert scheduler.degraded_rounds == 1
        escalation = scheduler.plan_round()
        assert escalation.is_full
        assert escalation.reason == "degraded round"

    def test_degraded_flag_escalates_to_full(self):
        scheduler = AdaptiveBudgetScheduler(SEEDS)
        plan = scheduler.plan_round()
        scheduler.record_round(plan, neutral(plan.seeds))
        plan = scheduler.plan_round()
        assert not plan.is_full
        # The caller saw seed substitution this round.
        scheduler.record_round(plan, neutral(plan.seeds), degraded=True)
        escalation = scheduler.plan_round()
        assert escalation.is_full
        assert escalation.reason == "degraded round"
        # A clean full round clears the escalation.
        scheduler.record_round(escalation, neutral(escalation.seeds))
        assert not scheduler.plan_round().is_full

    def test_light_round_without_comparable_sentinels_counts_degraded(self):
        """Regression: sentinels observed but absent from the baseline
        escalated without incrementing degraded_rounds, undercounting
        relative to every other degraded path."""
        scheduler = AdaptiveBudgetScheduler(SEEDS)
        plan = scheduler.plan_round()
        scheduler.record_round(plan, neutral(plan.seeds))
        stray = RoundPlan((999,), False, "calm")  # unknown to baseline
        scheduler.record_round(stray, neutral(stray.seeds))
        assert scheduler.degraded_rounds == 1
        escalation = scheduler.plan_round()
        assert escalation.is_full and escalation.reason == "degraded round"

    def test_seed_key_is_order_insensitive(self):
        assert RoundPlan((3, 1, 2), True, "x").seed_key == RoundPlan(
            (1, 2, 3), True, "y"
        ).seed_key

    def test_plan_stability_tracked_across_rounds(self):
        """Stable seed sets are counted so plan-cache warmth is visible."""
        scheduler = AdaptiveBudgetScheduler(SEEDS, max_light_rounds=5)
        assert scheduler.plan_stable_rounds == 0
        full = scheduler.plan_round()
        scheduler.record_round(full, neutral(full.seeds))
        assert scheduler.plan_stable_rounds == 1  # first round: new key
        light = scheduler.plan_round()
        scheduler.record_round(light, neutral(light.seeds))
        assert scheduler.plan_stable_rounds == 1  # full -> light: key changed
        light = scheduler.plan_round()
        scheduler.record_round(light, neutral(light.seeds))
        light = scheduler.plan_round()
        scheduler.record_round(light, neutral(light.seeds))
        assert scheduler.plan_stable_rounds == 3  # three light rounds in a row

    def test_degraded_full_round_keeps_escalating(self):
        scheduler = AdaptiveBudgetScheduler(SEEDS)
        plan = scheduler.plan_round()
        observed = {s: 1.0 for s in plan.seeds if s != plan.seeds[0]}
        scheduler.record_round(plan, observed)  # partial full round
        again = scheduler.plan_round()
        assert again.is_full and again.reason == "degraded round"

    def test_partial_full_round_keeps_old_baseline_values(self):
        """A full round that misses a sentinel must not lose that
        sentinel's baseline entry — later light rounds still judge it
        against the last value actually observed."""
        scheduler = AdaptiveBudgetScheduler(
            SEEDS, max_light_rounds=2, drift_threshold=0.05
        )
        plan = scheduler.plan_round()  # bootstrap full
        scheduler.record_round(plan, neutral(plan.seeds, 1.0))
        for _ in range(2):  # burn the light-round allowance
            plan = scheduler.plan_round()
            scheduler.record_round(plan, neutral(plan.seeds, 1.0))
        missing = scheduler.light_seeds[0]
        plan = scheduler.plan_round()  # staleness-deadline full
        assert plan.is_full
        scheduler.record_round(
            plan, {s: 1.0 for s in plan.seeds if s != missing}
        )
        full = scheduler.plan_round()  # degraded escalation
        assert full.reason == "degraded round"
        scheduler.record_round(full, neutral(full.seeds, 1.0))
        light = scheduler.plan_round()
        assert not light.is_full
        scheduler.record_round(light, neutral(light.seeds, 1.0))
        assert not scheduler.plan_round().is_full

    def test_drift_boundary_is_exclusive(self):
        """A mean sentinel shift exactly at the threshold stays calm;
        one above it escalates. (0.0625 is exactly representable, so
        the boundary comparison is float-safe.)"""
        for shift, expect_full in ((0.0625, False), (0.07, True)):
            scheduler = AdaptiveBudgetScheduler(
                SEEDS, max_light_rounds=50, drift_threshold=0.0625
            )
            plan = scheduler.plan_round()
            scheduler.record_round(plan, neutral(plan.seeds, 1.0))
            plan = scheduler.plan_round()
            scheduler.record_round(plan, neutral(plan.seeds, 1.0 + shift))
            assert scheduler.plan_round().is_full == expect_full

    def test_staleness_deadline_boundary(self):
        """Exactly max_light_rounds light rounds are allowed; the next
        plan is the escalation."""
        scheduler = AdaptiveBudgetScheduler(SEEDS, max_light_rounds=2)
        plan = scheduler.plan_round()
        scheduler.record_round(plan, neutral(plan.seeds))
        for _ in range(2):
            plan = scheduler.plan_round()
            assert not plan.is_full
            scheduler.record_round(plan, neutral(plan.seeds))
        plan = scheduler.plan_round()
        assert plan.is_full and plan.reason == "staleness deadline"

    def test_accounting(self):
        scheduler = AdaptiveBudgetScheduler(SEEDS, max_light_rounds=10)
        plan = scheduler.plan_round()
        scheduler.record_round(plan, neutral(plan.seeds))
        plan = scheduler.plan_round()
        scheduler.record_round(plan, neutral(plan.seeds))
        assert scheduler.full_rounds == 1
        assert scheduler.light_rounds == 1
        assert scheduler.queries_issued == len(SEEDS) + len(scheduler.light_seeds)


class TestEndToEnd:
    def test_scheduler_saves_queries_with_small_accuracy_cost(self, small_dataset):
        """Driving the real pipeline with the scheduler: large savings,
        bounded accuracy loss versus always-full rounds."""
        import numpy as np

        from repro.core.pipeline import SpeedEstimationSystem

        city = small_dataset
        system = SpeedEstimationSystem.from_parts(
            city.network, city.store, city.graph
        )
        seeds = system.select_seeds(12)
        scheduler = AdaptiveBudgetScheduler(
            seeds, light_fraction=0.3, max_light_rounds=4
        )

        adaptive_err, full_err = [], []
        for interval in city.test_day_intervals(stride=2):
            truth = city.test.speeds_at(interval)
            # Adaptive: query only the planned seeds.
            plan = scheduler.plan_round()
            observed = {r: truth[r] for r in plan.seeds}
            estimates = system.estimate(interval, observed)
            scheduler.record_round(
                plan,
                {
                    r: city.store.deviation_ratio(r, interval, observed[r])
                    for r in plan.seeds
                },
            )
            # Reference: always query everything.
            reference = system.estimate(
                interval, {r: truth[r] for r in seeds}
            )
            for road in city.network.road_ids():
                if road in set(seeds):
                    continue
                adaptive_err.append(abs(estimates[road].speed_kmh - truth[road]))
                full_err.append(abs(reference[road].speed_kmh - truth[road]))

        savings = scheduler.savings_fraction()
        assert savings > 0.25  # meaningful budget reduction
        # Accuracy cost stays modest.
        assert np.mean(adaptive_err) < np.mean(full_err) * 1.25


class TestSeedRefreshWarmth:
    """update_seeds: warmth survives an unchanged re-selected set."""

    def _warmed(self):
        scheduler = AdaptiveBudgetScheduler(SEEDS, max_light_rounds=3)
        plan = scheduler.plan_round()  # bootstrap full round
        scheduler.record_round(plan, neutral(plan.seeds))
        return scheduler

    def test_unchanged_set_preserves_warmth(self):
        scheduler = self._warmed()
        changed = scheduler.update_seeds(list(reversed(SEEDS)))  # same set
        assert changed is False
        assert scheduler.seed_refreshes == 1
        assert scheduler.stable_refreshes == 1
        # Baseline survived: the next round stays light, not bootstrap.
        plan = scheduler.plan_round()
        assert not plan.is_full
        assert plan.reason == "calm"

    def test_stable_refreshes_accumulate(self):
        scheduler = self._warmed()
        for _ in range(3):
            scheduler.update_seeds(SEEDS)
        assert scheduler.stable_refreshes == 3
        assert scheduler.seed_refreshes == 3

    def test_changed_set_resets_warmth(self):
        scheduler = self._warmed()
        scheduler.update_seeds(SEEDS)
        assert scheduler.stable_refreshes == 1
        new_seeds = SEEDS[:-1] + [999]
        changed = scheduler.update_seeds(new_seeds)
        assert changed is True
        assert scheduler.stable_refreshes == 0
        assert scheduler.full_seeds == tuple(new_seeds)
        assert set(scheduler.light_seeds) <= set(new_seeds)
        # Old baseline is gone: the next round bootstraps full.
        plan = scheduler.plan_round()
        assert plan.is_full
        assert plan.reason == "bootstrap"

    def test_empty_refresh_rejected(self):
        scheduler = self._warmed()
        with pytest.raises(CrowdsourcingError):
            scheduler.update_seeds([])
