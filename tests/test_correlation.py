"""Unit tests for correlation mining and the correlation graph."""

import numpy as np
import pytest

from repro.core.errors import DataError
from repro.core.field import SpeedField
from repro.history.correlation import (
    CorrelationEdge,
    CorrelationGraph,
    mine_correlation_graph,
)
from repro.history.store import HistoricalSpeedStore
from repro.history.timebuckets import TimeGrid


class TestCorrelationEdge:
    def test_other(self):
        edge = CorrelationEdge(1, 2, 0.7)
        assert edge.other(1) == 2
        assert edge.other(2) == 1
        with pytest.raises(DataError):
            edge.other(3)

    def test_validation(self):
        with pytest.raises(DataError):
            CorrelationEdge(1, 1, 0.7)
        with pytest.raises(DataError):
            CorrelationEdge(1, 2, 1.5)


class TestCorrelationGraph:
    @pytest.fixture
    def graph(self):
        return CorrelationGraph(
            [1, 2, 3, 4, 5],
            [
                CorrelationEdge(1, 2, 0.9),
                CorrelationEdge(2, 3, 0.7),
                CorrelationEdge(1, 3, 0.8),
            ],
        )

    def test_counts(self, graph):
        assert graph.num_roads == 5
        assert graph.num_edges == 3

    def test_neighbours_sorted_by_agreement(self, graph):
        edges = graph.neighbours(1)
        assert [e.agreement for e in edges] == [0.9, 0.8]
        assert graph.neighbour_ids(1) == [2, 3]

    def test_degree(self, graph):
        assert graph.degree(2) == 2
        assert graph.degree(4) == 0

    def test_agreement_lookup(self, graph):
        assert graph.agreement(1, 2) == 0.9
        assert graph.agreement(2, 1) == 0.9
        assert graph.agreement(1, 4) is None

    def test_edges_reported_once(self, graph):
        assert len(list(graph.edges())) == 3

    def test_average_degree(self, graph):
        assert graph.average_degree() == pytest.approx(6 / 5)

    def test_connected_components(self, graph):
        components = graph.connected_components()
        assert components[0] == [1, 2, 3]
        assert [4] in components and [5] in components

    def test_unknown_road_raises(self, graph):
        with pytest.raises(DataError):
            graph.neighbours(42)

    def test_duplicate_edge_rejected(self):
        with pytest.raises(DataError, match="duplicate"):
            CorrelationGraph(
                [1, 2],
                [CorrelationEdge(1, 2, 0.7), CorrelationEdge(2, 1, 0.8)],
            )

    def test_edge_with_unknown_road_rejected(self):
        with pytest.raises(DataError, match="unknown road"):
            CorrelationGraph([1, 2], [CorrelationEdge(1, 3, 0.7)])


class TestMining:
    def test_agreement_computation_exact(self, grid15):
        """Hand-built history with a known agreement rate."""
        # Roads 0, 1 adjacent in a 2-node line network.
        from repro.roadnet.geometry import Point
        from repro.roadnet.network import RoadNetwork

        net = RoadNetwork()
        net.add_intersection(0, Point(0, 0))
        net.add_intersection(1, Point(100, 0))
        net.add_segment(0, 0, 1)
        net.add_segment(1, 1, 0)

        # Construct speeds so trends agree in exactly 3/4 of intervals.
        # With a constant-per-bucket pattern over 4 days: speeds
        # alternate above/below the 4-day bucket mean.
        base = np.full((4 * 96, 2), 30.0)
        day = np.arange(4 * 96) // 96
        base[day == 0, 0] += 5  # road0 rises on days 0,1
        base[day == 1, 0] += 5
        base[day == 0, 1] += 5  # road1 rises on days 0,2
        base[day == 2, 1] += 5
        field = SpeedField(base, [0, 1], 0)
        store = HistoricalSpeedStore.from_fields(grid15, [field])
        graph = mine_correlation_graph(net, store, max_hops=1, min_agreement=0.5)
        # trends agree on days 0 (both rise) and 3 (both fall) = 2/4.
        # NOTE: adjacent_roads excludes the reverse twin, so no edge.
        assert graph.num_edges == 0

    def test_mined_graph_covers_all_roads(self, small_dataset):
        graph = small_dataset.graph
        assert set(graph.road_ids) == set(small_dataset.network.road_ids())

    def test_agreements_at_least_threshold(self, small_dataset):
        for edge in small_dataset.graph.edges():
            assert edge.agreement >= 0.6

    def test_edges_respect_hop_limit(self, small_dataset):
        net = small_dataset.network
        for edge in list(small_dataset.graph.edges())[:50]:
            hops = net.roads_within_hops(edge.road_u, 2)
            assert edge.road_v in hops

    def test_agreement_matches_manual_computation(self, small_dataset):
        store = small_dataset.store
        trends = store.trend_matrix()
        edge = next(iter(small_dataset.graph.edges()))
        u = store.road_column(edge.road_u)
        v = store.road_column(edge.road_v)
        manual = (trends[:, u] == trends[:, v]).mean()
        assert edge.agreement == pytest.approx(manual)

    def test_higher_threshold_fewer_edges(self, small_dataset):
        net, store = small_dataset.network, small_dataset.store
        loose = mine_correlation_graph(net, store, min_agreement=0.55)
        tight = mine_correlation_graph(net, store, min_agreement=0.75)
        assert tight.num_edges < loose.num_edges

    def test_more_hops_more_edges(self, small_dataset):
        net, store = small_dataset.network, small_dataset.store
        near = mine_correlation_graph(net, store, max_hops=1)
        far = mine_correlation_graph(net, store, max_hops=3)
        assert far.num_edges > near.num_edges

    def test_parameter_validation(self, small_dataset):
        net, store = small_dataset.network, small_dataset.store
        with pytest.raises(DataError):
            mine_correlation_graph(net, store, max_hops=0)
        with pytest.raises(DataError):
            mine_correlation_graph(net, store, min_agreement=0.4)


class _StubStore:
    """Just enough store surface for mining: ids + a crafted trend matrix."""

    def __init__(self, road_ids, trends):
        self.road_ids = list(road_ids)
        self._trends = np.asarray(trends)

    def trend_matrix(self):
        return self._trends


def _line_network(num_roads):
    from repro.roadnet.geometry import Point
    from repro.roadnet.network import RoadNetwork

    net = RoadNetwork()
    for node in range(num_roads + 1):
        net.add_intersection(node, Point(100.0 * node, 0))
    for road in range(num_roads):
        net.add_segment(road, road, road + 1)
    return net


class TestZeroTrendMasking:
    """Zero (flat/missing) trends must not bias agreement.

    The matmul identity P(t_u == t_v) = (1 + E[t_u t_v]) / 2 silently
    counts every interval where either trend is 0 as *half* an
    agreement. The masked path scores only intervals where both trends
    are nonzero; these tests pin the corrected values.
    """

    def test_zero_trends_excluded_from_agreement(self):
        # Roads agree on every interval where both have a trend (3/3),
        # but road 0 is flat for the remaining five intervals. The old
        # biased identity yielded (1 + 3/8) / 2 = 0.6875; the corrected
        # agreement is 1.0.
        trends = np.array(
            [
                [1, 1], [1, 1], [1, 1],
                [0, 1], [0, 1], [0, 1], [0, 1], [0, 1],
            ],
            dtype=np.int8,
        )
        store = _StubStore([0, 1], trends)
        graph = mine_correlation_graph(
            _line_network(2), store, max_hops=1, min_agreement=0.5
        )
        assert graph.agreement(0, 1) == pytest.approx(1.0)
        assert graph.agreement(0, 1) != pytest.approx(0.6875)

    def test_disagreement_not_diluted_by_zeros(self):
        # Valid intervals split 1 agree / 3 disagree -> 0.25, below any
        # admissible threshold; the biased identity got
        # (1 + (1 - 3)/8) / 2 = 0.375 from the same data.
        trends = np.array(
            [
                [1, 1], [1, -1], [1, -1], [-1, 1],
                [0, 1], [0, -1], [0, 1], [0, -1],
            ],
            dtype=np.int8,
        )
        store = _StubStore([0, 1], trends)
        graph = mine_correlation_graph(
            _line_network(2), store, max_hops=1, min_agreement=0.5
        )
        assert graph.agreement(0, 1) is None

    def test_pair_with_no_valid_intervals_rejected(self):
        trends = np.array([[0, 1], [0, -1], [0, 1]], dtype=np.int8)
        store = _StubStore([0, 1], trends)
        graph = mine_correlation_graph(
            _line_network(2), store, max_hops=1, min_agreement=0.5
        )
        assert graph.num_edges == 0

    def test_masked_path_matches_identity_on_pm1_pairs(self):
        # A zero anywhere in the matrix routes *all* pairs through the
        # masked path; pairs whose own columns are strictly +-1 must
        # still score exactly what the fast identity gives them.
        rng = np.random.default_rng(4)
        base = rng.choice([-1, 1], size=96).astype(np.int8)
        partner = base.copy()
        partner[:20] *= -1  # disagree on exactly 20/96 intervals
        trends = np.stack([base, partner, base], axis=1)
        zeroed = trends.copy()
        zeroed[:, 2] = 0  # only road 2's column has zeros
        fast = mine_correlation_graph(
            _line_network(3),
            _StubStore([0, 1, 2], trends),
            max_hops=1,
            min_agreement=0.5,
        )
        masked = mine_correlation_graph(
            _line_network(3),
            _StubStore([0, 1, 2], zeroed),
            max_hops=1,
            min_agreement=0.5,
        )
        assert fast.agreement(0, 1) == pytest.approx(76 / 96)
        assert masked.agreement(0, 1) == pytest.approx(76 / 96)

    def test_sparse_support_rejected_by_default(self):
        # One shared valid interval out of 20 scores a perfect 1.0 —
        # pure coin-flip evidence. The default min_valid_fraction=0.1
        # (here: needs >= 2 valid intervals) must reject it.
        trends = np.zeros((20, 2), dtype=np.int8)
        trends[:, 1] = 1
        trends[0, 0] = 1  # the single both-nonzero interval agrees
        store = _StubStore([0, 1], trends)
        graph = mine_correlation_graph(
            _line_network(2), store, max_hops=1, min_agreement=0.5
        )
        assert graph.num_edges == 0

    def test_sparse_support_kept_when_guard_disabled(self):
        # min_valid_fraction=0.0 restores the old keep-anything
        # behaviour: the same single-interval pair scores 1.0.
        trends = np.zeros((20, 2), dtype=np.int8)
        trends[:, 1] = 1
        trends[0, 0] = 1
        store = _StubStore([0, 1], trends)
        graph = mine_correlation_graph(
            _line_network(2),
            store,
            max_hops=1,
            min_agreement=0.5,
            min_valid_fraction=0.0,
        )
        assert graph.agreement(0, 1) == pytest.approx(1.0)

    def test_support_at_threshold_kept(self):
        # Exactly min_valid_fraction * intervals valid intervals is
        # enough (>=, not >): 2 valid of 20 at the default 0.1 passes.
        trends = np.zeros((20, 2), dtype=np.int8)
        trends[:, 1] = 1
        trends[0, 0] = 1
        trends[1, 0] = 1
        store = _StubStore([0, 1], trends)
        graph = mine_correlation_graph(
            _line_network(2), store, max_hops=1, min_agreement=0.5
        )
        assert graph.agreement(0, 1) == pytest.approx(1.0)

    def test_min_valid_fraction_validation(self):
        trends = np.array([[1, 1], [1, 1]], dtype=np.int8)
        store = _StubStore([0, 1], trends)
        for bad in (-0.1, 1.5):
            with pytest.raises(DataError, match="min_valid_fraction"):
                mine_correlation_graph(
                    _line_network(2), store, min_valid_fraction=bad
                )

    def test_guard_ignores_dense_pairs(self):
        # A well-evidenced pair in the same (zero-bearing) matrix keeps
        # its edge; the guard only prunes sparse-support pairs.
        rng = np.random.default_rng(11)
        base = rng.choice([-1, 1], size=40).astype(np.int8)
        trends = np.stack([base, base, np.zeros(40, dtype=np.int8)], axis=1)
        trends[0, 2] = 1  # single valid interval against roads 0/1
        store = _StubStore([0, 1, 2], trends)
        graph = mine_correlation_graph(
            _line_network(3), store, max_hops=2, min_agreement=0.5
        )
        assert graph.agreement(0, 1) == pytest.approx(1.0)
        assert graph.agreement(0, 2) is None
        assert graph.agreement(1, 2) is None

    def test_all_pm1_history_keeps_fast_path_results(self, small_dataset):
        # The workhorse dataset has no zero trends; re-mining must give
        # byte-identical agreements to the committed graph (fast path).
        remined = mine_correlation_graph(
            small_dataset.network, small_dataset.store
        )
        original = {
            (e.road_u, e.road_v): e.agreement
            for e in small_dataset.graph.edges()
        }
        assert {
            (e.road_u, e.road_v): e.agreement for e in remined.edges()
        } == original
