"""Tests for routing on estimated speeds."""

import pytest

from repro.core.errors import NetworkError
from repro.core.routing import (
    MIN_PLANNING_SPEED_KMH,
    RoutePlanner,
    road_travel_time_s,
    route_travel_time_s,
)
from repro.roadnet.geometry import Point
from repro.roadnet.network import RoadNetwork


@pytest.fixture
def diamond():
    """Two routes 0->3: top (roads 0,1) and bottom (roads 2,3)."""
    net = RoadNetwork()
    for node, (x, y) in enumerate([(0, 0), (1000, 500), (1000, -500), (2000, 0)]):
        net.add_intersection(node, Point(x, y))
    net.add_segment(0, 0, 1, road_class="arterial", length_m=1000)
    net.add_segment(1, 1, 3, road_class="arterial", length_m=1000)
    net.add_segment(2, 0, 2, road_class="arterial", length_m=1000)
    net.add_segment(3, 2, 3, road_class="arterial", length_m=1000)
    return net


class TestTravelTime:
    def test_road_time(self, diamond):
        # 1000 m at 36 km/h = 100 s.
        assert road_travel_time_s(diamond, 0, 36.0) == pytest.approx(100.0)

    def test_speed_floor(self, diamond):
        floored = road_travel_time_s(diamond, 0, 0.0)
        assert floored == road_travel_time_s(diamond, 0, MIN_PLANNING_SPEED_KMH)

    def test_route_time_sums(self, diamond):
        t = route_travel_time_s(diamond, [0, 1], {0: 36.0, 1: 18.0})
        assert t == pytest.approx(100.0 + 200.0)

    def test_route_time_free_flow_fallback(self, diamond):
        t = route_travel_time_s(diamond, [0], {})
        expected = 1000 / (diamond.segment(0).free_flow_kmh / 3.6)
        assert t == pytest.approx(expected)

    def test_empty_route(self, diamond):
        assert route_travel_time_s(diamond, [], {}) == 0.0

    def test_broken_route_rejected(self, diamond):
        with pytest.raises(NetworkError, match="breaks"):
            route_travel_time_s(diamond, [0, 3], {})


class TestPlanner:
    def test_picks_faster_branch(self, diamond):
        planner = RoutePlanner(diamond)
        # Top congested, bottom free.
        plan = planner.fastest_route(0, 3, {0: 10.0, 1: 10.0, 2: 60.0, 3: 60.0})
        assert plan.route == (2, 3)
        # Reversed congestion flips the choice.
        plan = planner.fastest_route(0, 3, {0: 60.0, 1: 60.0, 2: 10.0, 3: 10.0})
        assert plan.route == (0, 1)

    def test_eta_matches_route_time(self, diamond):
        planner = RoutePlanner(diamond)
        speeds = {0: 30.0, 1: 40.0, 2: 50.0, 3: 20.0}
        plan = planner.fastest_route(0, 3, speeds)
        assert plan.eta_s == pytest.approx(
            route_travel_time_s(diamond, list(plan.route), speeds)
        )

    def test_same_node(self, diamond):
        plan = RoutePlanner(diamond).fastest_route(2, 2, {})
        assert plan.route == ()
        assert plan.eta_s == 0.0

    def test_unreachable(self, diamond):
        # No road enters node 0.
        assert RoutePlanner(diamond).fastest_route(3, 0, {}) is None

    def test_unknown_node(self, diamond):
        with pytest.raises(NetworkError):
            RoutePlanner(diamond).fastest_route(0, 99, {})

    def test_eta_error_sign(self, diamond):
        planner = RoutePlanner(diamond)
        believed = {0: 60.0, 1: 60.0, 2: 10.0, 3: 10.0}
        plan = planner.fastest_route(0, 3, believed)
        # Reality is slower than believed -> planned < actual -> negative.
        truth = {0: 30.0, 1: 30.0, 2: 10.0, 3: 10.0}
        assert planner.eta_error_s(plan, truth) < 0

    def test_estimates_give_better_eta_than_free_flow(self, small_dataset):
        """Integration: planning on two-step estimates beats planning on
        free-flow assumptions, measured as |ETA error| on true speeds."""
        import numpy as np

        from repro.core.pipeline import SpeedEstimationSystem

        city = small_dataset
        system = SpeedEstimationSystem.from_parts(
            city.network, city.store, city.graph
        )
        seeds = system.select_seeds(10)
        interval = city.test_day_intervals()[34]
        crowd = {r: city.test.speed(r, interval) for r in seeds}
        estimates = system.estimate(interval, crowd)
        est_speeds = {r: e.speed_kmh for r, e in estimates.items()}
        true_speeds = city.test.speeds_at(interval)

        planner = RoutePlanner(city.network)
        rng = np.random.default_rng(3)
        nodes = city.network.node_ids()
        est_errors, ff_errors = [], []
        for _ in range(25):
            a, b = rng.choice(nodes, size=2, replace=False)
            plan_est = planner.fastest_route(int(a), int(b), est_speeds)
            plan_ff = planner.fastest_route(int(a), int(b), {})
            if plan_est is None or plan_ff is None or not plan_est.route:
                continue
            est_errors.append(abs(planner.eta_error_s(plan_est, true_speeds)))
            ff_errors.append(abs(planner.eta_error_s(plan_ff, true_speeds)))
        assert np.mean(est_errors) < np.mean(ff_errors)
