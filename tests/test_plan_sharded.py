"""District-sharded interval plans: bitwise differentials and scoped eviction.

The sharded Step-2 serving path (``repro.speed.shardplan``) must be
**bitwise identical** to the monolithic plan — not merely close: every
per-road quantity in the evaluation is row-independent, so compiling
district slices and stitching them back must reproduce the monolithic
arrays bit for bit, across any partition shape, with or without the
compile process pool. Delta eviction must be district-scoped: a row
invalidation recompiles only the districts a dropped seed's influence
touches, and untouched districts' structures survive by object identity.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.errors import InferenceError
from repro.history.correlation import CorrelationEdge, CorrelationGraph
from repro.history.fidelity import FidelityCacheService
from repro.history.incremental import GraphDelta
from repro.obs import FlightRecorder, set_recorder
from repro.speed.estimator import TwoStepEstimator
from repro.speed.hlm import HierarchicalLinearModel, HlmParams
from repro.speed.plan import IntervalPlanCache
from repro.speed.shardplan import PlanCompilePool, ShardedIntervalPlanner


def _counter(rec, name, **labels):
    return rec.registry.counter(name, **labels).value


@pytest.fixture(scope="module")
def fitted(small_dataset):
    """One fitted HLM shared by every estimator in this module."""
    params = HlmParams()
    hlm = HierarchicalLinearModel.fit(
        small_dataset.store, small_dataset.network, small_dataset.graph, params
    )
    return small_dataset, hlm, params


def _estimator(dataset, hlm, params, partitions=None, pool=None, graph=None):
    """A fresh estimator; sharded when ``partitions`` is given."""
    factory = None
    if partitions is not None:
        def factory(store, network, hlm_, road_ids):
            return ShardedIntervalPlanner(
                store, network, hlm_, road_ids, partitions, pool=pool
            )
    return TwoStepEstimator(
        dataset.network,
        dataset.store,
        graph if graph is not None else dataset.graph,
        hlm=hlm,
        hlm_params=params,
        fidelity_service=FidelityCacheService(),
        planner_factory=factory,
    )


def _chunks(road_ids, num_districts):
    """Contiguous near-even partition of the road order."""
    roads = list(road_ids)
    num_districts = min(num_districts, len(roads))
    bounds = np.linspace(0, len(roads), num_districts + 1).astype(int)
    return [
        tuple(roads[bounds[i]: bounds[i + 1]])
        for i in range(num_districts)
        if bounds[i] < bounds[i + 1]
    ]


def _speeds(dataset, seeds, interval, factor=1.0):
    return {r: dataset.test.speed(r, interval) * factor for r in seeds}


def _assert_bitwise(a, b):
    assert set(a) == set(b)
    for road in a:
        assert a[road] == b[road], (
            f"road {road}: sharded {b[road]} != monolithic {a[road]}"
        )


class TestShardedBitwise:
    @pytest.mark.parametrize("num_districts", [1, 2, 7, 10_000])
    def test_matches_monolithic(self, fitted, num_districts):
        dataset, hlm, params = fitted
        roads = list(dataset.graph.road_ids)
        mono = _estimator(dataset, hlm, params)
        shard = _estimator(
            dataset, hlm, params, partitions=_chunks(roads, num_districts)
        )
        seeds = roads[::17][:7]
        intervals = dataset.test_day_intervals()[:3]
        for factor in (1.0, 0.82):
            for interval in intervals:
                speeds = _speeds(dataset, seeds, interval, factor)
                _assert_bitwise(
                    mono.estimate_interval(interval, speeds),
                    shard.estimate_interval(interval, speeds),
                )

    def test_seeds_concentrated_in_one_district(self, fitted):
        dataset, hlm, params = fitted
        roads = list(dataset.graph.road_ids)
        partitions = _chunks(roads, 4)
        mono = _estimator(dataset, hlm, params)
        shard = _estimator(dataset, hlm, params, partitions=partitions)
        seeds = list(partitions[0])[:6]  # every seed in district 0
        interval = dataset.test_day_intervals()[0]
        speeds = _speeds(dataset, seeds, interval)
        _assert_bitwise(
            mono.estimate_interval(interval, speeds),
            shard.estimate_interval(interval, speeds),
        )

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_ragged_partitions_property(self, fitted, data):
        """Any disjoint contiguous cover, any seed subset: bitwise equal."""
        dataset, hlm, params = fitted
        roads = list(dataset.graph.road_ids)
        n = len(roads)
        cuts = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=n - 1),
                min_size=0,
                max_size=6,
                unique=True,
            ),
            label="cuts",
        )
        bounds = [0, *sorted(cuts), n]
        partitions = [
            tuple(roads[lo:hi]) for lo, hi in zip(bounds, bounds[1:]) if lo < hi
        ]
        seed_idx = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=2,
                max_size=8,
                unique=True,
            ),
            label="seeds",
        )
        seeds = [roads[i] for i in seed_idx]
        mono = _estimator(dataset, hlm, params)
        shard = _estimator(dataset, hlm, params, partitions=partitions)
        interval = dataset.test_day_intervals()[1]
        speeds = _speeds(dataset, seeds, interval)
        _assert_bitwise(
            mono.estimate_interval(interval, speeds),
            shard.estimate_interval(interval, speeds),
        )

    def test_rejects_bad_partitions(self, fitted):
        dataset, hlm, params = fitted
        roads = list(dataset.graph.road_ids)
        with pytest.raises(InferenceError):
            ShardedIntervalPlanner(
                dataset.store, dataset.network, hlm, roads, []
            )
        with pytest.raises(InferenceError, match="more than one district"):
            ShardedIntervalPlanner(
                dataset.store, dataset.network, hlm, roads,
                [tuple(roads), (roads[0],)],
            )
        with pytest.raises(InferenceError, match="cover"):
            ShardedIntervalPlanner(
                dataset.store, dataset.network, hlm, roads, [tuple(roads[:10])]
            )


class TestPoolDifferential:
    def test_two_workers_four_districts_bitwise(self, fitted):
        """The CI differential: worker-compiled shards == monolithic."""
        dataset, hlm, params = fitted
        roads = list(dataset.graph.road_ids)
        mono = _estimator(dataset, hlm, params)
        with PlanCompilePool(hlm, dataset.store, num_workers=2) as pool:
            shard = _estimator(
                dataset, hlm, params,
                partitions=_chunks(roads, 4), pool=pool,
            )
            seeds = roads[::13][:8]
            for interval in dataset.test_day_intervals()[:2]:
                speeds = _speeds(dataset, seeds, interval)
                _assert_bitwise(
                    mono.estimate_interval(interval, speeds),
                    shard.estimate_interval(interval, speeds),
                )

    def test_closed_pool_raises(self, fitted):
        dataset, hlm, params = fitted
        pool = PlanCompilePool(hlm, dataset.store, num_workers=1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(InferenceError, match="closed"):
            pool.compile_shards((1,), [])


def _split_graph(road_ids):
    """Two disconnected chain components over one road set.

    Influence cannot cross components, so a delta in one half must
    leave the other half's shard untouched — the isolation the
    district-scoped eviction assertions need.
    """
    roads = sorted(road_ids)
    half = len(roads) // 2
    first, second = roads[:half], roads[half:]
    edges = [
        CorrelationEdge(a, b, 0.8)
        for chunk in (first, second)
        for a, b in zip(chunk, chunk[1:])
    ]
    return CorrelationGraph(roads, edges), tuple(first), tuple(second)


class TestDistrictScopedEviction:
    def _build(self, dataset):
        graph, first, second = _split_graph(dataset.graph.road_ids)
        params = HlmParams()
        hlm = HierarchicalLinearModel.fit(
            dataset.store, dataset.network, graph, params
        )
        fidelity = FidelityCacheService()
        cache = IntervalPlanCache(maxsize=8).attach(fidelity)

        def factory(store, network, hlm_, road_ids):
            return ShardedIntervalPlanner(
                store, network, hlm_, road_ids, [first, second]
            )

        est = TwoStepEstimator(
            dataset.network,
            dataset.store,
            graph,
            hlm=hlm,
            hlm_params=params,
            fidelity_service=fidelity,
            plan_cache=cache,
            planner_factory=factory,
        )
        return graph, hlm, params, fidelity, cache, est, first, second

    def test_delta_recompiles_only_touched_district(self, small_dataset):
        rec = FlightRecorder()
        previous = set_recorder(rec)
        try:
            graph, hlm, params, fidelity, cache, est, first, second = (
                self._build(small_dataset)
            )
            seeds = [first[5], first[20], second[5], second[20]]
            interval = small_dataset.test_day_intervals()[0]
            speeds = _speeds(small_dataset, seeds, interval)
            before = est.estimate_interval(interval, speeds)
            assert cache.stats().size == 1
            assert _counter(rec, "plan.shard_compiles", district="0") == 1
            assert _counter(rec, "plan.shard_compiles", district="1") == 1

            plan = next(iter(cache._plans.values()))
            structures = {s.district: s.structure for s in plan.shards}

            # Reweight one edge deep inside the *second* component.
            edge = graph.neighbours(second[5])[0]
            delta = GraphDelta(
                added=(),
                removed=(),
                reweighted=(
                    CorrelationEdge(edge.road_u, edge.road_v, 0.93),
                ),
            )
            graph.apply_delta(delta)
            dropped = fidelity.apply_graph_delta(graph, delta)
            assert dropped, "delta must invalidate fidelity rows"
            assert set(dropped) <= set(second), (
                "disconnected components: drops stay in the touched half"
            )

            # The plan stayed cached; its shards were marked, not evicted.
            assert cache.stats().size == 1
            assert cache.stats().shard_evictions == 1
            assert next(iter(cache._plans.values())) is plan
            assert _counter(rec, "plan.shards_evicted") == 1

            after = est.estimate_interval(interval, speeds)
            refreshed = {s.district: s.structure for s in plan.shards}
            assert refreshed[0] is structures[0], (
                "untouched district's structure must survive by identity"
            )
            assert refreshed[1] is not structures[1]
            assert _counter(rec, "plan.shard_compiles", district="0") == 1
            assert _counter(rec, "plan.shard_compiles", district="1") == 2

            # And the recompiled result matches a cold monolithic
            # estimator over the mutated graph, bit for bit.
            mono = TwoStepEstimator(
                small_dataset.network,
                small_dataset.store,
                graph,
                hlm=hlm,
                hlm_params=params,
                fidelity_service=FidelityCacheService(),
            )
            _assert_bitwise(mono.estimate_interval(interval, speeds), after)
            # The delta moved the touched half's numbers.
            assert any(before[r] != after[r] for r in second)
        finally:
            set_recorder(previous)

    def test_mark_stale_without_seed_overlap_is_noop(self, small_dataset):
        graph, hlm, params, fidelity, cache, est, first, second = self._build(
            small_dataset
        )
        seeds = [first[5], second[5]]
        interval = small_dataset.test_day_intervals()[0]
        est.estimate_interval(interval, _speeds(small_dataset, seeds, interval))
        plan = next(iter(cache._plans.values()))
        structures = {s.district: s.structure for s in plan.shards}
        assert plan.mark_rows_stale({first[40], second[40]}) == 0
        est.estimate_interval(interval, _speeds(small_dataset, seeds, interval))
        assert all(
            s.structure is structures[s.district] for s in plan.shards
        )
