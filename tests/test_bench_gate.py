"""Unit tests for the benchmark-regression gate (benchmarks/bench_gate.py)."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from bench_gate import compare, load_timing_gauges, main  # noqa: E402


def snapshot(**gauges):
    """A minimal bench_timings.json payload with one labelled series each."""
    families = {}
    for name, entries in gauges.items():
        family = name.replace("__", ".")
        families[family] = {
            "kind": "gauge",
            "series": [
                {"labels": labels, "value": value} for labels, value in entries
            ],
        }
    return families


def write(tmp_path, filename, payload):
    path = tmp_path / filename
    path.write_text(json.dumps(payload))
    return path


BASE = {
    "bench.kernel_vs_scalar_seconds": {
        "kind": "gauge",
        "series": [
            {"labels": {"test": "f3", "path": "kernel"}, "value": 0.010},
            {"labels": {"test": "f3", "path": "scalar"}, "value": 0.100},
        ],
    },
    "bench.kernel_vs_scalar_speedup": {
        "kind": "gauge",
        "series": [{"labels": {"test": "f3"}, "value": 10.0}],
    },
    "bench.call_seconds": {
        "kind": "histogram",
        "series": [{"labels": {"test": "t"}, "count": 1, "sum": 5.0}],
    },
}


class TestLoading:
    def test_only_seconds_gauges_loaded(self, tmp_path):
        path = write(tmp_path, "base.json", BASE)
        gauges = load_timing_gauges(path)
        names = {family for family, _ in gauges}
        assert names == {"bench.kernel_vs_scalar_seconds"}
        assert len(gauges) == 2

    def test_labels_are_order_insensitive(self, tmp_path):
        a = write(
            tmp_path,
            "a.json",
            snapshot(x_seconds=[({"b": "2", "a": "1"}, 1.0)]),
        )
        b = write(
            tmp_path,
            "b.json",
            snapshot(x_seconds=[({"a": "1", "b": "2"}, 1.0)]),
        )
        assert load_timing_gauges(a) == load_timing_gauges(b)


class TestCompare:
    def test_no_regression_within_threshold(self):
        base = {("x_seconds", ()): 0.10}
        current = {("x_seconds", ()): 0.19}
        regressions, compared = compare(base, current, threshold=2.0)
        assert regressions == [] and compared == 1

    def test_slowdown_above_threshold_flagged(self):
        base = {("x_seconds", (("test", "t"),)): 0.10}
        current = {("x_seconds", (("test", "t"),)): 0.25}
        regressions, _ = compare(base, current, threshold=2.0)
        assert len(regressions) == 1
        family, labels, base_v, cur_v, ratio = regressions[0]
        assert family == "x_seconds" and labels == "test=t"
        assert ratio == pytest.approx(2.5)

    def test_series_only_in_one_snapshot_ignored(self):
        base = {("x_seconds", ()): 0.10, ("gone_seconds", ()): 0.10}
        current = {("x_seconds", ()): 0.10, ("new_seconds", ()): 9.9}
        regressions, compared = compare(base, current)
        assert regressions == [] and compared == 1

    def test_micro_timings_below_floor_skipped(self):
        base = {("x_seconds", ()): 1e-5}
        current = {("x_seconds", ()): 1e-3}  # 100x, but micro-scale
        regressions, compared = compare(base, current, min_seconds=0.001)
        assert regressions == [] and compared == 0

    def test_regressions_sorted_worst_first(self):
        base = {("a_seconds", ()): 0.1, ("b_seconds", ()): 0.1}
        current = {("a_seconds", ()): 0.3, ("b_seconds", ()): 0.9}
        regressions, _ = compare(base, current, threshold=2.0)
        assert [row[0] for row in regressions] == ["b_seconds", "a_seconds"]


class TestMain:
    def test_exit_zero_when_clean(self, tmp_path, capsys):
        base = write(tmp_path, "base.json", BASE)
        current = write(tmp_path, "current.json", BASE)
        assert main([str(base), str(current)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        slowed = json.loads(json.dumps(BASE))
        slowed["bench.kernel_vs_scalar_seconds"]["series"][0]["value"] = 0.05
        base = write(tmp_path, "base.json", BASE)
        current = write(tmp_path, "current.json", slowed)
        assert main([str(base), str(current)]) == 1
        out = capsys.readouterr().out
        assert "5.00x" in out and "path=kernel" in out

    def test_threshold_validated(self, tmp_path):
        base = write(tmp_path, "base.json", BASE)
        with pytest.raises(SystemExit):
            main([str(base), str(base), "--threshold", "1.0"])


class TestRequiredFamilies:
    def test_missing_required_prefix_fails(self, tmp_path, capsys):
        base = write(tmp_path, "base.json", BASE)
        current = write(tmp_path, "current.json", BASE)
        assert (
            main(
                [str(base), str(current), "--require", "bench.f8_metro_plan_"]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "bench.f8_metro_plan_" in out and "missing" in out

    def test_present_required_prefix_passes(self, tmp_path, capsys):
        payload = json.loads(json.dumps(BASE))
        payload["bench.f8_metro_plan_compile_sharded_seconds"] = {
            "kind": "gauge",
            "series": [{"labels": {"roads": "53000"}, "value": 12.0}],
        }
        base = write(tmp_path, "base.json", payload)
        current = write(tmp_path, "current.json", payload)
        assert (
            main(
                [str(base), str(current), "--require", "bench.f8_metro_plan_"]
            )
            == 0
        )

    def test_required_prefix_must_be_a_seconds_gauge(self, tmp_path):
        """A counter or non-timing gauge does not satisfy the prefix."""
        payload = json.loads(json.dumps(BASE))
        payload["bench.f8_metro_plan_compiles"] = {
            "kind": "counter",
            "series": [{"labels": {}, "value": 64.0}],
        }
        base = write(tmp_path, "base.json", payload)
        current = write(tmp_path, "current.json", payload)
        assert (
            main(
                [str(base), str(current), "--require", "bench.f8_metro_plan_"]
            )
            == 1
        )

    def test_multiple_requires_all_checked(self, tmp_path, capsys):
        base = write(tmp_path, "base.json", BASE)
        current = write(tmp_path, "current.json", BASE)
        code = main(
            [
                str(base),
                str(current),
                "--require",
                "bench.kernel_vs_scalar_",
                "--require",
                "bench.f8_metro_plan_",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "bench.f8_metro_plan_" in out
        assert "bench.kernel_vs_scalar_" not in out
