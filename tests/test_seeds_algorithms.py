"""Tests for the greedy family and selection baselines."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SelectionError
from repro.history.correlation import CorrelationEdge, CorrelationGraph
from repro.seeds.baselines import (
    betweenness_select,
    k_center_select,
    random_select,
    top_degree_select,
)
from repro.seeds.greedy import SelectionResult, greedy_select
from repro.seeds.lazy import lazy_greedy_select
from repro.seeds.objective import SeedSelectionObjective
from repro.seeds.partition import (
    allocate_budget,
    partition_graph,
    partition_greedy_select,
)


@pytest.fixture(scope="module")
def objective(small_dataset):
    return SeedSelectionObjective(small_dataset.graph)


class TestGreedy:
    def test_budget_respected(self, objective):
        result = greedy_select(objective, 5)
        assert len(result.seeds) == 5
        assert len(set(result.seeds)) == 5

    def test_values_increase(self, objective):
        result = greedy_select(objective, 6)
        assert all(a < b for a, b in zip(result.values, result.values[1:]))

    def test_gains_diminish(self, objective):
        result = greedy_select(objective, 6)
        assert all(a >= b - 1e-9 for a, b in zip(result.gains, result.gains[1:]))

    def test_budget_validation(self, objective):
        with pytest.raises(SelectionError):
            greedy_select(objective, 0)
        with pytest.raises(SelectionError):
            greedy_select(objective, objective.num_roads + 1)

    def test_candidate_pool_restriction(self, objective):
        pool = objective.road_ids[:10]
        result = greedy_select(objective, 3, candidates=pool)
        assert set(result.seeds) <= set(pool)

    def test_pool_too_small(self, objective):
        with pytest.raises(SelectionError):
            greedy_select(objective, 5, candidates=objective.road_ids[:3])

    def test_approximation_vs_brute_force(self):
        """Greedy >= (1 - 1/e) * optimum on exhaustively solvable instances."""
        graph = CorrelationGraph(
            list(range(6)),
            [
                CorrelationEdge(0, 1, 0.9),
                CorrelationEdge(1, 2, 0.8),
                CorrelationEdge(2, 3, 0.85),
                CorrelationEdge(3, 4, 0.7),
                CorrelationEdge(4, 5, 0.9),
                CorrelationEdge(0, 5, 0.65),
            ],
        )
        objective = SeedSelectionObjective(graph, min_fidelity=0.01)
        for budget in (1, 2, 3):
            best = max(
                objective.value(list(combo))
                for combo in itertools.combinations(graph.road_ids, budget)
            )
            result = greedy_select(objective, budget)
            assert result.final_value >= (1 - 1 / 2.718281828) * best - 1e-9

    def test_result_validation(self):
        with pytest.raises(SelectionError):
            SelectionResult("m", (1, 2), (0.5,), (0.5,), 0)


class TestLazyGreedy:
    def test_identical_to_plain_greedy(self, objective):
        for budget in (1, 4, 10):
            plain = greedy_select(objective, budget)
            lazy = lazy_greedy_select(objective, budget)
            assert lazy.seeds == plain.seeds
            assert lazy.values == pytest.approx(plain.values)

    def test_fewer_evaluations(self, objective):
        budget = 10
        plain = greedy_select(objective, budget)
        lazy = lazy_greedy_select(objective, budget)
        assert lazy.evaluations < plain.evaluations

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_equivalence_on_random_graphs(self, data):
        n = data.draw(st.integers(min_value=4, max_value=10))
        edges = []
        seen = set()
        for _ in range(data.draw(st.integers(min_value=2, max_value=16))):
            u = data.draw(st.integers(min_value=0, max_value=n - 1))
            v = data.draw(st.integers(min_value=0, max_value=n - 1))
            key = (min(u, v), max(u, v))
            if u == v or key in seen:
                continue
            seen.add(key)
            edges.append(
                CorrelationEdge(
                    u, v, data.draw(st.floats(min_value=0.55, max_value=0.95))
                )
            )
        graph = CorrelationGraph(list(range(n)), edges)
        objective = SeedSelectionObjective(graph, min_fidelity=0.01)
        budget = data.draw(st.integers(min_value=1, max_value=n))
        assert (
            lazy_greedy_select(objective, budget).seeds
            == greedy_select(objective, budget).seeds
        )


class TestPartition:
    def test_partition_covers_all_roads(self, objective):
        partitions = partition_graph(objective, 4)
        flat = [r for p in partitions for r in p]
        assert sorted(flat) == objective.road_ids

    def test_partitions_disjoint(self, objective):
        partitions = partition_graph(objective, 4)
        flat = [r for p in partitions for r in p]
        assert len(flat) == len(set(flat))

    def test_allocate_budget_sums(self, objective):
        partitions = partition_graph(objective, 4)
        for budget in (1, 5, 17):
            shares = allocate_budget(partitions, budget)
            assert sum(shares) == budget
            assert all(0 <= s <= len(p) for s, p in zip(shares, partitions))

    def test_allocate_rejects_excess(self):
        with pytest.raises(SelectionError):
            allocate_budget([[1, 2]], 3)

    def test_partition_select_budget(self, objective):
        result = partition_greedy_select(objective, 8, num_partitions=4)
        assert len(result.seeds) == 8
        assert len(set(result.seeds)) == 8

    def test_partition_quality_near_greedy(self, objective):
        budget = 10
        exact = greedy_select(objective, budget).final_value
        approx = partition_greedy_select(objective, budget, 4).final_value
        assert approx >= 0.85 * exact

    def test_partition_fewer_evaluations(self, objective):
        budget = 10
        plain = greedy_select(objective, budget)
        part = partition_greedy_select(objective, budget, 4)
        assert part.evaluations < plain.evaluations

    def test_invalid_partition_count(self, objective):
        with pytest.raises(SelectionError):
            partition_graph(objective, 0)


class TestCandidateValidation:
    """Typed rejection of bad candidate pools (was a raw KeyError /
    silent double-count before the validation sweep)."""

    def test_unknown_id_rejected(self, objective):
        bogus = max(objective.road_ids) + 1000
        pool = objective.road_ids[:5] + [bogus]
        with pytest.raises(SelectionError, match="absent from"):
            lazy_greedy_select(objective, 2, candidates=pool)
        with pytest.raises(SelectionError, match="absent from"):
            greedy_select(objective, 2, candidates=pool)

    def test_duplicate_id_rejected(self, objective):
        first = objective.road_ids[0]
        pool = [first, first] + objective.road_ids[1:5]
        with pytest.raises(SelectionError, match="duplicate"):
            lazy_greedy_select(objective, 2, candidates=pool)
        with pytest.raises(SelectionError, match="duplicate"):
            greedy_select(objective, 2, candidates=pool)

    def test_empty_pool_rejected(self, objective):
        with pytest.raises(SelectionError, match="empty"):
            lazy_greedy_select(objective, 1, candidates=[])
        with pytest.raises(SelectionError, match="empty"):
            greedy_select(objective, 1, candidates=[])

    def test_error_is_value_error(self, objective):
        """SelectionError doubles as ValueError for stdlib-only callers."""
        with pytest.raises(ValueError):
            lazy_greedy_select(objective, 1, candidates=[-99])

    def test_valid_pool_unaffected(self, objective):
        pool = objective.road_ids[:10]
        result = lazy_greedy_select(objective, 3, candidates=pool)
        assert set(result.seeds) <= set(pool)


def _reference_partition_graph(objective, num_partitions):
    """The pre-deque BFS (list.pop(0)) as a byte-exact reference."""
    graph = objective.graph
    roads = graph.road_ids
    target = -(-len(roads) // num_partitions)
    unassigned = set(roads)
    partitions = []
    while unassigned:
        start = min(unassigned)
        chunk = []
        queue = [start]
        unassigned.discard(start)
        while queue and len(chunk) < target:
            road = queue.pop(0)
            chunk.append(road)
            for neighbour in graph.neighbour_ids(road):
                if neighbour in unassigned:
                    unassigned.discard(neighbour)
                    queue.append(neighbour)
        unassigned.update(queue)
        partitions.append(sorted(chunk))
    return partitions


class TestPartitionGraphDequeRegression:
    """The deque BFS must partition byte-identically to the quadratic
    list.pop(0) original on the existing fixtures."""

    def test_identical_partitions_small_dataset(self, objective):
        for num_partitions in (1, 2, 4, 7, 16):
            assert partition_graph(objective, num_partitions) == (
                _reference_partition_graph(objective, num_partitions)
            )

    def test_identical_partitions_tiny_dataset(self, tiny_dataset):
        objective = SeedSelectionObjective(tiny_dataset.graph)
        for num_partitions in (1, 2, 3, 5):
            assert partition_graph(objective, num_partitions) == (
                _reference_partition_graph(objective, num_partitions)
            )


def _objective_for(graph):
    return SeedSelectionObjective(graph, min_fidelity=0.01)


def _star_graph(n=9):
    """Hub 0 with n-1 leaves — one BFS grab takes nearly everything."""
    edges = [CorrelationEdge(0, leaf, 0.9) for leaf in range(1, n)]
    return CorrelationGraph(list(range(n)), edges)


def _disconnected_graph(n=8):
    """No edges at all: every road is its own component."""
    return CorrelationGraph(list(range(n)), [])


def _chain_pairs_graph(pairs=4):
    """Disjoint 2-road components — singleton/tiny chunk territory."""
    edges = [
        CorrelationEdge(2 * i, 2 * i + 1, 0.8) for i in range(pairs)
    ]
    return CorrelationGraph(list(range(2 * pairs)), edges)


class TestPartitionAdversarial:
    """Property coverage for allocate_budget + partition_greedy_select
    on adversarial graph shapes (satellite task)."""

    @pytest.mark.parametrize(
        "graph_factory", [_star_graph, _disconnected_graph, _chain_pairs_graph]
    )
    @pytest.mark.parametrize("num_partitions", [1, 2, 3, 8])
    def test_partitions_disjoint_cover(self, graph_factory, num_partitions):
        objective = _objective_for(graph_factory())
        partitions = partition_graph(objective, num_partitions)
        flat = [road for chunk in partitions for road in chunk]
        assert sorted(flat) == objective.road_ids
        assert len(flat) == len(set(flat))
        assert all(chunk for chunk in partitions)

    @pytest.mark.parametrize(
        "graph_factory", [_star_graph, _disconnected_graph, _chain_pairs_graph]
    )
    @pytest.mark.parametrize("num_partitions", [1, 3, 8])
    def test_shares_sum_and_cap(self, graph_factory, num_partitions):
        objective = _objective_for(graph_factory())
        partitions = partition_graph(objective, num_partitions)
        total = sum(len(chunk) for chunk in partitions)
        for budget in range(1, total + 1):
            shares = allocate_budget(partitions, budget)
            assert sum(shares) == budget
            assert all(
                0 <= share <= len(chunk)
                for share, chunk in zip(shares, partitions)
            )

    @pytest.mark.parametrize(
        "graph_factory", [_star_graph, _disconnected_graph, _chain_pairs_graph]
    )
    def test_budget_equals_total_roads(self, graph_factory):
        objective = _objective_for(graph_factory())
        budget = objective.num_roads
        result = partition_greedy_select(objective, budget, num_partitions=3)
        # Every road selected exactly once, in some order.
        assert sorted(result.seeds) == objective.road_ids

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_allocation_properties_random(self, data):
        sizes = data.draw(
            st.lists(st.integers(min_value=1, max_value=9), min_size=1,
                     max_size=6)
        )
        partitions = []
        next_road = 0
        for size in sizes:
            partitions.append(list(range(next_road, next_road + size)))
            next_road += size
        total = sum(sizes)
        budget = data.draw(st.integers(min_value=1, max_value=total))
        shares = allocate_budget(partitions, budget)
        assert sum(shares) == budget
        assert all(
            0 <= share <= len(chunk)
            for share, chunk in zip(shares, partitions)
        )


class TestSelectionBaselines:
    def test_random_deterministic_and_valid(self, objective):
        a = random_select(objective, 6, seed=3)
        b = random_select(objective, 6, seed=3)
        assert a.seeds == b.seeds
        assert len(set(a.seeds)) == 6

    def test_random_differs_by_seed(self, objective):
        assert (
            random_select(objective, 6, seed=1).seeds
            != random_select(objective, 6, seed=2).seeds
        )

    def test_top_degree_ordering(self, objective, small_dataset):
        result = top_degree_select(objective, 5)
        degrees = [small_dataset.graph.degree(r) for r in result.seeds]
        max_degree = max(
            small_dataset.graph.degree(r) for r in objective.road_ids
        )
        assert degrees[0] == max_degree

    def test_betweenness_runs(self, objective):
        result = betweenness_select(objective, 4)
        assert len(result.seeds) == 4

    def test_k_center_spreads_out(self, objective, small_dataset):
        result = k_center_select(objective, 4, small_dataset.network)
        mids = [small_dataset.network.segment_midpoint(r) for r in result.seeds]
        min_pairwise = min(
            a.distance_to(b)
            for i, a in enumerate(mids)
            for b in mids[i + 1 :]
        )
        assert min_pairwise > 500  # centres are far apart on a 2km grid

    def test_greedy_beats_every_baseline(self, objective, small_dataset):
        """The objective value ordering F5 reports."""
        budget = 8
        greedy_value = greedy_select(objective, budget).final_value
        for result in (
            random_select(objective, budget, seed=0),
            top_degree_select(objective, budget),
            k_center_select(objective, budget, small_dataset.network),
        ):
            assert greedy_value >= result.final_value - 1e-9

    def test_budget_validation(self, objective):
        with pytest.raises(SelectionError):
            random_select(objective, 0)
        with pytest.raises(SelectionError):
            top_degree_select(objective, objective.num_roads + 1)
