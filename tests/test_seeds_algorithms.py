"""Tests for the greedy family and selection baselines."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SelectionError
from repro.history.correlation import CorrelationEdge, CorrelationGraph
from repro.seeds.baselines import (
    betweenness_select,
    k_center_select,
    random_select,
    top_degree_select,
)
from repro.seeds.greedy import SelectionResult, greedy_select
from repro.seeds.lazy import lazy_greedy_select
from repro.seeds.objective import SeedSelectionObjective
from repro.seeds.partition import (
    allocate_budget,
    partition_graph,
    partition_greedy_select,
)


@pytest.fixture(scope="module")
def objective(small_dataset):
    return SeedSelectionObjective(small_dataset.graph)


class TestGreedy:
    def test_budget_respected(self, objective):
        result = greedy_select(objective, 5)
        assert len(result.seeds) == 5
        assert len(set(result.seeds)) == 5

    def test_values_increase(self, objective):
        result = greedy_select(objective, 6)
        assert all(a < b for a, b in zip(result.values, result.values[1:]))

    def test_gains_diminish(self, objective):
        result = greedy_select(objective, 6)
        assert all(a >= b - 1e-9 for a, b in zip(result.gains, result.gains[1:]))

    def test_budget_validation(self, objective):
        with pytest.raises(SelectionError):
            greedy_select(objective, 0)
        with pytest.raises(SelectionError):
            greedy_select(objective, objective.num_roads + 1)

    def test_candidate_pool_restriction(self, objective):
        pool = objective.road_ids[:10]
        result = greedy_select(objective, 3, candidates=pool)
        assert set(result.seeds) <= set(pool)

    def test_pool_too_small(self, objective):
        with pytest.raises(SelectionError):
            greedy_select(objective, 5, candidates=objective.road_ids[:3])

    def test_approximation_vs_brute_force(self):
        """Greedy >= (1 - 1/e) * optimum on exhaustively solvable instances."""
        graph = CorrelationGraph(
            list(range(6)),
            [
                CorrelationEdge(0, 1, 0.9),
                CorrelationEdge(1, 2, 0.8),
                CorrelationEdge(2, 3, 0.85),
                CorrelationEdge(3, 4, 0.7),
                CorrelationEdge(4, 5, 0.9),
                CorrelationEdge(0, 5, 0.65),
            ],
        )
        objective = SeedSelectionObjective(graph, min_fidelity=0.01)
        for budget in (1, 2, 3):
            best = max(
                objective.value(list(combo))
                for combo in itertools.combinations(graph.road_ids, budget)
            )
            result = greedy_select(objective, budget)
            assert result.final_value >= (1 - 1 / 2.718281828) * best - 1e-9

    def test_result_validation(self):
        with pytest.raises(SelectionError):
            SelectionResult("m", (1, 2), (0.5,), (0.5,), 0)


class TestLazyGreedy:
    def test_identical_to_plain_greedy(self, objective):
        for budget in (1, 4, 10):
            plain = greedy_select(objective, budget)
            lazy = lazy_greedy_select(objective, budget)
            assert lazy.seeds == plain.seeds
            assert lazy.values == pytest.approx(plain.values)

    def test_fewer_evaluations(self, objective):
        budget = 10
        plain = greedy_select(objective, budget)
        lazy = lazy_greedy_select(objective, budget)
        assert lazy.evaluations < plain.evaluations

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_equivalence_on_random_graphs(self, data):
        n = data.draw(st.integers(min_value=4, max_value=10))
        edges = []
        seen = set()
        for _ in range(data.draw(st.integers(min_value=2, max_value=16))):
            u = data.draw(st.integers(min_value=0, max_value=n - 1))
            v = data.draw(st.integers(min_value=0, max_value=n - 1))
            key = (min(u, v), max(u, v))
            if u == v or key in seen:
                continue
            seen.add(key)
            edges.append(
                CorrelationEdge(
                    u, v, data.draw(st.floats(min_value=0.55, max_value=0.95))
                )
            )
        graph = CorrelationGraph(list(range(n)), edges)
        objective = SeedSelectionObjective(graph, min_fidelity=0.01)
        budget = data.draw(st.integers(min_value=1, max_value=n))
        assert (
            lazy_greedy_select(objective, budget).seeds
            == greedy_select(objective, budget).seeds
        )


class TestPartition:
    def test_partition_covers_all_roads(self, objective):
        partitions = partition_graph(objective, 4)
        flat = [r for p in partitions for r in p]
        assert sorted(flat) == objective.road_ids

    def test_partitions_disjoint(self, objective):
        partitions = partition_graph(objective, 4)
        flat = [r for p in partitions for r in p]
        assert len(flat) == len(set(flat))

    def test_allocate_budget_sums(self, objective):
        partitions = partition_graph(objective, 4)
        for budget in (1, 5, 17):
            shares = allocate_budget(partitions, budget)
            assert sum(shares) == budget
            assert all(0 <= s <= len(p) for s, p in zip(shares, partitions))

    def test_allocate_rejects_excess(self):
        with pytest.raises(SelectionError):
            allocate_budget([[1, 2]], 3)

    def test_partition_select_budget(self, objective):
        result = partition_greedy_select(objective, 8, num_partitions=4)
        assert len(result.seeds) == 8
        assert len(set(result.seeds)) == 8

    def test_partition_quality_near_greedy(self, objective):
        budget = 10
        exact = greedy_select(objective, budget).final_value
        approx = partition_greedy_select(objective, budget, 4).final_value
        assert approx >= 0.85 * exact

    def test_partition_fewer_evaluations(self, objective):
        budget = 10
        plain = greedy_select(objective, budget)
        part = partition_greedy_select(objective, budget, 4)
        assert part.evaluations < plain.evaluations

    def test_invalid_partition_count(self, objective):
        with pytest.raises(SelectionError):
            partition_graph(objective, 0)


class TestSelectionBaselines:
    def test_random_deterministic_and_valid(self, objective):
        a = random_select(objective, 6, seed=3)
        b = random_select(objective, 6, seed=3)
        assert a.seeds == b.seeds
        assert len(set(a.seeds)) == 6

    def test_random_differs_by_seed(self, objective):
        assert (
            random_select(objective, 6, seed=1).seeds
            != random_select(objective, 6, seed=2).seeds
        )

    def test_top_degree_ordering(self, objective, small_dataset):
        result = top_degree_select(objective, 5)
        degrees = [small_dataset.graph.degree(r) for r in result.seeds]
        max_degree = max(
            small_dataset.graph.degree(r) for r in objective.road_ids
        )
        assert degrees[0] == max_degree

    def test_betweenness_runs(self, objective):
        result = betweenness_select(objective, 4)
        assert len(result.seeds) == 4

    def test_k_center_spreads_out(self, objective, small_dataset):
        result = k_center_select(objective, 4, small_dataset.network)
        mids = [small_dataset.network.segment_midpoint(r) for r in result.seeds]
        min_pairwise = min(
            a.distance_to(b)
            for i, a in enumerate(mids)
            for b in mids[i + 1 :]
        )
        assert min_pairwise > 500  # centres are far apart on a 2km grid

    def test_greedy_beats_every_baseline(self, objective, small_dataset):
        """The objective value ordering F5 reports."""
        budget = 8
        greedy_value = greedy_select(objective, budget).final_value
        for result in (
            random_select(objective, budget, seed=0),
            top_degree_select(objective, budget),
            k_center_select(objective, budget, small_dataset.network),
        ):
            assert greedy_value >= result.final_value - 1e-9

    def test_budget_validation(self, objective):
        with pytest.raises(SelectionError):
            random_select(objective, 0)
        with pytest.raises(SelectionError):
            top_degree_select(objective, objective.num_roads + 1)
