"""Unit tests for network (de)serialisation."""

import json

import pytest

from repro.core.errors import DataError
from repro.roadnet.generators import grid_city, ring_radial_city
from repro.roadnet.io import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "network", [grid_city(4, 4), ring_radial_city(rings=2, spokes=6)],
        ids=["grid", "ring"],
    )
    def test_dict_round_trip(self, network):
        restored = network_from_dict(network_to_dict(network))
        assert restored.name == network.name
        assert restored.road_ids() == network.road_ids()
        assert restored.node_ids() == network.node_ids()
        for road in network.road_ids():
            a, b = network.segment(road), restored.segment(road)
            assert a == b

    def test_file_round_trip(self, tmp_path):
        network = grid_city(3, 3)
        path = tmp_path / "net.json"
        save_network(network, path)
        restored = load_network(path)
        assert restored.road_ids() == network.road_ids()

    def test_file_is_plain_json(self, tmp_path):
        path = tmp_path / "net.json"
        save_network(grid_city(3, 3), path)
        data = json.loads(path.read_text())
        assert data["format_version"] == 1
        assert {"intersections", "segments", "name"} <= set(data)


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError, match="no such network file"):
            load_network(tmp_path / "absent.json")

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(DataError, match="invalid JSON"):
            load_network(path)

    def test_wrong_version(self):
        doc = network_to_dict(grid_city(3, 3))
        doc["format_version"] = 99
        with pytest.raises(DataError, match="unsupported network format"):
            network_from_dict(doc)

    def test_missing_field(self):
        doc = network_to_dict(grid_city(3, 3))
        del doc["segments"][0]["start"]
        with pytest.raises(DataError, match="missing field"):
            network_from_dict(doc)


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        from repro.roadnet.io import load_network_csv, save_network_csv

        network = grid_city(4, 4)
        nodes = tmp_path / "nodes.csv"
        edges = tmp_path / "edges.csv"
        save_network_csv(network, nodes, edges)
        restored = load_network_csv(nodes, edges, name=network.name)
        assert restored.road_ids() == network.road_ids()
        assert restored.node_ids() == network.node_ids()
        for road in network.road_ids():
            assert restored.segment(road) == network.segment(road)

    def test_missing_file(self, tmp_path):
        from repro.roadnet.io import load_network_csv

        with pytest.raises(DataError, match="no such CSV"):
            load_network_csv(tmp_path / "a.csv", tmp_path / "b.csv")

    def test_bad_header(self, tmp_path):
        from repro.roadnet.io import load_network_csv, save_network_csv

        save_network_csv(grid_city(3, 3), tmp_path / "n.csv", tmp_path / "e.csv")
        (tmp_path / "n.csv").write_text("a,b,c\n1,2,3\n")
        with pytest.raises(DataError, match="header"):
            load_network_csv(tmp_path / "n.csv", tmp_path / "e.csv")

    def test_bad_row_reports_line(self, tmp_path):
        from repro.roadnet.io import load_network_csv, save_network_csv

        save_network_csv(grid_city(3, 3), tmp_path / "n.csv", tmp_path / "e.csv")
        content = (tmp_path / "n.csv").read_text().splitlines()
        content[1] = "zero,not-a-number,0"
        (tmp_path / "n.csv").write_text("\n".join(content) + "\n")
        with pytest.raises(DataError, match=":2:"):
            load_network_csv(tmp_path / "n.csv", tmp_path / "e.csv")
