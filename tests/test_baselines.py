"""Unit tests for the estimation baselines."""

import numpy as np
import pytest

from repro.baselines.base import SpeedBaseline, check_seed_speeds
from repro.baselines.historical import HistoricalAverageBaseline
from repro.baselines.knn import IdwDeviationBaseline, KnnSpeedBaseline
from repro.baselines.label_prop import LabelPropagationBaseline
from repro.baselines.regression import GlobalRatioBaseline
from repro.core.errors import InferenceError


@pytest.fixture(scope="module")
def world(small_dataset):
    interval = small_dataset.test_day_intervals()[34]
    truth = small_dataset.test.speeds_at(interval)
    seeds = small_dataset.network.road_ids()[::10][:12]
    return small_dataset, interval, truth, {r: truth[r] for r in seeds}


def all_baselines(dataset):
    return [
        HistoricalAverageBaseline(dataset.store),
        KnnSpeedBaseline(dataset.network),
        IdwDeviationBaseline(dataset.network, dataset.store),
        LabelPropagationBaseline(dataset.graph, dataset.store),
        GlobalRatioBaseline(dataset.store),
    ]


class TestInterfaceContract:
    def test_all_conform_to_protocol(self, world):
        dataset, *_ = world
        for baseline in all_baselines(dataset):
            assert isinstance(baseline, SpeedBaseline)
            assert baseline.name

    def test_all_cover_every_road(self, world):
        dataset, interval, _, seed_speeds = world
        roads = set(dataset.network.road_ids())
        for baseline in all_baselines(dataset):
            estimates = baseline.estimate_interval(interval, seed_speeds)
            assert roads <= set(estimates), baseline.name

    def test_all_pass_seeds_through(self, world):
        dataset, interval, _, seed_speeds = world
        for baseline in all_baselines(dataset):
            estimates = baseline.estimate_interval(interval, seed_speeds)
            for road, speed in seed_speeds.items():
                assert estimates[road] == speed, baseline.name

    def test_all_reject_empty_seeds(self, world):
        dataset, interval, *_ = world
        for baseline in all_baselines(dataset):
            with pytest.raises(InferenceError):
                baseline.estimate_interval(interval, {})

    def test_all_positive_estimates(self, world):
        dataset, interval, _, seed_speeds = world
        for baseline in all_baselines(dataset):
            estimates = baseline.estimate_interval(interval, seed_speeds)
            assert all(v > 0 for v in estimates.values()), baseline.name

    def test_check_seed_speeds(self):
        with pytest.raises(InferenceError):
            check_seed_speeds({})
        with pytest.raises(InferenceError):
            check_seed_speeds({1: -5.0})
        check_seed_speeds({1: 30.0})


class TestHistoricalAverage:
    def test_equals_store_mean(self, world):
        dataset, interval, _, seed_speeds = world
        estimates = HistoricalAverageBaseline(dataset.store).estimate_interval(
            interval, seed_speeds
        )
        road = next(r for r in dataset.network.road_ids() if r not in seed_speeds)
        assert estimates[road] == dataset.store.historical_speed(road, interval)

    def test_ignores_seed_values(self, world):
        dataset, interval, _, seed_speeds = world
        ha = HistoricalAverageBaseline(dataset.store)
        a = ha.estimate_interval(interval, seed_speeds)
        b = ha.estimate_interval(
            interval, {r: 99.0 for r in seed_speeds}
        )
        road = next(r for r in dataset.network.road_ids() if r not in seed_speeds)
        assert a[road] == b[road]


class TestSpatial:
    def test_knn_single_seed_propagates_everywhere(self, world):
        dataset, interval, *_ = world
        seed = dataset.network.road_ids()[0]
        knn = KnnSpeedBaseline(dataset.network, k=3)
        estimates = knn.estimate_interval(interval, {seed: 42.0})
        road = dataset.network.road_ids()[-1]
        assert estimates[road] == pytest.approx(42.0)

    def test_idw_single_seed_scales_by_history(self, world):
        dataset, interval, *_ = world
        store = dataset.store
        seed = dataset.network.road_ids()[0]
        ratio = 0.8
        speed = ratio * store.historical_speed(seed, interval)
        idw = IdwDeviationBaseline(dataset.network, store, k=3)
        estimates = idw.estimate_interval(interval, {seed: speed})
        road = dataset.network.road_ids()[-1]
        expected = ratio * store.historical_speed(road, interval)
        assert estimates[road] == pytest.approx(expected)

    def test_k_validation(self, world):
        dataset, *_ = world
        with pytest.raises(InferenceError):
            KnnSpeedBaseline(dataset.network, k=0)


class TestLabelPropagation:
    def test_smooths_toward_seeds(self, world):
        dataset, interval, *_ = world
        store = dataset.store
        lp = LabelPropagationBaseline(dataset.graph, dataset.store)
        # All seeds at 30% below historical: everything should drop.
        seeds = dataset.network.road_ids()[::8][:15]
        seed_speeds = {
            r: 0.7 * store.historical_speed(r, interval) for r in seeds
        }
        estimates = lp.estimate_interval(interval, seed_speeds)
        ratios = [
            estimates[r] / store.historical_speed(r, interval)
            for r in dataset.network.road_ids()
            if r not in seed_speeds
        ]
        assert np.mean(ratios) < 0.95

    def test_unknown_seed_rejected(self, world):
        dataset, interval, *_ = world
        lp = LabelPropagationBaseline(dataset.graph, dataset.store)
        with pytest.raises(InferenceError):
            lp.estimate_interval(interval, {99999: 30.0})

    def test_parameter_validation(self, world):
        dataset, *_ = world
        with pytest.raises(InferenceError):
            LabelPropagationBaseline(dataset.graph, dataset.store, max_iterations=0)
        with pytest.raises(InferenceError):
            LabelPropagationBaseline(dataset.graph, dataset.store, self_weight=1.0)


class TestGlobalRatio:
    def test_applies_mean_ratio(self, world):
        dataset, interval, *_ = world
        store = dataset.store
        seeds = dataset.network.road_ids()[:4]
        seed_speeds = {
            r: 1.1 * store.historical_speed(r, interval) for r in seeds
        }
        estimates = GlobalRatioBaseline(store).estimate_interval(
            interval, seed_speeds
        )
        road = dataset.network.road_ids()[-1]
        expected = 1.1 * store.historical_speed(road, interval)
        assert estimates[road] == pytest.approx(expected)
