"""Unit + property tests for the seed-selection objective.

The monotonicity and submodularity properties are what licence the
greedy approximation guarantee, so they are property-tested on random
graphs rather than assumed.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SelectionError
from repro.history.correlation import CorrelationEdge, CorrelationGraph
from repro.seeds.objective import SeedSelectionObjective


def triangle_graph():
    return CorrelationGraph(
        [0, 1, 2, 3],
        [
            CorrelationEdge(0, 1, 0.9),
            CorrelationEdge(1, 2, 0.9),
            CorrelationEdge(0, 2, 0.8),
        ],
    )


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=3, max_value=8))
    edges = []
    seen = set()
    for _ in range(draw(st.integers(min_value=1, max_value=12))):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        key = (min(u, v), max(u, v))
        if u == v or key in seen:
            continue
        seen.add(key)
        edges.append(
            CorrelationEdge(u, v, draw(st.floats(min_value=0.55, max_value=0.95)))
        )
    return CorrelationGraph(list(range(n)), edges)


class TestValue:
    def test_single_seed_covers_itself_fully(self):
        objective = SeedSelectionObjective(triangle_graph())
        # Seed 3 is isolated: covers exactly itself.
        assert objective.value([3]) == pytest.approx(1.0)

    def test_seed_covers_neighbours_by_fidelity(self):
        objective = SeedSelectionObjective(
            triangle_graph(), min_fidelity=0.01, transform="fidelity"
        )
        # Seed 0: itself (1.0) + road1 (q=0.8) + road2 best path:
        # direct q=0.6 vs 0->1->2 q=0.8*0.8=0.64 -> 0.64.
        assert objective.value([0]) == pytest.approx(1.0 + 0.8 + 0.64)

    def test_variance_transform_is_default(self):
        import math

        objective = SeedSelectionObjective(triangle_graph(), min_fidelity=0.01)
        assert objective.transform == "variance"
        rho = math.sin(math.pi * 0.8 / 2.0)
        influence = objective.influence_map(0)
        assert influence[1] == pytest.approx(rho * rho)
        assert influence[0] == pytest.approx(1.0)  # self-influence stays 1

    def test_unknown_transform_rejected(self):
        with pytest.raises(SelectionError):
            SeedSelectionObjective(triangle_graph(), transform="magic")

    def test_clone_with_weights_shares_cache(self):
        objective = SeedSelectionObjective(triangle_graph())
        objective.influence_map(0)
        clone = objective.clone_with_weights({0: 1.0, 1: 1.0, 2: 0.0, 3: 0.0})
        assert clone.influence_map(0) is objective.influence_map(0)
        assert clone.max_value == 2.0

    def test_duplicates_ignored(self):
        objective = SeedSelectionObjective(triangle_graph())
        assert objective.value([0, 0]) == objective.value([0])

    def test_max_value_is_road_count_for_uniform_weights(self):
        objective = SeedSelectionObjective(triangle_graph())
        assert objective.max_value == 4.0

    def test_all_seeds_reach_ceiling(self):
        objective = SeedSelectionObjective(triangle_graph())
        assert objective.value([0, 1, 2, 3]) == pytest.approx(4.0)
        assert objective.coverage_fraction([0, 1, 2, 3]) == pytest.approx(1.0)

    def test_weighted_roads(self):
        objective = SeedSelectionObjective(
            triangle_graph(), road_weights={0: 2.0, 1: 1.0, 2: 0.0, 3: 0.0}
        )
        assert objective.max_value == 3.0
        assert objective.value([3]) == pytest.approx(0.0)  # covers a 0-weight road

    def test_weight_validation(self):
        with pytest.raises(SelectionError):
            SeedSelectionObjective(triangle_graph(), road_weights={99: 1.0})
        with pytest.raises(SelectionError):
            SeedSelectionObjective(triangle_graph(), road_weights={0: -1.0})


class TestCoverageState:
    def test_gain_then_add_consistent(self):
        objective = SeedSelectionObjective(triangle_graph())
        state = objective.new_state()
        gain = state.gain(0)
        realised = state.add(0)
        assert realised == pytest.approx(gain)
        assert state.value == pytest.approx(gain)

    def test_gain_of_existing_seed_is_zero(self):
        objective = SeedSelectionObjective(triangle_graph())
        state = objective.new_state()
        state.add(0)
        assert state.gain(0) == 0.0

    def test_unknown_candidate_raises(self):
        objective = SeedSelectionObjective(triangle_graph())
        with pytest.raises(SelectionError):
            objective.new_state().gain(42)

    def test_state_value_matches_from_scratch(self):
        objective = SeedSelectionObjective(triangle_graph())
        state = objective.new_state()
        for seed in (1, 3):
            state.add(seed)
        assert state.value == pytest.approx(objective.value([1, 3]))

    def test_duplicate_add_is_a_noop(self):
        """Regression: re-adding a seed used to double-discount residuals.

        ``add(s)`` multiplied the residual by ``1 - q`` again on every
        call, silently corrupting later gain computations. A repeat add
        must leave residual, seed list and value untouched and realise
        zero gain.
        """
        objective = SeedSelectionObjective(triangle_graph())
        state = objective.new_state()
        state.add(0)
        residual_before = state.residual.copy()
        seeds_before = list(state.seeds)
        value_before = state.value

        realised = state.add(0)

        assert realised == 0.0
        assert list(state.seeds) == seeds_before
        assert state.value == value_before
        assert (state.residual == residual_before).all()

    @settings(max_examples=30, deadline=None)
    @given(graph=random_graphs(), data=st.data())
    def test_duplicate_add_noop_property(self, graph, data):
        """add(s); add(s) == add(s), for any graph, seed and prefix."""
        objective = SeedSelectionObjective(graph, min_fidelity=0.01)
        state = objective.new_state()
        prefix = data.draw(
            st.sets(st.sampled_from(graph.road_ids), max_size=len(graph.road_ids))
        )
        for seed in sorted(prefix):
            state.add(seed)
        seed = data.draw(st.sampled_from(graph.road_ids))
        state.add(seed)
        seeds_snapshot = list(state.seeds)
        value_snapshot = state.value
        residual_snapshot = state.residual.copy()
        assert state.add(seed) == 0.0
        assert list(state.seeds) == seeds_snapshot
        assert state.value == value_snapshot
        assert (state.residual == residual_snapshot).all()

    def test_gain_uses_set_membership(self):
        """Every selected seed gains zero, regardless of insertion order."""
        graph = CorrelationGraph(
            list(range(8)),
            [CorrelationEdge(i, i + 1, 0.9) for i in range(7)],
        )
        objective = SeedSelectionObjective(graph, min_fidelity=0.01)
        state = objective.new_state()
        for seed in (5, 1, 7, 3):
            state.add(seed)
        for seed in (1, 3, 5, 7):
            assert state.gain(seed) == 0.0
        for seed in (0, 2, 4, 6):
            assert state.gain(seed) > 0.0

    def test_kernel_and_scalar_states_agree(self):
        from repro.history.fidelity import FidelityCacheService

        graph = triangle_graph()
        kernel = SeedSelectionObjective(
            graph, fidelity_service=FidelityCacheService(), use_kernel=True
        )
        scalar = SeedSelectionObjective(
            graph,
            fidelity_service=FidelityCacheService(use_kernel=False),
            use_kernel=False,
        )
        ks, ss = kernel.new_state(), scalar.new_state()
        for seed in (0, 3):
            assert ks.gain(seed) == pytest.approx(ss.gain(seed), abs=1e-12)
            assert ks.add(seed) == pytest.approx(ss.add(seed), abs=1e-12)
        assert ks.value == pytest.approx(ss.value, abs=1e-12)


@settings(max_examples=40, deadline=None)
@given(graph=random_graphs(), data=st.data())
def test_monotone(graph, data):
    """Q(S) <= Q(S + {x}) for any S and x."""
    objective = SeedSelectionObjective(graph, min_fidelity=0.01)
    roads = graph.road_ids
    subset = data.draw(st.sets(st.sampled_from(roads), max_size=len(roads) - 1))
    extra = data.draw(st.sampled_from([r for r in roads if r not in subset]))
    assert objective.value(list(subset) + [extra]) >= objective.value(
        list(subset)
    ) - 1e-9


@settings(max_examples=40, deadline=None)
@given(graph=random_graphs(), data=st.data())
def test_submodular(graph, data):
    """gain(x | S) >= gain(x | S + {y}) — diminishing returns."""
    objective = SeedSelectionObjective(graph, min_fidelity=0.01)
    roads = graph.road_ids
    if len(roads) < 3:
        return
    subset = data.draw(
        st.sets(st.sampled_from(roads), max_size=len(roads) - 2)
    )
    rest = [r for r in roads if r not in subset]
    x = data.draw(st.sampled_from(rest))
    y = data.draw(st.sampled_from([r for r in rest if r != x]))

    small = objective.new_state()
    for s in sorted(subset):
        small.add(s)
    gain_small = small.gain(x)
    small.add(y)
    gain_large = small.gain(x)
    assert gain_small >= gain_large - 1e-9


@settings(max_examples=20, deadline=None)
@given(graph=random_graphs())
def test_value_never_exceeds_ceiling(graph):
    objective = SeedSelectionObjective(graph, min_fidelity=0.01)
    all_roads = graph.road_ids
    for size in range(1, len(all_roads) + 1):
        value = objective.value(all_roads[:size])
        assert value <= objective.max_value + 1e-9


def test_brute_force_optimum_sanity():
    """Greedy state values agree with explicit 1-Π(1-q) computation."""
    graph = triangle_graph()
    objective = SeedSelectionObjective(graph, min_fidelity=0.01)
    for combo in itertools.combinations(graph.road_ids, 2):
        maps = [objective.influence_map(s) for s in combo]
        expected = 0.0
        for road in graph.road_ids:
            residual = 1.0
            for influence in maps:
                residual *= 1.0 - influence.get(road, 0.0)
            expected += 1.0 - residual
        assert objective.value(list(combo)) == pytest.approx(expected)
