"""Unit tests for the crowdsourcing substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import CrowdsourcingError
from repro.crowd.aggregation import (
    mad_filtered_mean,
    mean_aggregate,
    median_aggregate,
)
from repro.crowd.platform import CrowdsourcingPlatform, SpeedQueryTask
from repro.crowd.workers import Worker, WorkerPool, WorkerPoolParams


class TestWorker:
    def test_honest_worker_near_truth(self):
        worker = Worker(0, noise_std_frac=0.05, bias_frac=0.0, reliability=1.0)
        rng = np.random.default_rng(1)
        answers = [worker.answer(50.0, rng) for _ in range(300)]
        assert np.mean(answers) == pytest.approx(50.0, rel=0.03)

    def test_biased_worker_shifts(self):
        worker = Worker(0, noise_std_frac=0.01, bias_frac=0.2, reliability=1.0)
        rng = np.random.default_rng(1)
        answers = [worker.answer(50.0, rng) for _ in range(200)]
        assert np.mean(answers) == pytest.approx(60.0, rel=0.05)

    def test_unreliable_worker_sometimes_silent(self):
        worker = Worker(0, noise_std_frac=0.05, bias_frac=0.0, reliability=0.5)
        rng = np.random.default_rng(1)
        answers = [worker.answer(50.0, rng) for _ in range(200)]
        silent = sum(1 for a in answers if a is None)
        assert 50 < silent < 150

    def test_spammer_uninformative(self):
        worker = Worker(0, 0.0, 0.0, reliability=1.0, is_spammer=True)
        rng = np.random.default_rng(1)
        answers = [worker.answer(50.0, rng) for _ in range(300)]
        assert np.std(answers) > 20

    def test_answers_never_negative(self):
        worker = Worker(0, noise_std_frac=2.0, bias_frac=-1.5, reliability=1.0)
        rng = np.random.default_rng(1)
        assert all(worker.answer(10.0, rng) >= 0.5 for _ in range(100))

    def test_validation(self):
        with pytest.raises(CrowdsourcingError):
            Worker(0, noise_std_frac=-0.1, bias_frac=0, reliability=1.0)
        with pytest.raises(CrowdsourcingError):
            Worker(0, noise_std_frac=0.1, bias_frac=0, reliability=1.5)


class TestWorkerPool:
    def test_sample_deterministic(self):
        a = WorkerPool.sample(20, seed=5)
        b = WorkerPool.sample(20, seed=5)
        assert [w.noise_std_frac for w in a.workers()] == [
            w.noise_std_frac for w in b.workers()
        ]

    def test_spammer_fraction_respected(self):
        pool = WorkerPool.sample(
            500, WorkerPoolParams(spammer_fraction=0.1), seed=1
        )
        spammers = sum(1 for w in pool.workers() if w.is_spammer)
        assert 20 < spammers < 90

    def test_draw_distinct(self):
        pool = WorkerPool.sample(10, seed=1)
        drawn = pool.draw(5, np.random.default_rng(0))
        assert len({w.worker_id for w in drawn}) == 5

    def test_draw_too_many(self):
        pool = WorkerPool.sample(3, seed=1)
        with pytest.raises(CrowdsourcingError):
            pool.draw(4, np.random.default_rng(0))

    def test_validation(self):
        with pytest.raises(CrowdsourcingError):
            WorkerPool([])
        with pytest.raises(CrowdsourcingError):
            WorkerPool.sample(0)
        with pytest.raises(CrowdsourcingError):
            WorkerPoolParams(spammer_fraction=0.6)


class TestAggregation:
    def test_mean(self):
        assert mean_aggregate([10, 20, 30]) == 20

    def test_median_robust_to_one_outlier(self):
        assert median_aggregate([30, 31, 29, 500]) == pytest.approx(30.5)

    def test_mad_filters_spam(self):
        answers = [30.0, 31.0, 29.0, 30.5, 95.0]
        assert mad_filtered_mean(answers) == pytest.approx(30.125)

    def test_mad_identical_answers(self):
        assert mad_filtered_mean([42.0] * 5) == 42.0

    def test_empty_rejected(self):
        for agg in (mean_aggregate, median_aggregate, mad_filtered_mean):
            with pytest.raises(CrowdsourcingError):
                agg([])

    def test_negative_rejected(self):
        with pytest.raises(CrowdsourcingError):
            mean_aggregate([-1.0])

    def test_bad_threshold(self):
        with pytest.raises(CrowdsourcingError):
            mad_filtered_mean([1.0, 2.0], threshold=0)

    @settings(max_examples=50, deadline=None)
    @given(
        honest=st.lists(
            st.floats(min_value=25, max_value=35), min_size=5, max_size=15
        ),
        spam=st.lists(
            st.floats(min_value=80, max_value=100), min_size=0, max_size=2
        ),
    )
    def test_mad_mean_bounded_by_honest_range(self, honest, spam):
        """Property: minority spam cannot drag the estimate outside the
        honest answers' range."""
        result = mad_filtered_mean(honest + spam)
        assert min(honest) - 1e-9 <= result <= max(honest) + 15


class TestPlatform:
    @pytest.fixture
    def platform(self):
        return CrowdsourcingPlatform(
            WorkerPool.sample(50, seed=2), workers_per_task=7
        )

    def test_collect_accuracy(self, platform):
        tasks = [SpeedQueryTask(r, 0, 40.0) for r in range(20)]
        answers = platform.collect(tasks, seed=1)
        errors = [abs(a.speed_kmh - 40.0) for a in answers.values()]
        assert np.mean(errors) < 4.0

    def test_collect_accounting(self, platform):
        tasks = [SpeedQueryTask(r, 0, 40.0) for r in range(5)]
        answers = platform.collect(tasks, seed=1)
        assert platform.total_answers == sum(
            a.num_workers for a in answers.values()
        )
        assert platform.total_cost == sum(a.cost for a in answers.values())

    def test_duplicate_roads_rejected(self, platform):
        tasks = [SpeedQueryTask(1, 0, 40.0), SpeedQueryTask(1, 0, 41.0)]
        with pytest.raises(CrowdsourcingError):
            platform.collect(tasks, seed=1)

    def test_mixed_interval_round_rejected(self, platform):
        """One round is one interval: a task list spanning two intervals
        would silently mislabel the RoundReport, so it is rejected."""
        tasks = [SpeedQueryTask(1, 0, 40.0), SpeedQueryTask(2, 1, 40.0)]
        with pytest.raises(CrowdsourcingError):
            platform.collect(tasks, seed=1)

    def test_outlier_threshold_shared_with_aggregator(self):
        """The platform's outlier_threshold drives both the default
        aggregator's spam filter and the attribution mask fed to the
        health tracker: with an enormous threshold nothing is flagged
        as an outlier and nothing is filtered from the aggregate."""
        params = WorkerPoolParams(spammer_fraction=0.3)
        tasks = [SpeedQueryTask(r, 0, 40.0) for r in range(8)]
        strict = CrowdsourcingPlatform(
            WorkerPool.sample(40, params, seed=3), workers_per_task=7
        )
        lax = CrowdsourcingPlatform(
            WorkerPool.sample(40, params, seed=3),
            workers_per_task=7,
            outlier_threshold=1e6,
        )
        strict_round = strict.collect(tasks, seed=5)
        lax_round = lax.collect(tasks, seed=5)
        assert sum(o.num_outliers for o in strict_round.report.outcomes) > 0
        assert all(o.num_outliers == 0 for o in lax_round.report.outcomes)
        # The threshold reaches the aggregator too: unfiltered spam
        # shifts at least one task's aggregate.
        assert any(
            strict_round[r].speed_kmh != lax_round[r].speed_kmh
            for r in strict_round
        )
        with pytest.raises(CrowdsourcingError):
            CrowdsourcingPlatform(
                WorkerPool.sample(5, seed=1),
                workers_per_task=2,
                outlier_threshold=0,
            )

    def test_empty_round_is_legal(self, platform):
        """Light rounds may shrink to zero sentinels: an empty task list
        yields an empty round with an empty report, not an exception."""
        round_ = platform.collect([], seed=1)
        assert len(round_) == 0
        assert round_.report.num_tasks == 0
        assert round_.report.success_rate == 1.0
        assert not round_.report.is_degraded
        assert platform.last_report is round_.report

    def test_collect_speeds_convenience(self, platform):
        speeds = platform.collect_speeds(5, {1: 30.0, 2: 60.0}, seed=3)
        assert set(speeds) == {1, 2}
        assert abs(speeds[1] - 30.0) < 10
        assert abs(speeds[2] - 60.0) < 15

    def test_deterministic_given_seed(self, platform):
        a = platform.collect_speeds(0, {1: 30.0}, seed=9)
        b = platform.collect_speeds(0, {1: 30.0}, seed=9)
        assert a == b

    def test_construction_validation(self):
        pool = WorkerPool.sample(5, seed=1)
        with pytest.raises(CrowdsourcingError):
            CrowdsourcingPlatform(pool, workers_per_task=0)
        with pytest.raises(CrowdsourcingError):
            CrowdsourcingPlatform(pool, workers_per_task=10)
        with pytest.raises(CrowdsourcingError):
            CrowdsourcingPlatform(pool, cost_per_answer=-1)

    def test_unreliable_pool_still_answers(self):
        lazy_pool = WorkerPool(
            [Worker(i, 0.05, 0.0, reliability=0.3) for i in range(10)]
        )
        platform = CrowdsourcingPlatform(lazy_pool, workers_per_task=3)
        answer = platform.collect_one(
            SpeedQueryTask(1, 0, 40.0), np.random.default_rng(0)
        )
        assert answer.num_workers >= 1

    def test_round_never_raises_on_dead_pool(self):
        """A fully silent pool exhausts each task's retry budget and the
        round completes with per-task NO_RESPONSE outcomes."""
        dead = WorkerPool(
            [Worker(i, 0.05, 0.0, reliability=0.0) for i in range(10)]
        )
        platform = CrowdsourcingPlatform(
            dead, workers_per_task=3, max_postings=4
        )
        tasks = [SpeedQueryTask(r, 0, 40.0) for r in range(3)]
        round_ = platform.collect(tasks, seed=1)
        assert len(round_) == 0
        assert round_.report.failed_roads == (0, 1, 2)
        assert round_.report.is_degraded
        assert all(o.postings == 4 for o in round_.report.outcomes)
        assert platform.total_cost == 0.0

    def test_report_accounts_every_task(self, platform):
        tasks = [SpeedQueryTask(r, 3, 40.0) for r in range(6)]
        round_ = platform.collect(tasks, seed=2)
        report = round_.report
        assert report.interval == 3
        assert report.num_tasks == 6
        assert set(report.answered_roads) == set(round_)
        assert report.total_cost == pytest.approx(platform.total_cost)
        outcome = report.outcome_for(2)
        assert outcome.num_answers == round_[2].num_workers
        with pytest.raises(CrowdsourcingError):
            report.outcome_for(999)
