"""Long-horizon streaming soak: incremental mining + selective eviction.

A 31-simulated-day run (7 warmup + 24 streamed) through the full stack
— rolling history, estimation pipeline, snapshot serving store — built
so the expected cache behaviour is *provable*, not probabilistic:

* Streamed days repeat the warmup week cyclically. Because co-trend
  counts are order-independent sums over the window's rows, sliding a
  day out and the identical day back in leaves every statistic — and
  therefore the mined graph — untouched. Those days MUST produce empty
  deltas, zero evictions and zero plan recompiles.
* Three "incident" days (a congestion pattern halving speeds on a
  scattered road subset) perturb the window. Only those days may move
  edges, drop fidelity rows and recompile plans.

The headline assertions: across the whole soak there is not a single
wholesale invalidation (``fidelity.invalidations{scope=graph}`` and
``plan.cache_flushes`` both stay 0), the incremental graph is
differential-equal to a batch re-mine after every single day, and the
flight-recorder timeline shows plan-compile work only on incident days
— the structural form of "no latency spikes".
"""

import json

import pytest

from repro.core.clock import ManualClock
from repro.core.field import SpeedField
from repro.core.pipeline import SpeedEstimationSystem
from repro.crowd.platform import CrowdsourcingPlatform
from repro.crowd.workers import WorkerPool, WorkerPoolParams
from repro.history.online import RollingHistory
from repro.history.timebuckets import TimeGrid
from repro.obs import FlightRecorder, set_recorder
from repro.serving import EstimateStore, SnapshotPublisher, default_watchdog
from repro.speed.uncertainty import UncertaintyModel
from repro.traffic.simulator import TrafficSimulator

WARMUP_DAYS = 7
STREAM_DAYS = 24
#: Streamed day indices that replay a perturbed day instead of the
#: cyclic repeat. Spaced one window apart (all == 3 mod 7) so each
#: incident's eviction coincides with the next incident's ingest and
#: every other day slides an identical multiset.
INCIDENT_DAYS = (10, 17, 24)
SERVE_OFFSETS = (22, 46, 71)


def _day_field(base_field, day_index):
    return SpeedField(base_field.matrix, base_field.road_ids, day_index * 96)


def _incident_field(base_field, day_index, severity):
    matrix = base_field.matrix.copy()
    # Halve speeds on every third road for a 50-interval stretch: the
    # perturbed roads disagree with their unperturbed neighbours, which
    # moves pairwise agreements (and hence edges).
    matrix[20:70, ::3] *= severity
    return SpeedField(matrix, base_field.road_ids, day_index * 96)


@pytest.fixture(scope="module")
def base_week(small_network):
    grid = TimeGrid(15)
    sim = TrafficSimulator(small_network, grid)
    field, _ = sim.simulate(0, WARMUP_DAYS, seed=29)
    days = [
        SpeedField(field.matrix[d * 96 : (d + 1) * 96], field.road_ids, d * 96)
        for d in range(WARMUP_DAYS)
    ]
    return grid, days


def _counter(rec, name, **labels):
    return rec.registry.counter(name, **labels).value


class TestStreamingSoak:
    def test_31_day_soak_no_wholesale_flushes(
        self, small_network, base_week, tmp_path
    ):
        grid, week = base_week
        trace_path = tmp_path / "soak_trace.jsonl"
        clock = ManualClock()
        interval_s = grid.interval_minutes * 60.0
        with FlightRecorder(path=trace_path, clock=clock) as rec:
            previous = set_recorder(rec)
            try:
                report = self._run_soak(
                    small_network, grid, week, tmp_path, clock, interval_s, rec
                )
            finally:
                set_recorder(previous)

        # --- no wholesale invalidation, ever -------------------------
        assert _counter(rec, "fidelity.invalidations", scope="graph") == 0
        assert _counter(rec, "plan.cache_flushes") == 0
        assert report["flushes"] == 0

        # --- deltas only on incident days ----------------------------
        assert set(report["delta_days"]) == set(INCIDENT_DAYS)
        assert report["rows_dropped_on_quiet_days"] == 0
        assert _counter(rec, "mining.delta_edges", kind="added") + _counter(
            rec, "mining.delta_edges", kind="removed"
        ) + _counter(rec, "mining.delta_edges", kind="reweighted") > 0

        # --- plan work only on incident days -------------------------
        assert report["compiles_on_quiet_days"] == 0
        assert report["compiles_on_incident_days"] > 0
        assert report["fidelity_misses_on_quiet_days"] == 0
        assert _counter(rec, "plan.rows_evicted") == report["row_evictions"]
        assert report["row_evictions"] > 0

        # --- serving stayed healthy ----------------------------------
        assert report["rounds"] == STREAM_DAYS * len(SERVE_OFFSETS)
        assert report["published"] == report["rounds"]

        # --- flight-recorder timeline: compile spans match the cache
        #     misses, i.e. no hidden compile work outside the counted
        #     incident-day recompiles.
        events = [
            json.loads(line) for line in trace_path.read_text().splitlines()
        ]
        compile_spans = [
            e
            for e in events
            if e["type"] == "span" and e["name"] == "speed.plan.compile"
        ]
        assert len(compile_spans) == _counter(rec, "plan.cache", hit="false")
        remine_spans = [
            e
            for e in events
            if e["type"] == "span" and e["name"] == "history.remine"
        ]
        # One re-mine per ingested day (daily cadence): the first is the
        # bootstrap, everything after is incremental.
        assert len(remine_spans) == WARMUP_DAYS + STREAM_DAYS
        assert remine_spans[0]["attrs"]["mode"] == "bootstrap"
        assert all(
            span["attrs"]["mode"] == "incremental" for span in remine_spans[1:]
        )

    def _run_soak(self, network, grid, week, tmp_path, clock, interval_s, rec):
        rolling = RollingHistory(
            network, grid, window_days=WARMUP_DAYS, remine_every_days=1
        )
        for day in week:
            rolling.ingest_day(day)
        system = SpeedEstimationSystem.from_parts(
            network, rolling.store, rolling.graph
        ).bind_rolling(rolling)
        system.reselect_seeds(8)

        store = EstimateStore(
            history=rolling.store, network=network, clock=clock
        )
        publisher = SnapshotPublisher(
            system,
            store,
            UncertaintyModel(system.estimator, rolling.store),
            watchdog=default_watchdog(interval_s, clock=clock),
            clock=clock,
            snapshot_dir=tmp_path / "snapshots",
        )
        platform = CrowdsourcingPlatform(
            WorkerPool.sample(60, WorkerPoolParams(noise_std_frac=0.1), seed=7),
            workers_per_task=3,
        )

        def serve_day(day_field, crowd_seed):
            published = 0
            for offset in SERVE_OFFSETS:
                report = publisher.publish_round(
                    day_field.intervals.start + offset,
                    day_field,
                    platform,
                    crowd_seed=crowd_seed,
                )
                published += bool(report.published)
                clock.advance(interval_s)
            return published

        # Warm the plan cache on the last warmup day so quiet streamed
        # days can be asserted compile-free from day one.
        published = serve_day(week[-1], crowd_seed=6)
        rounds = len(SERVE_OFFSETS)
        # Warmup compiles/publishes are setup, not part of the soak.
        published = 0
        rounds = 0

        delta_days = []
        compiles_quiet = compiles_incident = 0
        fidelity_misses_quiet = 0
        rows_dropped_quiet = 0
        severities = {day: 0.4 + 0.1 * i for i, day in enumerate(INCIDENT_DAYS)}
        for day_index in range(WARMUP_DAYS, WARMUP_DAYS + STREAM_DAYS):
            base = week[day_index % WARMUP_DAYS]
            if day_index in severities:
                field = _incident_field(
                    base, day_index, severities[day_index]
                )
            else:
                field = _day_field(base, day_index)

            compiles_before = _counter(rec, "plan.cache", hit="false")
            fid_misses_before = _counter(rec, "fidelity.cache", hit="false")
            evictions_before = _counter(rec, "plan.rows_evicted")

            rolling.ingest_day(field)
            # The differential guarantee, checked on every window state.
            rolling.verify_incremental()
            delta = rolling.last_delta
            if delta is not None and not delta.is_empty:
                delta_days.append(day_index)

            system.reselect_seeds(8)
            published += serve_day(field, crowd_seed=day_index)
            rounds += len(SERVE_OFFSETS)

            compiled = _counter(rec, "plan.cache", hit="false") - compiles_before
            if day_index in severities:
                compiles_incident += compiled
            else:
                compiles_quiet += compiled
                fidelity_misses_quiet += (
                    _counter(rec, "fidelity.cache", hit="false")
                    - fid_misses_before
                )
                rows_dropped_quiet += (
                    _counter(rec, "plan.rows_evicted") - evictions_before
                )

        stats = system.plan_cache.stats()
        return {
            "delta_days": delta_days,
            "compiles_on_quiet_days": compiles_quiet,
            "compiles_on_incident_days": compiles_incident,
            "fidelity_misses_on_quiet_days": fidelity_misses_quiet,
            "rows_dropped_on_quiet_days": rows_dropped_quiet,
            "row_evictions": stats.row_evictions,
            "flushes": stats.flushes,
            "rounds": rounds,
            "published": published,
        }
