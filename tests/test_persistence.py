"""Tests for npz persistence of fields, stores and graphs."""

import numpy as np
import pytest

from repro.core.errors import DataError
from repro.history.persistence import (
    load_field,
    load_graph,
    load_store,
    save_field,
    save_graph,
    save_store,
)


class TestFieldRoundTrip:
    def test_round_trip(self, small_dataset, tmp_path):
        path = tmp_path / "field.npz"
        save_field(small_dataset.test, path)
        restored = load_field(path)
        assert restored.road_ids == small_dataset.test.road_ids
        assert restored.intervals == small_dataset.test.intervals
        assert np.array_equal(restored.matrix, small_dataset.test.matrix)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError, match="no such"):
            load_field(tmp_path / "absent.npz")

    def test_not_a_field_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.ones(3))
        with pytest.raises(DataError, match="format marker"):
            load_field(path)

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not an npz at all")
        with pytest.raises(DataError, match="cannot read"):
            load_field(path)


class TestStoreRoundTrip:
    def test_round_trip(self, small_dataset, tmp_path):
        path = tmp_path / "store.npz"
        store = small_dataset.store
        save_store(store, path)
        restored = load_store(path)
        assert restored.road_ids == store.road_ids
        assert restored.num_training_intervals == store.num_training_intervals
        assert restored.grid.interval_minutes == store.grid.interval_minutes
        road = store.road_ids[5]
        for bucket in (0, 34, 80):
            assert restored.mean(road, bucket) == pytest.approx(
                store.mean(road, bucket)
            )
            assert restored.std(road, bucket) == pytest.approx(
                store.std(road, bucket)
            )
            assert restored.rise_prior(road, bucket) == pytest.approx(
                store.rise_prior(road, bucket)
            )

    def test_weekend_grid_preserved(self, small_network, tmp_path):
        from repro.history.store import HistoricalSpeedStore
        from repro.history.timebuckets import TimeGrid
        from repro.traffic.simulator import TrafficSimulator

        grid = TimeGrid(30, distinguish_weekend=True)
        field, _ = TrafficSimulator(small_network, grid).simulate(0, 7, seed=1)
        store = HistoricalSpeedStore.from_fields(grid, [field])
        path = tmp_path / "store.npz"
        save_store(store, path)
        restored = load_store(path)
        assert restored.grid.distinguish_weekend
        assert restored.grid.interval_minutes == 30


class TestGraphRoundTrip:
    def test_round_trip(self, small_dataset, tmp_path):
        path = tmp_path / "graph.npz"
        graph = small_dataset.graph
        save_graph(graph, path)
        restored = load_graph(path)
        assert restored.road_ids == graph.road_ids
        assert restored.num_edges == graph.num_edges
        for edge in list(graph.edges())[:50]:
            assert restored.agreement(edge.road_u, edge.road_v) == (
                pytest.approx(edge.agreement)
            )

    def test_loaded_graph_drives_pipeline(self, small_dataset, tmp_path):
        """A persisted world restores into a working system."""
        from repro.core.pipeline import SpeedEstimationSystem

        store_path = tmp_path / "store.npz"
        graph_path = tmp_path / "graph.npz"
        save_store(small_dataset.store, store_path)
        save_graph(small_dataset.graph, graph_path)

        system = SpeedEstimationSystem.from_parts(
            small_dataset.network, load_store(store_path), load_graph(graph_path)
        )
        seeds = system.select_seeds(6)
        interval = small_dataset.test_day_intervals()[30]
        truth = small_dataset.test.speeds_at(interval)
        estimates = system.estimate(interval, {r: truth[r] for r in seeds})
        assert len(estimates) == small_dataset.network.num_segments

        # And it matches the in-memory system exactly.
        reference = SpeedEstimationSystem.from_parts(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        reference.select_seeds(6)
        assert reference.seeds == seeds
