"""Unit tests for the road-network graph."""

import pytest

from repro.core.errors import NetworkError
from repro.roadnet.geometry import Point
from repro.roadnet.network import (
    FREE_FLOW_KMH,
    RoadNetwork,
    RoadSegment,
    subnetwork_road_ids,
)


@pytest.fixture
def two_way_street() -> RoadNetwork:
    """Two intersections joined by a two-way street plus a side road."""
    net = RoadNetwork(name="t")
    net.add_intersection(0, Point(0, 0))
    net.add_intersection(1, Point(100, 0))
    net.add_intersection(2, Point(100, 100))
    net.add_segment(10, 0, 1, road_class="arterial")
    net.add_segment(11, 1, 0, road_class="arterial")
    net.add_segment(12, 1, 2, road_class="local")
    return net


class TestConstruction:
    def test_counts(self, two_way_street):
        assert two_way_street.num_intersections == 3
        assert two_way_street.num_segments == 3

    def test_default_length_is_euclidean(self, two_way_street):
        assert two_way_street.segment(10).length_m == pytest.approx(100.0)

    def test_default_free_flow_by_class(self, two_way_street):
        assert two_way_street.segment(10).free_flow_kmh == FREE_FLOW_KMH["arterial"]
        assert two_way_street.segment(12).free_flow_kmh == FREE_FLOW_KMH["local"]

    def test_duplicate_intersection_rejected(self, two_way_street):
        with pytest.raises(NetworkError, match="duplicate intersection"):
            two_way_street.add_intersection(0, Point(1, 1))

    def test_duplicate_road_rejected(self, two_way_street):
        with pytest.raises(NetworkError, match="duplicate road"):
            two_way_street.add_segment(10, 0, 2)

    def test_unknown_endpoint_rejected(self, two_way_street):
        with pytest.raises(NetworkError, match="unknown"):
            two_way_street.add_segment(99, 0, 42)

    def test_self_loop_rejected(self, two_way_street):
        with pytest.raises(NetworkError, match="self-loop"):
            two_way_street.add_segment(99, 1, 1)

    def test_unknown_class_rejected(self, two_way_street):
        with pytest.raises(NetworkError, match="unknown road class"):
            two_way_street.add_segment(99, 0, 2, road_class="cart-track")

    def test_segment_validation(self):
        with pytest.raises(NetworkError, match="non-positive length"):
            RoadSegment(1, 0, 1, length_m=0.0, road_class="local", free_flow_kmh=30)
        with pytest.raises(NetworkError, match="lanes"):
            RoadSegment(1, 0, 1, length_m=10, road_class="local",
                        free_flow_kmh=30, lanes=0)


class TestAccessors:
    def test_unknown_lookups_raise(self, two_way_street):
        with pytest.raises(NetworkError):
            two_way_street.segment(999)
        with pytest.raises(NetworkError):
            two_way_street.intersection(999)

    def test_road_ids_sorted(self, two_way_street):
        assert two_way_street.road_ids() == [10, 11, 12]

    def test_outgoing_incoming(self, two_way_street):
        assert [s.road_id for s in two_way_street.outgoing(1)] == [11, 12]
        assert [s.road_id for s in two_way_street.incoming(1)] == [10]

    def test_segment_endpoints_and_midpoint(self, two_way_street):
        start, end = two_way_street.segment_endpoints(12)
        assert start == Point(100, 0)
        assert end == Point(100, 100)
        assert two_way_street.segment_midpoint(12) == Point(100, 50)

    def test_travel_time(self, two_way_street):
        seg = two_way_street.segment(10)
        expected = 100.0 / (seg.free_flow_kmh / 3.6)
        assert seg.free_flow_travel_time_s == pytest.approx(expected)

    def test_bounding_box(self, two_way_street):
        box = two_way_street.bounding_box()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 0, 100, 100)

    def test_total_length(self, two_way_street):
        assert two_way_street.total_length_km() == pytest.approx(0.3)

    def test_class_counts(self, two_way_street):
        assert two_way_street.class_counts() == {"arterial": 2, "local": 1}


class TestTopology:
    def test_adjacent_excludes_self_and_twin(self, two_way_street):
        # Road 10 (0->1): twin 11 excluded, side road 12 included.
        assert two_way_street.adjacent_roads(10) == [12]

    def test_roads_within_hops(self, small_network):
        distances = small_network.roads_within_hops(0, 2)
        assert distances[0] == 0
        assert all(0 <= d <= 2 for d in distances.values())
        one_hop = {r for r, d in distances.items() if d == 1}
        assert one_hop == set(small_network.adjacent_roads(0))

    def test_roads_within_zero_hops(self, small_network):
        assert small_network.roads_within_hops(0, 0) == {0: 0}

    def test_shortest_path_same_node(self, two_way_street):
        assert two_way_street.shortest_path(0, 0) == []

    def test_shortest_path_simple(self, two_way_street):
        assert two_way_street.shortest_path(0, 2) == [10, 12]

    def test_shortest_path_unreachable(self):
        net = RoadNetwork()
        net.add_intersection(0, Point(0, 0))
        net.add_intersection(1, Point(10, 0))
        net.add_intersection(2, Point(20, 0))
        net.add_segment(0, 0, 1)
        net.add_segment(1, 1, 0)
        net.add_segment(2, 2, 1)  # only INTO the pair, never out to 2
        assert net.shortest_path(0, 2) is None

    def test_shortest_path_unknown_node(self, two_way_street):
        with pytest.raises(NetworkError):
            two_way_street.shortest_path(0, 99)

    def test_shortest_path_is_connected_chain(self, small_network):
        path = small_network.shortest_path(0, 35)
        assert path
        node = 0
        for road_id in path:
            seg = small_network.segment(road_id)
            assert seg.start_node == node
            node = seg.end_node
        assert node == 35

    def test_shortest_path_prefers_fast_roads(self):
        # Two routes 0->2: direct local vs two-leg highway; the highway
        # pair is longer in distance but faster in time.
        net = RoadNetwork()
        net.add_intersection(0, Point(0, 0))
        net.add_intersection(1, Point(500, 400))
        net.add_intersection(2, Point(1000, 0))
        net.add_segment(0, 0, 2, road_class="local")  # 1000m @ 30km/h = 120s
        net.add_segment(1, 0, 1, road_class="highway")  # ~640m @ 90 = 25.6s
        net.add_segment(2, 1, 2, road_class="highway")
        assert net.shortest_path(0, 2) == [1, 2]


class TestValidation:
    def test_validate_passes_on_generated(self, small_network):
        small_network.validate()

    def test_validate_catches_isolated(self):
        net = RoadNetwork()
        net.add_intersection(0, Point(0, 0))
        net.add_intersection(1, Point(10, 0))
        net.add_intersection(2, Point(99, 99))
        net.add_segment(0, 0, 1)
        with pytest.raises(NetworkError, match="isolated"):
            net.validate()

    def test_subnetwork_road_ids(self, two_way_street):
        assert subnetwork_road_ids(two_way_street, [12, 10, 10]) == [10, 12]
        with pytest.raises(NetworkError):
            subnetwork_road_ids(two_way_street, [10, 999])
