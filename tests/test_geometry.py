"""Unit tests for planar geometry primitives."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.roadnet.geometry import (
    BoundingBox,
    Point,
    heading_degrees,
    interpolate_along,
    point_segment_distance,
    polyline_length,
    project_onto_segment,
)

coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_to_self_is_zero(self):
        assert Point(7.5, -2.0).distance_to(Point(7.5, -2.0)) == 0.0

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(10, 4)) == Point(5, 2)

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)

    @given(coords, coords, coords, coords)
    def test_distance_symmetry(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(coords, coords, coords, coords, coords, coords)
    def test_triangle_inequality(self, x1, y1, x2, y2, x3, y3):
        a, b, c = Point(x1, y1), Point(x2, y2), Point(x3, y3)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6


class TestBoundingBox:
    def test_around_points(self):
        box = BoundingBox.around([Point(0, 0), Point(10, 5), Point(3, -2)])
        assert box == BoundingBox(0, -2, 10, 5)

    def test_around_with_margin(self):
        box = BoundingBox.around([Point(0, 0)], margin=5)
        assert box == BoundingBox(-5, -5, 5, 5)

    def test_around_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.around([])

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(10, 0, 0, 10)

    def test_contains_boundary(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.contains(Point(0, 0))
        assert box.contains(Point(10, 10))
        assert not box.contains(Point(10.001, 5))

    def test_dimensions_and_center(self):
        box = BoundingBox(0, 0, 10, 4)
        assert box.width == 10
        assert box.height == 4
        assert box.center == Point(5, 2)

    def test_expanded(self):
        assert BoundingBox(0, 0, 1, 1).expanded(1) == BoundingBox(-1, -1, 2, 2)

    def test_intersects(self):
        a = BoundingBox(0, 0, 10, 10)
        assert a.intersects(BoundingBox(5, 5, 15, 15))
        assert a.intersects(BoundingBox(10, 10, 20, 20))  # corner touch
        assert not a.intersects(BoundingBox(11, 11, 20, 20))


class TestPolyline:
    def test_length_of_segments(self):
        pts = [Point(0, 0), Point(3, 4), Point(3, 10)]
        assert polyline_length(pts) == pytest.approx(11.0)

    def test_length_short_inputs(self):
        assert polyline_length([]) == 0.0
        assert polyline_length([Point(1, 1)]) == 0.0

    def test_interpolate_endpoints(self):
        pts = [Point(0, 0), Point(10, 0)]
        assert interpolate_along(pts, 0.0) == Point(0, 0)
        assert interpolate_along(pts, 1.0) == Point(10, 0)

    def test_interpolate_midway_multi_segment(self):
        pts = [Point(0, 0), Point(10, 0), Point(10, 10)]
        mid = interpolate_along(pts, 0.5)
        assert mid == Point(10, 0)

    def test_interpolate_clamps(self):
        pts = [Point(0, 0), Point(10, 0)]
        assert interpolate_along(pts, -1.0) == Point(0, 0)
        assert interpolate_along(pts, 2.0) == Point(10, 0)

    def test_interpolate_empty_raises(self):
        with pytest.raises(ValueError):
            interpolate_along([], 0.5)

    def test_interpolate_single_point(self):
        assert interpolate_along([Point(2, 3)], 0.7) == Point(2, 3)

    @given(st.floats(min_value=0, max_value=1))
    def test_interpolated_point_is_on_segment(self, fraction):
        pts = [Point(0, 0), Point(10, 0)]
        p = interpolate_along(pts, fraction)
        assert p.y == 0.0
        assert 0.0 <= p.x <= 10.0


class TestProjection:
    def test_projects_inside(self):
        foot, t = project_onto_segment(Point(5, 3), Point(0, 0), Point(10, 0))
        assert foot == Point(5, 0)
        assert t == 0.5

    def test_clamps_before_start(self):
        foot, t = project_onto_segment(Point(-5, 3), Point(0, 0), Point(10, 0))
        assert foot == Point(0, 0)
        assert t == 0.0

    def test_clamps_after_end(self):
        foot, t = project_onto_segment(Point(15, 3), Point(0, 0), Point(10, 0))
        assert foot == Point(10, 0)
        assert t == 1.0

    def test_zero_length_segment(self):
        foot, t = project_onto_segment(Point(5, 5), Point(1, 1), Point(1, 1))
        assert foot == Point(1, 1)
        assert t == 0.0

    def test_distance_perpendicular(self):
        assert point_segment_distance(Point(5, 3), Point(0, 0), Point(10, 0)) == 3.0

    @given(coords, coords)
    def test_projection_distance_never_exceeds_endpoint_distance(self, x, y):
        p = Point(x, y)
        a, b = Point(0, 0), Point(100, 0)
        d = point_segment_distance(p, a, b)
        assert d <= p.distance_to(a) + 1e-6
        assert d <= p.distance_to(b) + 1e-6


class TestHeading:
    def test_north(self):
        assert heading_degrees(Point(0, 0), Point(0, 1)) == 0.0

    def test_east(self):
        assert heading_degrees(Point(0, 0), Point(1, 0)) == 90.0

    def test_south(self):
        assert heading_degrees(Point(0, 0), Point(0, -1)) == 180.0

    def test_west(self):
        assert heading_degrees(Point(0, 0), Point(-1, 0)) == 270.0

    def test_zero_length_is_zero(self):
        assert heading_degrees(Point(3, 3), Point(3, 3)) == 0.0

    def test_range(self):
        h = heading_degrees(Point(0, 0), Point(-1, -math.sqrt(3)))
        assert 0.0 <= h < 360.0
