"""Concurrent reads during publishes: no torn reads, versions monotonic.

The store's publish is a single reference swap, so a reader that starts
on snapshot v must see v's numbers for *every* road of that read even if
v+1 lands mid-loop. To make tears detectable, each published snapshot
encodes its own version into every speed — any read mixing two
snapshots produces a road whose speed disagrees with the read's version.
"""

import threading

import pytest

from repro.core.clock import ManualClock
from repro.core.types import SpeedEstimate, Trend
from repro.serving import EstimateSnapshot, EstimateStore, StalenessPolicy
from repro.speed.uncertainty import SpeedBand

ROADS = tuple(range(40))


def snapshot_for_version(version: int) -> EstimateSnapshot:
    """Every road's speed is ``version + road/1000`` — self-identifying."""
    estimates = {}
    bands = {}
    for road in ROADS:
        speed = float(version) + road / 1000.0
        estimates[road] = SpeedEstimate(
            road_id=road,
            interval=version,
            speed_kmh=speed,
            trend=Trend.RISE,
            trend_probability=0.7,
            is_seed=False,
            degraded=False,
        )
        bands[road] = SpeedBand(
            road_id=road,
            interval=version,
            speed_kmh=speed,
            lower_kmh=speed - 1.0,
            upper_kmh=speed + 1.0,
            std_kmh=0.5,
            confidence=0.9,
        )
    return EstimateSnapshot.build(version, version, estimates, bands)


def test_concurrent_reads_see_consistent_snapshots():
    clock = ManualClock()
    store = EstimateStore(
        clock=clock,
        staleness=StalenessPolicy(soft_after_s=1e9, hard_after_s=2e9),
    )
    store.publish(snapshot_for_version(0))

    num_publishes = 120
    stop = threading.Event()
    errors: list[str] = []
    reads_done = [0] * 4

    def reader(slot: int) -> None:
        last_version = -1
        while not stop.is_set():
            try:
                served = store.get_many(list(ROADS))
            except Exception as exc:  # noqa: BLE001 - the invariant
                errors.append(f"reader raised: {exc!r}")
                return
            versions = {s.snapshot_version for s in served.values()}
            if len(versions) != 1:
                errors.append(f"torn read across versions {sorted(versions)}")
                return
            (version,) = versions
            if version < last_version:
                errors.append(
                    f"version went backwards: {last_version} -> {version}"
                )
                return
            last_version = version
            for road, s in served.items():
                expected = float(version) + road / 1000.0
                if s.speed_kmh != pytest.approx(expected):
                    errors.append(
                        f"road {road}: speed {s.speed_kmh} does not match "
                        f"version {version}"
                    )
                    return
            reads_done[slot] += 1

    threads = [
        threading.Thread(target=reader, args=(slot,), daemon=True)
        for slot in range(len(reads_done))
    ]
    for thread in threads:
        thread.start()
    for version in range(1, num_publishes + 1):
        assert store.publish(snapshot_for_version(version))
    stop.set()
    for thread in threads:
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "reader thread wedged"

    assert errors == []
    assert sum(reads_done) > 0, "readers never completed a single read"
    assert store.version == num_publishes


def test_concurrent_publishers_keep_versions_monotonic():
    store = EstimateStore(clock=ManualClock())
    versions = list(range(60))
    accepted: list[int] = []
    lock = threading.Lock()

    def publisher(chunk: list[int]) -> None:
        for version in chunk:
            if store.publish(snapshot_for_version(version)):
                with lock:
                    accepted.append(version)

    threads = [
        threading.Thread(target=publisher, args=(versions[i::3],), daemon=True)
        for i in range(3)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)

    # Whatever interleaving happened, each version was accepted at most
    # once and the store ends on the highest accepted one. (The append
    # order of `accepted` is not the publish order, so only set-level
    # properties are asserted here; reader-observed monotonicity is
    # covered by the test above.)
    assert len(accepted) == len(set(accepted))
    assert store.version == max(accepted)
    snapshot = store.latest()
    assert snapshot.verify()
