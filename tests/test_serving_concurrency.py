"""Concurrent reads during publishes: no torn reads, versions monotonic.

The store's publish is a single reference swap, so a reader that starts
on snapshot v must see v's numbers for *every* road of that read even if
v+1 lands mid-loop. To make tears detectable, each published snapshot
encodes its own version into every speed — any read mixing two
snapshots produces a road whose speed disagrees with the read's version.
"""

import threading

import pytest

from repro.core.clock import ManualClock
from repro.core.types import SpeedEstimate, Trend
from repro.obs import FlightRecorder, ReadTracer, recording
from repro.obs.report import EVENT_SCHEMAS
from repro.serving import EstimateSnapshot, EstimateStore, StalenessPolicy
from repro.speed.uncertainty import SpeedBand

ROADS = tuple(range(40))


def snapshot_for_version(version: int) -> EstimateSnapshot:
    """Every road's speed is ``version + road/1000`` — self-identifying."""
    estimates = {}
    bands = {}
    for road in ROADS:
        speed = float(version) + road / 1000.0
        estimates[road] = SpeedEstimate(
            road_id=road,
            interval=version,
            speed_kmh=speed,
            trend=Trend.RISE,
            trend_probability=0.7,
            is_seed=False,
            degraded=False,
        )
        bands[road] = SpeedBand(
            road_id=road,
            interval=version,
            speed_kmh=speed,
            lower_kmh=speed - 1.0,
            upper_kmh=speed + 1.0,
            std_kmh=0.5,
            confidence=0.9,
        )
    return EstimateSnapshot.build(version, version, estimates, bands)


def test_concurrent_reads_see_consistent_snapshots():
    clock = ManualClock()
    store = EstimateStore(
        clock=clock,
        staleness=StalenessPolicy(soft_after_s=1e9, hard_after_s=2e9),
    )
    store.publish(snapshot_for_version(0))

    num_publishes = 120
    stop = threading.Event()
    errors: list[str] = []
    reads_done = [0] * 4

    def reader(slot: int) -> None:
        last_version = -1
        while not stop.is_set():
            try:
                served = store.get_many(list(ROADS))
            except Exception as exc:  # noqa: BLE001 - the invariant
                errors.append(f"reader raised: {exc!r}")
                return
            versions = {s.snapshot_version for s in served.values()}
            if len(versions) != 1:
                errors.append(f"torn read across versions {sorted(versions)}")
                return
            (version,) = versions
            if version < last_version:
                errors.append(
                    f"version went backwards: {last_version} -> {version}"
                )
                return
            last_version = version
            for road, s in served.items():
                expected = float(version) + road / 1000.0
                if s.speed_kmh != pytest.approx(expected):
                    errors.append(
                        f"road {road}: speed {s.speed_kmh} does not match "
                        f"version {version}"
                    )
                    return
            reads_done[slot] += 1

    threads = [
        threading.Thread(target=reader, args=(slot,), daemon=True)
        for slot in range(len(reads_done))
    ]
    for thread in threads:
        thread.start()
    for version in range(1, num_publishes + 1):
        assert store.publish(snapshot_for_version(version))
    stop.set()
    for thread in threads:
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "reader thread wedged"

    assert errors == []
    assert sum(reads_done) > 0, "readers never completed a single read"
    assert store.version == num_publishes


def test_concurrent_publishers_keep_versions_monotonic():
    store = EstimateStore(clock=ManualClock())
    versions = list(range(60))
    accepted: list[int] = []
    lock = threading.Lock()

    def publisher(chunk: list[int]) -> None:
        for version in chunk:
            if store.publish(snapshot_for_version(version)):
                with lock:
                    accepted.append(version)

    threads = [
        threading.Thread(target=publisher, args=(versions[i::3],), daemon=True)
        for i in range(3)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)

    # Whatever interleaving happened, each version was accepted at most
    # once and the store ends on the highest accepted one. (The append
    # order of `accepted` is not the publish order, so only set-level
    # properties are asserted here; reader-observed monotonicity is
    # covered by the test above.)
    assert len(accepted) == len(set(accepted))
    assert store.version == max(accepted)
    snapshot = store.latest()
    assert snapshot.verify()


# ----------------------------------------------------------------------
# Tracing under concurrency: no torn events, accounting adds up exactly.
# ----------------------------------------------------------------------
def _traced_store(sample_every: int) -> EstimateStore:
    store = EstimateStore(
        clock=ManualClock(),
        staleness=StalenessPolicy(soft_after_s=1e9, hard_after_s=2e9),
        tracer=ReadTracer(sample_every=sample_every),
    )
    store.publish(snapshot_for_version(0))
    return store


def _hammer(store: EstimateStore, threads: int, reads_per_thread: int) -> None:
    barrier = threading.Barrier(threads)

    def reader() -> None:
        barrier.wait()
        for _ in range(reads_per_thread):
            store.get_many(list(ROADS))

    workers = [
        threading.Thread(target=reader, daemon=True) for _ in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=30.0)
        assert not worker.is_alive(), "reader thread wedged"


def test_concurrent_traced_reads_never_tear():
    """With sample_every=1 every read is recorded: trace ids are the
    exact sequence 1..N with no gaps or duplicates, and every event is
    internally complete — the torn-trace detector.

    Assertions run on the recorder's event ring (deque appends and
    itertools id allocation are atomic under the GIL), not on registry
    counters, which make no thread-safety promise.
    """
    store = _traced_store(sample_every=1)
    threads, per_thread = 8, 40
    rec = FlightRecorder(ring_size=10_000)
    with recording(rec):
        _hammer(store, threads, per_thread)

    total = threads * per_thread
    events = [e for e in rec.events if e.get("kind") == "read_trace"]
    assert len(events) == total
    assert sorted(e["trace_id"] for e in events) == list(range(1, total + 1))
    schema = EVENT_SCHEMAS["read_trace"]
    for event in events:
        assert all(field in event for field in schema), event
        assert event["rung"] == "fresh"
        assert event["sampled"] == "interval"
        assert event["roads"] == len(ROADS)
        assert sum(event["statuses"].values()) == len(ROADS)
        assert event["snapshot_version"] == 0


def test_concurrent_healthy_reads_sample_deterministically():
    """Interval sampling is a shared atomic counter, so exactly
    ceil(N / sample_every) healthy reads are recorded no matter how the
    threads interleave."""
    store = _traced_store(sample_every=4)
    threads, per_thread = 4, 25
    rec = FlightRecorder(ring_size=10_000)
    with recording(rec):
        _hammer(store, threads, per_thread)

    total = threads * per_thread
    events = [e for e in rec.events if e.get("kind") == "read_trace"]
    assert len(events) == (total + 3) // 4
    ids = [e["trace_id"] for e in events]
    assert len(ids) == len(set(ids)), "duplicate trace ids"
    assert all(1 <= i <= total for i in ids)
