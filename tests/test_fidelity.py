"""Tests for the shared CSR fidelity kernel and cross-stage cache.

The kernel's contract is differential: bitwise-identical fidelity rows
to the scalar dict/heap reference on any graph, floor and hop budget.
The service's contract is shared caching without poisoning: every
consumer sees the same read-only rows, and mutating a returned result
is an error rather than a cache corruption.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InferenceError
from repro.core.types import Trend
from repro.history.correlation import CorrelationEdge, CorrelationGraph
from repro.history.fidelity import (
    CSRFidelityGraph,
    FidelityCacheService,
    best_fidelity_row,
    best_fidelity_rows,
    get_fidelity_service,
    propagate_fidelity_scalar,
    set_fidelity_service,
)
from repro.seeds.objective import SeedSelectionObjective
from repro.trend.model import TrendModel
from repro.trend.propagation import TrendPropagationInference


def line_graph(agreements):
    n = len(agreements) + 1
    return CorrelationGraph(
        list(range(n)),
        [CorrelationEdge(i, i + 1, a) for i, a in enumerate(agreements)],
    )


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=9))
    edges = []
    seen = set()
    for _ in range(draw(st.integers(min_value=0, max_value=14))):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        key = (min(u, v), max(u, v))
        if u == v or key in seen:
            continue
        seen.add(key)
        edges.append(
            CorrelationEdge(u, v, draw(st.floats(min_value=0.5, max_value=1.0)))
        )
    return CorrelationGraph(list(range(n)), edges)


class TestCSRExport:
    def test_structure(self):
        graph = CorrelationGraph(
            [3, 1, 7],
            [CorrelationEdge(1, 3, 0.8), CorrelationEdge(3, 7, 0.9)],
        )
        csr = CSRFidelityGraph.from_graph(graph)
        assert csr.road_ids == (1, 3, 7)
        assert csr.index == {1: 0, 3: 1, 7: 2}
        assert csr.num_roads == 3
        # Road 3 (position 1) touches both others.
        lo, hi = csr.indptr[1], csr.indptr[2]
        assert sorted(csr.indices[lo:hi]) == [0, 2]
        # data carries fidelities 2p - 1, not agreements.
        assert set(np.round(csr.data, 10)) == {0.6, 0.8}
        for arr in (csr.indptr, csr.indices, csr.data):
            assert not arr.flags.writeable

    def test_empty_graph(self):
        csr = CSRFidelityGraph.from_graph(CorrelationGraph([0, 1], []))
        assert csr.indptr.tolist() == [0, 0, 0]
        row = best_fidelity_row(csr, 0, min_fidelity=0.1)
        assert row.tolist() == [1.0, 0.0]

    def test_degrees_match_graph(self):
        graph = line_graph([0.8, 0.9, 0.7])
        csr = CSRFidelityGraph.from_graph(graph)
        for road in graph.road_ids:
            i = csr.index[road]
            assert csr.indptr[i + 1] - csr.indptr[i] == graph.degree(road)


class TestKernel:
    def test_matches_scalar_on_line(self):
        graph = line_graph([0.8, 0.9, 0.7])
        csr = CSRFidelityGraph.from_graph(graph)
        row = best_fidelity_row(csr, 0, min_fidelity=0.01)
        scalar = propagate_fidelity_scalar(graph, 0, min_fidelity=0.01)
        for road, fid in scalar.items():
            assert row[csr.index[road]] == fid
        assert np.count_nonzero(row) == len(scalar)

    def test_source_out_of_range(self):
        csr = CSRFidelityGraph.from_graph(line_graph([0.8]))
        with pytest.raises(InferenceError):
            best_fidelity_row(csr, 9)

    def test_bad_floor(self):
        csr = CSRFidelityGraph.from_graph(line_graph([0.8]))
        with pytest.raises(InferenceError):
            best_fidelity_row(csr, 0, min_fidelity=0.0)

    def test_rows_stacked(self):
        graph = line_graph([0.8, 0.9])
        csr = CSRFidelityGraph.from_graph(graph)
        rows = best_fidelity_rows(csr, [0, 2], min_fidelity=0.01)
        assert rows.shape == (2, 3)
        assert rows[0, 0] == 1.0 and rows[1, 2] == 1.0

    def test_max_hops_bounds_candidate_paths(self):
        """Diamond: strong 2-hop route must not shadow the weak 1-hop one.

        0-1-2 carries fidelity 0.81 to road 2 in two hops while the
        direct 0-2 edge carries 0.2 in one; road 3 hangs off road 2. At
        ``max_hops=2`` road 3 is reachable only as 0→2→3 through the
        *weak* edge — single-label Dijkstra pruning (the old bug)
        settles road 2 at 0.81 with hop count 2 and drops road 3.
        """
        graph = CorrelationGraph(
            [0, 1, 2, 3],
            [
                CorrelationEdge(0, 1, 0.95),  # q = 0.9
                CorrelationEdge(1, 2, 0.95),  # q = 0.9 -> 0.81 at 2 hops
                CorrelationEdge(0, 2, 0.6),  # q = 0.2 at 1 hop
                CorrelationEdge(2, 3, 0.9),  # q = 0.8
            ],
        )
        csr = CSRFidelityGraph.from_graph(graph)
        row = best_fidelity_row(csr, 0, min_fidelity=0.01, max_hops=2)
        assert row[csr.index[2]] == pytest.approx(0.81)
        assert row[csr.index[3]] == pytest.approx(0.2 * 0.8)


@settings(max_examples=60, deadline=None)
@given(
    graph=random_graphs(),
    min_fidelity=st.sampled_from([1e-6, 0.05, 0.3]),
    max_hops=st.sampled_from([None, 1, 2, 3]),
    data=st.data(),
)
def test_kernel_bitwise_equals_scalar(graph, min_fidelity, max_hops, data):
    """The vectorized kernel and the scalar reference agree exactly."""
    source = data.draw(st.sampled_from(graph.road_ids))
    csr = CSRFidelityGraph.from_graph(graph)
    row = best_fidelity_row(csr, csr.index[source], min_fidelity, max_hops)
    scalar = propagate_fidelity_scalar(graph, source, min_fidelity, max_hops)
    dense_scalar = np.zeros(csr.num_roads)
    for road, fid in scalar.items():
        dense_scalar[csr.index[road]] = fid
    assert np.array_equal(row, dense_scalar)  # bitwise, no tolerance


class TestService:
    def test_rows_are_cached_and_read_only(self):
        service = FidelityCacheService()
        graph = line_graph([0.8, 0.9])
        row1 = service.row(graph, 0, min_fidelity=0.01)
        row2 = service.row(graph, 0, min_fidelity=0.01)
        assert row1 is row2
        assert not row1.flags.writeable
        with pytest.raises(ValueError):
            row1[0] = 0.5
        stats = service.stats()
        assert stats.misses == 1 and stats.hits == 1

    def test_maps_are_read_only_views(self):
        service = FidelityCacheService()
        graph = line_graph([0.8])
        mapping = service.fidelity_map(graph, 0, min_fidelity=0.01)
        with pytest.raises(TypeError):
            mapping[0] = 99.0
        assert service.fidelity_map(graph, 0, min_fidelity=0.01) is mapping

    def test_keys_isolate_floor_hops_and_transform(self):
        service = FidelityCacheService()
        graph = line_graph([0.8, 0.8, 0.8])
        loose = service.row(graph, 0, min_fidelity=0.01)
        tight = service.row(graph, 0, min_fidelity=0.5)
        bounded = service.row(graph, 0, min_fidelity=0.01, max_hops=1)
        variance = service.row(graph, 0, min_fidelity=0.01, transform="variance")
        assert np.count_nonzero(loose) > np.count_nonzero(tight)
        assert np.count_nonzero(bounded) == 2
        assert variance[1] == pytest.approx(math.sin(math.pi * 0.6 / 2.0) ** 2)
        # Raw row unchanged by transform requests.
        assert loose[1] == pytest.approx(0.6)

    def test_logodds_transform_zeroes_source(self):
        service = FidelityCacheService()
        graph = line_graph([0.8])
        row = service.row(graph, 0, min_fidelity=0.01, transform="logodds")
        assert row[0] == 0.0
        assert row[1] == pytest.approx(math.log(1.6 / 0.4))

    def test_unknown_transform_rejected(self):
        service = FidelityCacheService()
        with pytest.raises(InferenceError):
            service.row(line_graph([0.8]), 0, transform="magic")

    def test_unknown_source_rejected(self):
        service = FidelityCacheService()
        with pytest.raises(InferenceError):
            service.row(line_graph([0.8]), 42)

    def test_graph_identity_keys_the_cache(self):
        service = FidelityCacheService()
        graph_a = line_graph([0.8])
        graph_b = line_graph([0.99])  # different object AND content
        row_a = service.row(graph_a, 0, min_fidelity=0.01)
        row_b = service.row(graph_b, 0, min_fidelity=0.01)
        assert row_a[1] != row_b[1]
        assert service.stats().misses == 2

    def test_invalidate(self):
        service = FidelityCacheService()
        graph = line_graph([0.8])
        row = service.row(graph, 0, min_fidelity=0.01)
        service.invalidate(graph)
        assert service.row(graph, 0, min_fidelity=0.01) is not row
        service.invalidate()
        assert service.stats().misses == 2

    def test_scalar_service_matches_kernel_service(self):
        graph = line_graph([0.8, 0.9, 0.7])
        kernel = FidelityCacheService(use_kernel=True)
        scalar = FidelityCacheService(use_kernel=False)
        for road in graph.road_ids:
            assert np.array_equal(
                kernel.row(graph, road, min_fidelity=0.01),
                scalar.row(graph, road, min_fidelity=0.01),
            )

    def test_default_service_swap(self):
        replacement = FidelityCacheService()
        previous = set_fidelity_service(replacement)
        try:
            assert get_fidelity_service() is replacement
        finally:
            set_fidelity_service(previous)


class TestCrossStageSharing:
    """One service, two consumers: rows computed once, shared by both."""

    def _city(self):
        from repro.datasets.synthetic import scaled_dataset

        return scaled_dataset(40, history_days=3)

    def test_inference_and_selection_share_rows(self):
        city = self._city()
        shared = FidelityCacheService()
        objective = SeedSelectionObjective(city.graph, fidelity_service=shared)
        inference = TrendPropagationInference(fidelity_service=shared)

        seeds = city.graph.road_ids[:4]
        for road in seeds:
            objective.influence_row(road)
        misses_after_selection = shared.stats().misses

        model = TrendModel(city.graph, city.store)
        interval = city.test_day_intervals()[10]
        truth = city.test.speeds_at(interval)
        seed_trends = {r: city.store.trend_of(r, interval, truth[r]) for r in seeds}
        inference.infer(model.instance(interval, seed_trends))

        # Inference adds only the log-odds transform of the already-
        # propagated raw rows: one miss per seed, no re-propagation.
        assert shared.stats().misses == misses_after_selection + len(seeds)

    def test_shared_results_match_cold_results(self):
        """Warm shared-cache answers equal cold single-consumer answers."""
        city = self._city()
        shared = FidelityCacheService()
        seeds = city.graph.road_ids[:4]
        model = TrendModel(city.graph, city.store)
        interval = city.test_day_intervals()[10]
        truth = city.test.speeds_at(interval)
        seed_trends = {r: city.store.trend_of(r, interval, truth[r]) for r in seeds}
        instance = model.instance(interval, seed_trends)

        for transform in ("variance", "fidelity"):
            warm = SeedSelectionObjective(
                city.graph, fidelity_service=shared, transform=transform
            )
            cold = SeedSelectionObjective(
                city.graph,
                fidelity_service=FidelityCacheService(),
                transform=transform,
            )
            # Warm the shared cache through the *inference* consumer first.
            TrendPropagationInference(fidelity_service=shared).infer(instance)
            assert warm.value(seeds) == cold.value(seeds)

        warm_posterior = TrendPropagationInference(fidelity_service=shared).infer(
            instance
        )
        cold_posterior = TrendPropagationInference(
            fidelity_service=FidelityCacheService()
        ).infer(instance)
        assert np.array_equal(
            warm_posterior.as_array(), cold_posterior.as_array()
        )

    def test_clone_and_partition_share_the_service(self):
        city = self._city()
        shared = FidelityCacheService()
        objective = SeedSelectionObjective(city.graph, fidelity_service=shared)
        for road in city.graph.road_ids:
            objective.influence_row(road)
        misses = shared.stats().misses
        clone = objective.clone_with_weights(
            {road: 1.0 for road in city.graph.road_ids[:5]}
        )
        assert clone.fidelity_service is shared
        for road in city.graph.road_ids:
            clone.influence_row(road)
        assert shared.stats().misses == misses  # all hits

    def test_mutating_results_cannot_poison_the_cache(self):
        city = self._city()
        shared = FidelityCacheService()
        objective = SeedSelectionObjective(city.graph, fidelity_service=shared)
        road = city.graph.road_ids[0]
        row = objective.influence_row(road)
        with pytest.raises(ValueError):
            row[:] = 123.0
        with pytest.raises(TypeError):
            objective.influence_map(road)[road] = 123.0
        inference = TrendPropagationInference(fidelity_service=shared)
        graph = city.graph
        matrix = shared.rows(graph, [road], transform="logodds")
        with pytest.raises(ValueError):
            matrix[0, 0] = 1.0
        assert objective.influence_row(road) is row


class TestKernelInferenceEquivalence:
    def test_posterior_matches_scalar_reference(self):
        from repro.datasets.synthetic import scaled_dataset

        city = scaled_dataset(60, history_days=3)
        model = TrendModel(city.graph, city.store)
        seeds = city.graph.road_ids[::7]
        for interval in city.test_day_intervals(stride=24):
            truth = city.test.speeds_at(interval)
            seed_trends = {
                r: city.store.trend_of(r, interval, truth[r]) for r in seeds
            }
            instance = model.instance(interval, seed_trends)
            kernel = TrendPropagationInference(
                fidelity_service=FidelityCacheService(), use_kernel=True
            ).infer(instance)
            scalar = TrendPropagationInference(
                fidelity_service=FidelityCacheService(use_kernel=False),
                use_kernel=False,
            ).infer(instance)
            np.testing.assert_allclose(
                kernel.as_array(), scalar.as_array(), atol=1e-9, rtol=0
            )

    def test_max_hops_respected_through_inference(self):
        graph = line_graph([0.9, 0.9, 0.9])
        store_roads = graph.road_ids
        instance_evidence = {0: Trend.RISE}
        import numpy as _np

        from repro.trend.model import TrendInstance

        instance = TrendInstance(
            road_ids=tuple(store_roads),
            prior_rise=_np.full(len(store_roads), 0.5),
            edges=tuple(),
            evidence=instance_evidence,
            graph=graph,
        )
        bounded = TrendPropagationInference(
            max_hops=1, fidelity_service=FidelityCacheService()
        ).infer(instance)
        assert bounded.p_rise(1) > 0.5  # one hop away: voted on
        assert bounded.p_rise(2) == pytest.approx(0.5)  # beyond the budget
