"""End-to-end integration tests: the whole story on one dataset.

These assert the paper's qualitative claims on the small test city:
greedy-seeded two-step estimation beats the historical average and the
naive baselines, trend inference is substantially better than chance,
and the full GPS→history pipeline composes with the estimator.
"""

import numpy as np
import pytest

from repro.baselines.historical import HistoricalAverageBaseline
from repro.baselines.knn import KnnSpeedBaseline
from repro.baselines.regression import GlobalRatioBaseline
from repro.core.pipeline import SpeedEstimationSystem
from repro.crowd.platform import CrowdsourcingPlatform
from repro.crowd.workers import WorkerPool
from repro.evalkit.harness import Evaluation, TwoStepMethod


@pytest.fixture(scope="module")
def fitted(small_dataset):
    system = SpeedEstimationSystem.from_parts(
        small_dataset.network, small_dataset.store, small_dataset.graph
    )
    seeds = system.select_seeds(10)  # ~8% budget on 120 roads
    evaluation = Evaluation(
        truth=small_dataset.test,
        store=small_dataset.store,
        seeds=seeds,
        intervals=small_dataset.test_day_intervals(stride=6),
    )
    return small_dataset, system, evaluation


class TestHeadlineClaims:
    def test_two_step_beats_historical_average(self, fitted):
        dataset, system, evaluation = fitted
        ours = evaluation.run(TwoStepMethod(system.estimator))
        ha = evaluation.run(HistoricalAverageBaseline(dataset.store))
        assert ours.speed.mae < ha.speed.mae * 0.85

    def test_two_step_beats_naive_baselines(self, fitted):
        dataset, system, evaluation = fitted
        ours = evaluation.run(TwoStepMethod(system.estimator))
        for baseline in (
            KnnSpeedBaseline(dataset.network),
            GlobalRatioBaseline(dataset.store),
        ):
            other = evaluation.run(baseline)
            assert ours.speed.mae < other.speed.mae

    def test_trend_inference_beats_chance(self, fitted):
        _, system, evaluation = fitted
        ours = evaluation.run(TwoStepMethod(system.estimator))
        assert ours.trend.accuracy > 0.65

    def test_greedy_seeds_beat_random_seeds(self, fitted):
        dataset, system, evaluation = fitted
        greedy_result = evaluation.run(TwoStepMethod(system.estimator))

        random_seeds = system.select_seeds(10, method="random", random_seed=7)
        random_eval = Evaluation(
            truth=dataset.test,
            store=dataset.store,
            seeds=random_seeds,
            intervals=evaluation.intervals,
        )
        fresh = SpeedEstimationSystem.from_parts(
            dataset.network, dataset.store, dataset.graph
        )
        random_result = random_eval.run(TwoStepMethod(fresh.estimator))
        # Greedy coverage should not be worse; allow a small tolerance
        # because the random set also observes 10 roads for free.
        assert greedy_result.speed.mae <= random_result.speed.mae * 1.1

    def test_survives_crowd_noise(self, fitted):
        dataset, system, evaluation = fitted
        clean = evaluation.run(TwoStepMethod(system.estimator))
        noisy_eval = Evaluation(
            truth=dataset.test,
            store=dataset.store,
            seeds=evaluation.seeds,
            intervals=evaluation.intervals,
            crowd_platform=CrowdsourcingPlatform(
                WorkerPool.sample(40, seed=9), workers_per_task=5
            ),
        )
        noisy = noisy_eval.run(TwoStepMethod(system.estimator))
        # Noise costs something but must not break the method.
        assert noisy.speed.mae < clean.speed.mae * 1.5
        ha = noisy_eval.run(HistoricalAverageBaseline(dataset.store))
        assert noisy.speed.mae < ha.speed.mae


class TestGpsToEstimatorComposition:
    def test_probe_history_feeds_pipeline(self, small_dataset):
        """Speeds extracted from GPS traces line up with the store's
        world: a system fitted on simulator history can consume
        probe-derived seed observations."""
        from repro.gps.map_matching import HmmMatcher
        from repro.gps.speed_extraction import extract_probe_speeds
        from repro.gps.traces import TraceGenerator
        from repro.gps.trips import generate_trips

        dataset = small_dataset
        day = dataset.first_test_day
        trips = generate_trips(dataset.network, 60, day=day, seed=21)
        generator = TraceGenerator(
            dataset.network, dataset.test, dataset.grid, sample_interval_s=20.0
        )
        traces = generator.emit_all(trips, seed=22)
        matcher = HmmMatcher(dataset.network)
        table = extract_probe_speeds(
            dataset.network, [matcher.match(t) for t in traces], dataset.grid
        )
        assert table.num_entries > 0

        system = SpeedEstimationSystem.from_parts(
            dataset.network, dataset.store, dataset.graph
        )
        # Use whichever probe-observed roads exist at some interval as seeds.
        interval = next(
            t
            for t in dataset.test_day_intervals()
            if len(table.observed_roads(t)) >= 3
        )
        seed_speeds = {
            r: table.speed(r, interval) for r in table.observed_roads(interval)
        }
        estimates = system.estimate(interval, seed_speeds)
        assert len(estimates) == dataset.network.num_segments
        # Probe-seeded estimates still beat HA on this interval.
        truth = dataset.test.speeds_at(interval)
        ours, has = [], []
        for road in dataset.network.road_ids():
            if road in seed_speeds:
                continue
            ours.append(abs(estimates[road].speed_kmh - truth[road]))
            has.append(
                abs(dataset.store.historical_speed(road, interval) - truth[road])
            )
        assert np.mean(ours) <= np.mean(has) * 1.05
