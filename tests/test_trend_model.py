"""Unit tests for the trend MRF model structures."""

import numpy as np
import pytest

from repro.core.errors import InferenceError
from repro.core.types import Trend
from repro.trend.model import TrendInstance, TrendModel, TrendPosterior


class TestTrend:
    def test_from_speeds(self):
        assert Trend.from_speeds(31, 30) is Trend.RISE
        assert Trend.from_speeds(30, 30) is Trend.RISE
        assert Trend.from_speeds(29, 30) is Trend.FALL

    def test_values_are_signs(self):
        assert int(Trend.RISE) == 1
        assert int(Trend.FALL) == -1

    def test_opposite(self):
        assert Trend.RISE.opposite is Trend.FALL
        assert Trend.FALL.opposite is Trend.RISE


class TestTrendInstance:
    def make(self, **overrides):
        kwargs = dict(
            road_ids=(1, 2, 3),
            prior_rise=np.array([0.5, 0.6, 0.4]),
            edges=((0, 1, 0.8), (1, 2, 0.7)),
            evidence={1: Trend.RISE},
        )
        kwargs.update(overrides)
        return TrendInstance(**kwargs)

    def test_valid(self):
        inst = self.make()
        assert inst.num_roads == 3
        assert inst.index == {1: 0, 2: 1, 3: 2}
        assert inst.evidence_indices() == {0: Trend.RISE}

    def test_adjacency(self):
        adj = self.make().adjacency()
        assert adj[0] == [(1, 0.8)]
        assert sorted(adj[1]) == [(0, 0.8), (2, 0.7)]

    def test_prior_shape_checked(self):
        with pytest.raises(InferenceError):
            self.make(prior_rise=np.array([0.5, 0.5]))

    def test_prior_bounds_checked(self):
        with pytest.raises(InferenceError):
            self.make(prior_rise=np.array([0.0, 0.5, 0.5]))
        with pytest.raises(InferenceError):
            self.make(prior_rise=np.array([1.0, 0.5, 0.5]))

    def test_evidence_road_checked(self):
        with pytest.raises(InferenceError):
            self.make(evidence={99: Trend.RISE})

    def test_edge_bounds_checked(self):
        with pytest.raises(InferenceError):
            self.make(edges=((0, 5, 0.7),))
        with pytest.raises(InferenceError):
            self.make(edges=((0, 1, 1.0),))

    def test_trusted_construction_skips_validation(self):
        """validate=False is the factory fast path — checks are skipped.

        The serving loop builds one instance per interval from parts the
        model already guarantees valid, so the O(roads + edges) check
        would be pure overhead there. Hand-built instances keep the
        default and stay fully checked.
        """
        inst = self.make(edges=((0, 1, 1.0),), validate=False)
        assert inst.num_roads == 3  # out-of-range potential tolerated


class TestTrendPosterior:
    def test_queries(self):
        post = TrendPosterior((1, 2), np.array([0.8, 0.3]))
        assert post.p_rise(1) == pytest.approx(0.8)
        assert post.trend(1) is Trend.RISE
        assert post.trend(2) is Trend.FALL
        assert post.confidence(2) == pytest.approx(0.7)
        assert post.as_dict() == {1: pytest.approx(0.8), 2: pytest.approx(0.3)}

    def test_tie_breaks_to_rise(self):
        post = TrendPosterior((1,), np.array([0.5]))
        assert post.trend(1) is Trend.RISE

    def test_unknown_road(self):
        post = TrendPosterior((1,), np.array([0.5]))
        with pytest.raises(InferenceError):
            post.p_rise(9)

    def test_validation(self):
        with pytest.raises(InferenceError):
            TrendPosterior((1, 2), np.array([0.5]))
        with pytest.raises(InferenceError):
            TrendPosterior((1,), np.array([1.5]))


class TestTrendModel:
    def test_instance_from_dataset(self, small_dataset):
        model = TrendModel(small_dataset.graph, small_dataset.store)
        interval = small_dataset.test_day_intervals()[30]
        seeds = small_dataset.network.road_ids()[:3]
        trends = {r: Trend.RISE for r in seeds}
        inst = model.instance(interval, trends)
        assert inst.num_roads == small_dataset.network.num_segments
        assert inst.evidence == trends
        assert inst.graph is small_dataset.graph
        assert len(inst.edges) == small_dataset.graph.num_edges

    def test_potentials_clipped(self, small_dataset):
        model = TrendModel(small_dataset.graph, small_dataset.store)
        inst = model.instance(small_dataset.test_day_intervals()[0], {})
        for _, _, p in inst.edges:
            assert 0.02 <= p <= 0.98

    def test_priors_from_bucket(self, small_dataset):
        model = TrendModel(small_dataset.graph, small_dataset.store)
        interval = small_dataset.test_day_intervals()[40]
        inst = model.instance(interval, {})
        bucket = small_dataset.grid.bucket_of(interval)
        road = inst.road_ids[7]
        expected = small_dataset.store.rise_prior(road, bucket)
        assert inst.prior_rise[7] == pytest.approx(expected)

    def test_unknown_seed_rejected(self, small_dataset):
        model = TrendModel(small_dataset.graph, small_dataset.store)
        with pytest.raises(InferenceError):
            model.instance(0, {999999: Trend.RISE})

    def test_uniform_instance_for_ablation(self, small_dataset):
        model = TrendModel(small_dataset.graph, small_dataset.store)
        inst = model.uniform_instance(0, {}, agreement=0.7)
        assert all(p == pytest.approx(0.7) for _, _, p in inst.edges)
        assert inst.graph is None  # uniform edges invalidate the mined graph
