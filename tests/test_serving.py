"""Snapshot serving: snapshots, the store, and the publisher."""

import json

import pytest

from repro.core.breaker import BreakerState, CircuitBreaker
from repro.core.clock import ManualClock
from repro.core.config import PipelineConfig
from repro.core.errors import ConfigError, ServingError, SnapshotIntegrityError
from repro.core.pipeline import SpeedEstimationSystem
from repro.core.types import SpeedEstimate, Trend
from repro.crowd.platform import CrowdsourcingPlatform
from repro.crowd.workers import WorkerPool, WorkerPoolParams
from repro.obs.trace import RUNG_ORDER
from repro.serving import (
    BASELINE,
    FRESH,
    SHED,
    STALE,
    UNAVAILABLE,
    AdmissionController,
    EstimateSnapshot,
    EstimateStore,
    RoundProvenance,
    SnapshotPublisher,
    StageTiming,
    StalenessPolicy,
    default_watchdog,
    load_snapshot,
    recover_latest,
    save_snapshot,
    snapshot_path,
)
from repro.speed.uncertainty import SpeedBand, UncertaintyModel


def make_provenance(round_index=4, **overrides):
    payload = dict(
        round_index=round_index,
        seed_budget=8,
        degraded=False,
        substituted=0,
        stages=(
            StageTiming(stage="collect", seconds=12.5, attempts=1, ok=True),
            StageTiming(stage="estimate", seconds=3.25, attempts=2, ok=True),
        ),
        deadline_s=900.0,
        elapsed_s=15.75,
    )
    payload.update(overrides)
    return RoundProvenance(**payload)


def make_snapshot(version=0, interval=3, roads=(1, 2, 3), speed=40.0,
                  substituted=None, degraded=False, provenance=None):
    estimates = {}
    bands = {}
    for road in roads:
        estimates[road] = SpeedEstimate(
            road_id=road,
            interval=interval,
            speed_kmh=speed,
            trend=Trend.RISE,
            trend_probability=0.8,
            is_seed=road == roads[0],
            degraded=False,
        )
        bands[road] = SpeedBand(
            road_id=road,
            interval=interval,
            speed_kmh=speed,
            lower_kmh=speed - 2.0,
            upper_kmh=speed + 2.0,
            std_kmh=1.2,
            confidence=0.9,
        )
    return EstimateSnapshot.build(
        version, interval, estimates, bands,
        substituted=substituted, degraded=degraded, provenance=provenance,
    )


class TestEstimateSnapshot:
    def test_build_verifies(self):
        snapshot = make_snapshot()
        assert snapshot.verify()
        assert snapshot.num_roads == 3
        assert not snapshot.degraded

    def test_substitutions_imply_degraded(self):
        snapshot = make_snapshot(substituted={1: "stale"})
        assert snapshot.degraded
        assert snapshot.substituted[1] == "stale"

    def test_mappings_are_read_only(self):
        snapshot = make_snapshot()
        with pytest.raises(TypeError):
            snapshot.estimates[99] = snapshot.estimates[1]

    def test_empty_snapshot_rejected(self):
        with pytest.raises(ServingError):
            EstimateSnapshot.build(0, 0, {}, {})

    def test_negative_version_rejected(self):
        with pytest.raises(ServingError):
            make_snapshot(version=-1)

    def test_missing_band_rejected(self):
        good = make_snapshot()
        bands = dict(good.bands)
        bands.pop(2)
        with pytest.raises(ServingError, match="lack uncertainty bands"):
            EstimateSnapshot.build(1, 3, dict(good.estimates), bands)

    def test_json_roundtrip_preserves_content(self):
        snapshot = make_snapshot(version=7, substituted={2: "prior"})
        restored = EstimateSnapshot.from_json(snapshot.to_json())
        assert restored.checksum == snapshot.checksum
        assert restored.version == 7
        assert restored.estimates[1] == snapshot.estimates[1]
        assert restored.bands[3] == snapshot.bands[3]
        assert dict(restored.substituted) == {2: "prior"}

    def test_tampered_payload_rejected(self):
        text = make_snapshot().to_json()
        tampered = text.replace("40.0", "80.0")
        assert tampered != text
        with pytest.raises(SnapshotIntegrityError, match="checksum"):
            EstimateSnapshot.from_json(tampered)

    def test_truncated_payload_rejected(self):
        text = make_snapshot().to_json()
        with pytest.raises(SnapshotIntegrityError):
            EstimateSnapshot.from_json(text[: len(text) // 2])

    def test_wrong_format_version_rejected(self):
        payload = json.loads(make_snapshot().to_json())
        payload["body"]["format"] = 999
        with pytest.raises(SnapshotIntegrityError, match="format"):
            EstimateSnapshot.from_json(json.dumps(payload))


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        snapshot = make_snapshot(version=12)
        path = save_snapshot(snapshot, tmp_path)
        assert path == snapshot_path(tmp_path, 12)
        assert load_snapshot(path).checksum == snapshot.checksum

    def test_recover_picks_newest(self, tmp_path):
        for version in (0, 1, 2):
            save_snapshot(make_snapshot(version=version), tmp_path)
        result = recover_latest(tmp_path)
        assert result.snapshot.version == 2
        assert result.scanned == 3
        assert result.corrupt == ()

    def test_recover_skips_corrupt_newest(self, tmp_path):
        save_snapshot(make_snapshot(version=0), tmp_path)
        path = save_snapshot(make_snapshot(version=1), tmp_path)
        path.write_text(path.read_text()[:40] + "#CORRUPT", encoding="utf-8")
        result = recover_latest(tmp_path)
        assert result.snapshot.version == 0
        assert result.corrupt == (path.name,)

    def test_recover_empty_or_missing_dir(self, tmp_path):
        assert recover_latest(tmp_path).snapshot is None
        assert recover_latest(tmp_path / "nope").snapshot is None


class TestStalenessPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"soft_after_s": 0.0},
            {"soft_after_s": 100.0, "hard_after_s": 50.0},
            {"stale_inflation": 0.5},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            StalenessPolicy(**kwargs)


class TestAdmissionController:
    def test_capacity_enforced(self):
        gate = AdmissionController(capacity=2)
        assert gate.try_acquire()
        assert gate.try_acquire()
        assert not gate.try_acquire()
        assert gate.shed_total == 1
        gate.release()
        assert gate.try_acquire()

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigError):
            AdmissionController(capacity=0)


class TestEstimateStore:
    def fresh_store(self, **kwargs):
        clock = ManualClock()
        store = EstimateStore(
            clock=clock,
            staleness=StalenessPolicy(soft_after_s=100.0, hard_after_s=1000.0),
            **kwargs,
        )
        return store, clock

    def test_cold_start_is_unavailable_not_an_error(self):
        store, _ = self.fresh_store()
        served = store.get(1)
        assert served.status == UNAVAILABLE
        assert not served.answered

    def test_fresh_read_matches_snapshot(self):
        store, _ = self.fresh_store()
        assert store.publish(make_snapshot(speed=42.0))
        served = store.get(1)
        assert served.status == FRESH
        assert served.speed_kmh == 42.0
        assert served.lower_kmh == 40.0
        assert served.upper_kmh == 44.0
        assert not served.stale and not served.degraded
        assert served.snapshot_version == 0

    def test_soft_staleness_widens_bands(self):
        store, clock = self.fresh_store()
        store.publish(make_snapshot(speed=42.0))
        clock.advance(500.0)
        served = store.get(1)
        assert served.status == STALE
        assert served.stale and served.degraded
        # 2 km/h margins widened by the default 1.5x inflation.
        assert served.lower_kmh == pytest.approx(39.0)
        assert served.upper_kmh == pytest.approx(45.0)
        assert served.std_kmh == pytest.approx(1.2 * 1.5)
        assert served.speed_kmh == 42.0  # the value itself is unchanged

    def test_hard_staleness_serves_baseline(self, small_dataset):
        store = EstimateStore(
            history=small_dataset.store,
            clock=(clock := ManualClock()),
            staleness=StalenessPolicy(soft_after_s=100.0, hard_after_s=1000.0),
        )
        road = small_dataset.network.road_ids()[0]
        interval = 30
        store.publish(make_snapshot(interval=interval, roads=(road,)))
        clock.advance(5000.0)
        served = store.get(road)
        assert served.status == BASELINE
        assert served.degraded and served.stale
        # Age maps to the interval the clock says it is now.
        elapsed = int(5000.0 // (small_dataset.grid.interval_minutes * 60.0))
        expected_interval = interval + elapsed
        assert served.interval == expected_interval
        assert served.speed_kmh == pytest.approx(
            small_dataset.store.historical_speed(road, expected_interval)
        )
        assert served.lower_kmh < served.speed_kmh < served.upper_kmh

    def test_road_missing_from_snapshot_without_history(self):
        store, _ = self.fresh_store()
        store.publish(make_snapshot(roads=(1, 2)))
        assert store.get(999).status == UNAVAILABLE

    def test_replay_and_stale_version_rejected(self):
        store, _ = self.fresh_store()
        assert store.publish(make_snapshot(version=5))
        assert not store.publish(make_snapshot(version=5))
        assert not store.publish(make_snapshot(version=4))
        assert store.version == 5
        assert store.publish(make_snapshot(version=6))

    def test_corrupted_snapshot_never_installed(self):
        store, _ = self.fresh_store()
        good = make_snapshot(version=0)
        store.publish(good)
        bad = make_snapshot(version=1)
        object.__setattr__(bad, "checksum", "0" * 64)
        assert not bad.verify()
        assert not store.publish(bad)
        assert store.version == 0  # still serving the good one

    def test_overload_sheds_with_typed_response(self):
        store, _ = self.fresh_store(
            admission=AdmissionController(capacity=1)
        )
        store.publish(make_snapshot())
        gate = store.admission
        assert gate.try_acquire()  # saturate from "another reader"
        served = store.get(1)
        assert served.status == SHED
        assert not served.answered
        gate.release()
        assert store.get(1).status == FRESH

    def test_open_breaker_short_circuits_to_baseline(self, small_dataset):
        breaker = CircuitBreaker(failure_threshold=1)
        store = EstimateStore(
            history=small_dataset.store,
            clock=ManualClock(),
            breaker=breaker,
        )
        road = small_dataset.network.road_ids()[0]
        store.publish(make_snapshot(roads=(road,)))
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        served = store.get(road)
        assert served.status == BASELINE
        assert served.answered

    def test_get_many_answers_every_road(self):
        store, _ = self.fresh_store()
        store.publish(make_snapshot(roads=(1, 2, 3)))
        served = store.get_many([1, 2, 99])
        assert served[1].status == FRESH
        assert served[2].status == FRESH
        assert served[99].status == UNAVAILABLE

    def test_query_bbox(self, small_dataset):
        store = EstimateStore(
            network=small_dataset.network, clock=ManualClock()
        )
        roads = tuple(small_dataset.network.road_ids())
        store.publish(make_snapshot(roads=roads))
        box = small_dataset.network.bounding_box()
        served = store.query_bbox(box.min_x, box.min_y, box.max_x, box.max_y)
        assert len(served) == len(roads)
        assert all(s.status == FRESH for s in served.values())
        # A degenerate box away from the network matches nothing.
        assert store.query_bbox(-1e9, -1e9, -1e9 + 1, -1e9 + 1) == {}

    def test_query_bbox_without_network_is_a_config_error(self):
        store, _ = self.fresh_store()
        with pytest.raises(ConfigError):
            store.query_bbox(0, 0, 1, 1)


class TestRoundProvenance:
    def test_dict_round_trip(self):
        provenance = make_provenance()
        restored = RoundProvenance.from_dict(provenance.to_dict())
        assert restored == provenance
        assert restored.stage("collect").seconds == 12.5
        assert restored.stage("nope") is None

    def test_negative_round_index_rejected(self):
        with pytest.raises(ServingError):
            make_provenance(round_index=-1)

    def test_snapshot_json_round_trip_preserves_provenance(self):
        snapshot = make_snapshot(provenance=make_provenance())
        restored = EstimateSnapshot.from_json(snapshot.to_json())
        assert restored.provenance == snapshot.provenance
        assert restored.checksum == snapshot.checksum
        # A provenance-free snapshot restores to None, not a default.
        assert EstimateSnapshot.from_json(
            make_snapshot().to_json()
        ).provenance is None

    def test_checksum_covers_provenance(self):
        text = make_snapshot(provenance=make_provenance(seed_budget=8)).to_json()
        tampered = text.replace('"seed_budget": 8', '"seed_budget": 80')
        assert tampered != text
        with pytest.raises(SnapshotIntegrityError, match="checksum"):
            EstimateSnapshot.from_json(tampered)

    def test_persisted_provenance_survives_recovery(self, tmp_path):
        snapshot = make_snapshot(version=3, provenance=make_provenance())
        save_snapshot(snapshot, tmp_path)
        recovered = recover_latest(tmp_path).snapshot
        assert recovered.provenance == snapshot.provenance


class TestExplain:
    def fresh_store(self, **kwargs):
        clock = ManualClock()
        store = EstimateStore(
            clock=clock,
            staleness=StalenessPolicy(soft_after_s=100.0, hard_after_s=1000.0),
            **kwargs,
        )
        return store, clock

    def assert_complete_chain(self, explanation):
        assert tuple(d.rung for d in explanation.chain) == RUNG_ORDER
        assert all(d.reason for d in explanation.chain)
        taken = [d.rung for d in explanation.chain if d.taken]
        assert taken == [explanation.status]

    def test_fresh_read_explained(self):
        store, _ = self.fresh_store()
        store.publish(make_snapshot(provenance=make_provenance(round_index=4)))
        explanation = store.explain(1)
        assert explanation.status == FRESH
        self.assert_complete_chain(explanation)
        assert "within" in explanation.decision(FRESH).reason
        assert explanation.snapshot_version == 0
        assert explanation.snapshot_age_s == 0.0
        # The provenance chain reaches back into the producing round.
        assert explanation.provenance.round_index == 4
        assert explanation.provenance.stage("collect").ok

    def test_stale_read_explained(self):
        store, clock = self.fresh_store()
        store.publish(make_snapshot())
        clock.advance(500.0)
        explanation = store.explain(1)
        assert explanation.status == STALE
        self.assert_complete_chain(explanation)
        assert "past soft threshold" in explanation.decision(FRESH).reason
        assert "widened" in explanation.decision(STALE).reason

    def test_baseline_read_explained(self, small_dataset):
        store = EstimateStore(
            history=small_dataset.store,
            clock=(clock := ManualClock()),
            staleness=StalenessPolicy(soft_after_s=100.0, hard_after_s=1000.0),
        )
        road = small_dataset.network.road_ids()[0]
        store.publish(make_snapshot(roads=(road,)))
        clock.advance(5000.0)
        explanation = store.explain(road)
        assert explanation.status == BASELINE
        self.assert_complete_chain(explanation)
        assert "past hard threshold" in explanation.decision(FRESH).reason
        assert "historical bucket mean" in explanation.decision(BASELINE).reason

    def test_unavailable_cold_start_explained(self):
        store, _ = self.fresh_store()
        explanation = store.explain(1)
        assert explanation.status == UNAVAILABLE
        self.assert_complete_chain(explanation)
        assert (
            explanation.decision(FRESH).reason
            == "no snapshot has ever been published"
        )
        assert (
            explanation.decision(BASELINE).reason
            == "no history store configured"
        )
        assert "typed refusal" in explanation.decision(UNAVAILABLE).reason
        assert explanation.snapshot_version is None
        assert explanation.provenance is None

    def test_road_absent_from_snapshot_explained(self):
        store, _ = self.fresh_store()
        store.publish(make_snapshot(roads=(1, 2)))
        explanation = store.explain(999)
        assert explanation.status == UNAVAILABLE
        assert "absent from snapshot v0" in explanation.decision(FRESH).reason

    def test_open_breaker_explained_without_mutating_it(self, small_dataset):
        breaker = CircuitBreaker(failure_threshold=1)
        store = EstimateStore(
            history=small_dataset.store,
            clock=ManualClock(),
            breaker=breaker,
        )
        road = small_dataset.network.road_ids()[0]
        store.publish(make_snapshot(roads=(road,)))
        breaker.record_failure()
        explanation = store.explain(road)
        assert explanation.status == BASELINE
        assert explanation.breaker_open
        assert "breaker open" in explanation.decision(FRESH).reason
        self.assert_complete_chain(explanation)
        # Diagnostics never consume the breaker's half-open probe.
        assert breaker.state is BreakerState.OPEN

    def test_explain_bypasses_admission(self):
        store, _ = self.fresh_store(admission=AdmissionController(capacity=1))
        store.publish(make_snapshot())
        assert store.admission.try_acquire()  # saturate the gate
        explanation = store.explain(1)
        assert explanation.status == FRESH  # not shed
        assert "bypasses admission" in explanation.decision(SHED).reason

    def test_to_dict_is_json_serialisable(self):
        store, _ = self.fresh_store()
        store.publish(make_snapshot(provenance=make_provenance()))
        doc = json.loads(json.dumps(store.explain(1).to_dict()))
        assert doc["status"] == FRESH
        assert [d["rung"] for d in doc["chain"]] == list(RUNG_ORDER)
        assert doc["provenance"]["seed_budget"] == 8


class TestBreakerExtraction:
    """Satellite: the breaker is a core utility with a compat re-export."""

    def test_crowd_health_reexports_core_breaker(self):
        from repro.core import breaker as core_breaker
        from repro.crowd import health

        assert health.CircuitBreaker is core_breaker.CircuitBreaker
        assert health.BreakerState is core_breaker.BreakerState

    def test_core_package_exports(self):
        import repro.core

        assert repro.core.CircuitBreaker is CircuitBreaker
        assert repro.core.BreakerState is BreakerState


@pytest.fixture(scope="module")
def served_system(small_dataset):
    system = SpeedEstimationSystem.from_parts(
        small_dataset.network,
        small_dataset.store,
        small_dataset.graph,
        PipelineConfig(),
    )
    system.select_seeds(8)
    return system


@pytest.fixture()
def platform():
    pool = WorkerPool.sample(
        60, WorkerPoolParams(noise_std_frac=0.10), seed=7
    )
    return CrowdsourcingPlatform(pool, workers_per_task=3)


class TestSnapshotPublisher:
    def build(self, system, small_dataset, tmp_path, clock=None):
        clock = clock or ManualClock()
        interval_s = small_dataset.grid.interval_minutes * 60.0
        store = EstimateStore(
            history=small_dataset.store,
            network=small_dataset.network,
            clock=clock,
        )
        publisher = SnapshotPublisher(
            system,
            store,
            UncertaintyModel(system.estimator, small_dataset.store),
            watchdog=default_watchdog(interval_s, clock=clock),
            clock=clock,
            snapshot_dir=tmp_path,
        )
        return publisher, store, clock

    def test_round_publishes_and_persists(
        self, served_system, small_dataset, platform, tmp_path
    ):
        publisher, store, _ = self.build(served_system, small_dataset, tmp_path)
        interval = small_dataset.test_day_intervals()[0]
        report = publisher.publish_round(
            interval, small_dataset.test, platform
        )
        assert report.published
        assert report.outcome == "published"
        assert report.version == 0
        assert report.num_roads == small_dataset.network.num_segments
        assert store.version == 0
        assert snapshot_path(tmp_path, 0).exists()
        served = store.get(small_dataset.network.road_ids()[0])
        assert served.status == FRESH
        # The served numbers are the snapshot's numbers.
        snapshot = store.latest()
        assert served.speed_kmh == snapshot.estimates[served.road_id].speed_kmh

    def test_published_snapshot_carries_round_provenance(
        self, served_system, small_dataset, platform, tmp_path
    ):
        publisher, store, _ = self.build(served_system, small_dataset, tmp_path)
        interval = small_dataset.test_day_intervals()[0]
        publisher.publish_round(interval, small_dataset.test, platform)
        provenance = store.latest().provenance
        assert provenance is not None
        assert provenance.round_index == 0
        assert provenance.seed_budget == len(served_system.seeds)
        assert not provenance.degraded and provenance.substituted == 0
        assert provenance.stages, "supervised stage timings missing"
        assert all(
            timing.ok and timing.attempts >= 1 and timing.seconds >= 0.0
            for timing in provenance.stages
        )
        assert provenance.deadline_s is not None
        assert provenance.elapsed_s >= 0.0
        # The persisted copy carries the same provenance block.
        persisted = load_snapshot(snapshot_path(tmp_path, 0))
        assert persisted.provenance == provenance

    def test_versions_increment_across_rounds(
        self, served_system, small_dataset, platform, tmp_path
    ):
        publisher, store, clock = self.build(
            served_system, small_dataset, tmp_path
        )
        intervals = small_dataset.test_day_intervals()[:3]
        for i, interval in enumerate(intervals):
            report = publisher.publish_round(
                interval, small_dataset.test, platform, crowd_seed=i
            )
            assert report.version == i
            clock.advance(60.0)
        assert store.version == 2

    def test_recover_restores_last_known_good(
        self, served_system, small_dataset, platform, tmp_path
    ):
        publisher, _, _ = self.build(served_system, small_dataset, tmp_path)
        interval = small_dataset.test_day_intervals()[0]
        publisher.publish_round(interval, small_dataset.test, platform)

        # "Restart": a fresh publisher + store over the same directory.
        restarted, store, _ = self.build(
            served_system, small_dataset, tmp_path
        )
        result = restarted.recover()
        assert result.snapshot is not None
        assert store.version == 0
        assert restarted.next_version == 1
        road = small_dataset.network.road_ids()[0]
        assert store.get(road).status == FRESH

    def test_recover_without_directory_is_a_noop(
        self, served_system, small_dataset
    ):
        clock = ManualClock()
        store = EstimateStore(clock=clock)
        publisher = SnapshotPublisher(
            served_system,
            store,
            UncertaintyModel(served_system.estimator, small_dataset.store),
            clock=clock,
        )
        assert publisher.recover().snapshot is None
        assert store.latest() is None


class TestSnapshotRowReuse:
    """Value-keyed body-row reuse across builds: same checksums, full
    integrity, reuse counted."""

    def _parts(self, interval, roads, speed=40.0):
        estimates, bands = {}, {}
        for road in roads:
            estimates[road] = SpeedEstimate(
                road_id=road, interval=interval, speed_kmh=speed,
                trend=Trend.RISE, trend_probability=0.8,
                is_seed=False, degraded=False,
            )
            bands[road] = SpeedBand(
                road_id=road, interval=interval, speed_kmh=speed,
                lower_kmh=speed - 2.0, upper_kmh=speed + 2.0,
                std_kmh=1.2, confidence=0.9,
            )
        return estimates, bands

    def test_cached_build_checksum_matches_cache_free(self):
        from repro.serving import SnapshotRowCache

        cache = SnapshotRowCache()
        est, bands = self._parts(3, (1, 2, 3))
        with_cache = EstimateSnapshot.build(0, 3, est, bands, row_cache=cache)
        without = EstimateSnapshot.build(0, 3, est, bands)
        assert with_cache.checksum == without.checksum
        assert with_cache.verify()

    def test_unchanged_rows_are_reused_changed_are_not(self):
        from repro.serving import SnapshotRowCache

        cache = SnapshotRowCache()
        est, bands = self._parts(3, (1, 2, 3))
        EstimateSnapshot.build(0, 3, est, bands, row_cache=cache)
        assert cache.take_reused() == 0  # drained by build's metric path

        # Next interval: road 2 moves, roads 1 and 3 do not.
        est2, bands2 = self._parts(4, (1, 2, 3))
        est2[2] = est2[2].replace(speed_kmh=55.0)
        bands2[2] = SpeedBand(
            road_id=2, interval=4, speed_kmh=55.0, lower_kmh=53.0,
            upper_kmh=57.0, std_kmh=1.2, confidence=0.9,
        )
        snap = EstimateSnapshot.build(1, 4, est2, bands2, row_cache=cache)
        fresh = EstimateSnapshot.build(1, 4, est2, bands2)
        assert snap.checksum == fresh.checksum
        assert snap.verify()
        assert EstimateSnapshot.from_json(snap.to_json()).checksum == snap.checksum

    def test_reuse_metric_counts_unchanged_roads(self):
        from repro.obs import FlightRecorder, set_recorder
        from repro.serving import SnapshotRowCache

        rec = FlightRecorder()
        previous = set_recorder(rec)
        try:
            cache = SnapshotRowCache()
            est, bands = self._parts(3, (1, 2, 3))
            EstimateSnapshot.build(0, 3, est, bands, row_cache=cache)
            est2, bands2 = self._parts(4, (1, 2, 3))
            EstimateSnapshot.build(1, 4, est2, bands2, row_cache=cache)
            counter = rec.registry.counter("serving.snapshot_rows_reused")
            assert counter.value == 3  # round 1 reused every road's row
        finally:
            set_recorder(previous)

    def test_publisher_rounds_reuse_rows(
        self, served_system, small_dataset, platform, tmp_path
    ):
        from repro.obs import FlightRecorder, set_recorder

        rec = FlightRecorder()
        previous = set_recorder(rec)
        try:
            clock = ManualClock()
            store = EstimateStore(
                history=small_dataset.store,
                network=small_dataset.network,
                clock=clock,
            )
            publisher = SnapshotPublisher(
                served_system,
                store,
                UncertaintyModel(served_system.estimator, small_dataset.store),
                watchdog=default_watchdog(900.0, clock=clock),
                clock=clock,
            )
            interval = small_dataset.test_day_intervals()[0]
            # Identical round twice: every road's row reuses on round 2.
            for _ in range(2):
                report = publisher.publish_round(
                    interval, small_dataset.test, platform, crowd_seed=0
                )
                assert report.published
            counter = rec.registry.counter("serving.snapshot_rows_reused")
            assert counter.value == small_dataset.network.num_segments
            assert store.latest().verify()
        finally:
            set_recorder(previous)
