"""Deadline supervision (repro.serving.watchdog)."""

import pytest

from repro.core.clock import ManualClock
from repro.core.errors import ConfigError
from repro.serving.watchdog import (
    RoundDeadlineExceeded,
    StageFailed,
    StagePolicy,
    StageTimeout,
    Watchdog,
)


class TestStagePolicy:
    def test_defaults_are_valid(self):
        StagePolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout_s": 0.0},
            {"timeout_s": -1.0},
            {"max_attempts": 0},
            {"backoff_base_s": -0.1},
            {"backoff_max_s": -0.1},
            {"backoff_factor": 0.5},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            StagePolicy(**kwargs)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = StagePolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.5
        )
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(3) == pytest.approx(0.4)
        assert policy.backoff_s(4) == pytest.approx(0.5)  # capped
        assert policy.backoff_s(10) == pytest.approx(0.5)


class TestStageSupervision:
    def test_success_passes_result_through(self):
        watchdog = Watchdog(clock=ManualClock())
        watchdog.begin_round()
        assert watchdog.run("stage", lambda: 42) == 42

    def test_exception_retried_then_succeeds(self):
        clock = ManualClock()
        watchdog = Watchdog(
            clock=clock,
            policies={
                "s": StagePolicy(
                    max_attempts=3, backoff_base_s=1.0, backoff_max_s=10.0
                )
            },
        )
        watchdog.begin_round()
        calls = []

        def flaky():
            calls.append(clock.monotonic())
            if len(calls) < 3:
                raise RuntimeError("transient")
            return "ok"

        assert watchdog.run("s", flaky) == "ok"
        assert len(calls) == 3
        # The backoff sleeps happened on the injected clock: 1s then 2s.
        assert calls[1] - calls[0] == pytest.approx(1.0)
        assert calls[2] - calls[1] == pytest.approx(2.0)

    def test_exhausted_retries_raise_stage_failed(self):
        watchdog = Watchdog(
            clock=ManualClock(),
            policies={"s": StagePolicy(max_attempts=2, backoff_base_s=0.0)},
        )
        watchdog.begin_round()

        def always_fails():
            raise ValueError("broken dependency")

        with pytest.raises(StageFailed, match="broken dependency"):
            watchdog.run("s", always_fails)

    def test_overrun_counts_as_hang_and_discards_result(self):
        clock = ManualClock()
        watchdog = Watchdog(
            clock=clock,
            policies={"s": StagePolicy(timeout_s=10.0, max_attempts=1)},
        )
        watchdog.begin_round()

        def hangs():
            clock.advance(25.0)
            return "too late to trust"

        with pytest.raises(StageTimeout):
            watchdog.run("s", hangs)

    def test_hang_retried_within_budget(self):
        clock = ManualClock()
        watchdog = Watchdog(
            clock=clock,
            policies={
                "s": StagePolicy(
                    timeout_s=10.0, max_attempts=2, backoff_base_s=0.0
                )
            },
        )
        watchdog.begin_round()
        attempts = []

        def hangs_once():
            attempts.append(None)
            if len(attempts) == 1:
                clock.advance(25.0)
            return "fine"

        assert watchdog.run("s", hangs_once) == "fine"
        assert len(attempts) == 2


class TestRoundDeadline:
    def test_invalid_deadline_rejected(self):
        with pytest.raises(ConfigError):
            Watchdog(round_deadline_s=0.0)

    def test_no_deadline_means_unbounded(self):
        clock = ManualClock()
        watchdog = Watchdog(clock=clock, round_deadline_s=None)
        watchdog.begin_round()
        clock.advance(1e9)
        assert watchdog.remaining_s() is None
        watchdog.check_deadline()  # never raises

    def test_elapsed_and_remaining(self):
        clock = ManualClock()
        watchdog = Watchdog(clock=clock, round_deadline_s=100.0)
        watchdog.begin_round()
        clock.advance(30.0)
        assert watchdog.round_elapsed_s() == pytest.approx(30.0)
        assert watchdog.remaining_s() == pytest.approx(70.0)

    def test_blown_deadline_cancels_round(self):
        clock = ManualClock()
        watchdog = Watchdog(
            clock=clock,
            round_deadline_s=100.0,
            policies={"s": StagePolicy(timeout_s=1000.0, max_attempts=5)},
        )
        watchdog.begin_round()
        clock.advance(150.0)
        with pytest.raises(RoundDeadlineExceeded):
            watchdog.run("s", lambda: "never runs")

    def test_deadline_checked_between_retries(self):
        clock = ManualClock()
        watchdog = Watchdog(
            clock=clock,
            round_deadline_s=100.0,
            policies={
                "s": StagePolicy(
                    timeout_s=40.0, max_attempts=10, backoff_base_s=0.0
                )
            },
        )
        watchdog.begin_round()
        attempts = []

        def hangs_forever():
            attempts.append(None)
            clock.advance(60.0)
            return "late"

        # Attempt 1 hangs 60s (timeout); attempt 2 starts at 60s, hangs to
        # 120s > 100s deadline -> the next deadline check cancels the round
        # instead of burning the remaining 8 attempts.
        with pytest.raises(RoundDeadlineExceeded):
            watchdog.run("s", hangs_forever)
        assert len(attempts) == 2

    def test_begin_round_rearms(self):
        clock = ManualClock()
        watchdog = Watchdog(clock=clock, round_deadline_s=100.0)
        watchdog.begin_round()
        clock.advance(150.0)
        with pytest.raises(RoundDeadlineExceeded):
            watchdog.check_deadline()
        watchdog.begin_round()
        watchdog.check_deadline()  # fresh budget
        assert watchdog.remaining_s() == pytest.approx(100.0)
