"""Unit tests for dataset assembly and interval selectors."""

import numpy as np
import pytest

from repro.core.errors import DataError
from repro.datasets.splits import (
    hourly_interval_groups,
    is_rush_hour,
    off_peak_intervals,
    rush_hour_intervals,
)
from repro.datasets.synthetic import (
    build_dataset,
    metropolitan_dataset,
    scaled_dataset,
)


class TestBuildDataset:
    def test_fields_consistent(self, small_dataset):
        assert small_dataset.history.intervals.stop == (
            small_dataset.test.intervals.start
        )
        assert small_dataset.store.num_training_intervals == len(
            small_dataset.history.intervals
        )
        assert set(small_dataset.graph.road_ids) == set(
            small_dataset.network.road_ids()
        )

    def test_test_days_unseen(self, small_dataset):
        """History and test fields differ (different RNG streams)."""
        hist_day = small_dataset.history.matrix[:96]
        test_day = small_dataset.test.matrix[:96]
        assert not np.allclose(hist_day, test_day)

    def test_describe_keys(self, small_dataset):
        info = small_dataset.describe()
        assert info["roads"] == small_dataset.network.num_segments
        assert info["history_days"] == 7
        assert "correlation_edges" in info

    def test_test_day_intervals(self, small_dataset):
        intervals = small_dataset.test_day_intervals()
        assert len(intervals) == 96
        assert intervals[0] == 7 * 96
        strided = small_dataset.test_day_intervals(stride=4)
        assert len(strided) == 24

    def test_bad_day_offset(self, small_dataset):
        with pytest.raises(DataError):
            small_dataset.test_day_intervals(day_offset=5)

    def test_validation(self, small_network):
        with pytest.raises(DataError):
            build_dataset("x", small_network, history_days=0)

    def test_deterministic(self, small_network):
        a = build_dataset("a", small_network, history_days=2, seed=3)
        b = build_dataset("b", small_network, history_days=2, seed=3)
        assert np.array_equal(a.history.matrix, b.history.matrix)
        assert np.array_equal(a.test.matrix, b.test.matrix)

    def test_scaled_dataset_cached(self):
        a = scaled_dataset(60, history_days=2)
        b = scaled_dataset(60, history_days=2)
        assert a is b
        assert a.network.num_segments >= 60

    def test_metropolitan_dataset_cached_and_sized(self):
        # Smallest metro (one 12x12 district) keeps tier-1 fast; the
        # full 50k+ configuration runs in the F8 benchmark instead.
        a = metropolitan_dataset(528, history_days=2)
        b = metropolitan_dataset(528, history_days=2)
        assert a is b
        assert a.network.num_segments >= 528
        assert a.history.matrix.shape[1] == a.network.num_segments


class TestSplits:
    def test_is_rush_hour(self):
        assert is_rush_hour(8.0)
        assert is_rush_hour(18.5)
        assert not is_rush_hour(12.0)
        assert not is_rush_hour(3.0)

    def test_rush_and_offpeak_partition_day(self, small_dataset):
        rush = rush_hour_intervals(small_dataset)
        off = off_peak_intervals(small_dataset)
        assert not set(rush) & set(off)
        assert sorted(rush + off) == small_dataset.test_day_intervals()

    def test_rush_duration(self, small_dataset):
        rush = rush_hour_intervals(small_dataset)
        # 6 rush hours at 4 intervals/hour.
        assert len(rush) == 24

    def test_hourly_groups(self, small_dataset):
        groups = hourly_interval_groups(small_dataset)
        assert set(groups) == set(range(24))
        assert all(len(v) == 4 for v in groups.values())
