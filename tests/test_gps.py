"""Unit tests for the probe-data substrate: trips, traces, matching, extraction."""

import numpy as np
import pytest

from repro.core.errors import DataError
from repro.gps.map_matching import HmmMatcher, NearestMatcher
from repro.gps.speed_extraction import (
    ProbeSample,
    ProbeSpeedTable,
    aggregate_samples,
    extract_probe_speeds,
    extract_samples,
)
from repro.gps.traces import GpsPoint, GpsTrace, TraceGenerator
from repro.gps.trips import TripPlan, generate_trips, sample_departure_hour
from repro.history.timebuckets import TimeGrid
from repro.roadnet.geometry import Point
from repro.traffic.simulator import TrafficSimulator


@pytest.fixture(scope="module")
def probe_world(small_network):
    grid = TimeGrid(15)
    sim = TrafficSimulator(small_network, grid)
    field, _ = sim.simulate(0, 1, seed=5)
    trips = generate_trips(small_network, 30, day=0, seed=11)
    generator = TraceGenerator(small_network, field, grid, sample_interval_s=20.0)
    traces = generator.emit_all(trips, seed=13)
    return small_network, grid, field, trips, generator, traces


class TestTrips:
    def test_count_and_determinism(self, small_network):
        a = generate_trips(small_network, 10, day=0, seed=3)
        b = generate_trips(small_network, 10, day=0, seed=3)
        assert len(a) == 10
        assert [t.route for t in a] == [t.route for t in b]

    def test_routes_are_connected(self, probe_world):
        net, _, _, trips, _, _ = probe_world
        for trip in trips:
            node = trip.origin_node
            for road in trip.route:
                seg = net.segment(road)
                assert seg.start_node == node
                node = seg.end_node
            assert node == trip.destination_node

    def test_departures_on_requested_day(self, small_network):
        trips = generate_trips(small_network, 15, day=2, seed=1)
        for trip in trips:
            assert 2 * 86400 <= trip.departure_s < 3 * 86400

    def test_min_route_length(self, small_network):
        trips = generate_trips(small_network, 10, day=0, seed=1, min_route_roads=4)
        assert all(len(t.route) >= 4 for t in trips)

    def test_validation(self, small_network):
        with pytest.raises(DataError):
            generate_trips(small_network, 0, day=0, seed=1)
        with pytest.raises(DataError):
            generate_trips(small_network, 5, day=-1, seed=1)
        with pytest.raises(DataError):
            TripPlan(0, 0, 1, departure_s=0.0, route=())

    def test_departure_hour_distribution(self):
        rng = np.random.default_rng(0)
        hours = [sample_departure_hour(rng) for _ in range(3000)]
        assert all(0 <= h < 24 for h in hours)
        rush = sum(1 for h in hours if 7 <= h < 9)
        night = sum(1 for h in hours if 2 <= h < 4)
        assert rush > 3 * night


class TestTraces:
    def test_timestamps_increase(self, probe_world):
        *_, traces = probe_world
        for trace in traces:
            times = [p.timestamp_s for p in trace.points]
            assert all(b > a for a, b in zip(times, times[1:]))

    def test_sampling_interval(self, probe_world):
        *_, traces = probe_world
        trace = max(traces, key=lambda t: len(t.points))
        gaps = [
            b.timestamp_s - a.timestamp_s
            for a, b in zip(trace.points, trace.points[1:])
        ]
        assert all(g == pytest.approx(20.0) for g in gaps)

    def test_noise_bounded(self, small_network):
        """With zero noise, every fix lies exactly on the route."""
        grid = TimeGrid(15)
        field, _ = TrafficSimulator(small_network, grid).simulate(0, 1, seed=5)
        trips = generate_trips(small_network, 5, day=0, seed=2)
        clean = TraceGenerator(
            small_network, field, grid, noise_std_m=0.0
        )
        for trip in trips:
            trace = clean.emit(trip, np.random.default_rng(1))
            for point in trace.points:
                best = min(
                    point.location.distance_to(
                        small_network.segment_midpoint(r)
                    )
                    for r in trip.route
                )
                # Fix lies on one of the route's segments (within half a block).
                assert best < 400

    def test_drive_times_respect_speeds(self, probe_world):
        net, grid, field, trips, generator, _ = probe_world
        trip = trips[0]
        visits, arrival = generator.drive(trip)
        assert arrival > trip.departure_s
        assert [v.road_id for v in visits] == list(trip.route)
        for visit in visits:
            assert visit.exit_s > visit.enter_s

    def test_monotonic_trace_validation(self):
        with pytest.raises(DataError):
            GpsTrace(0, (GpsPoint(0, 10.0, Point(0, 0)), GpsPoint(0, 10.0, Point(1, 1))))

    def test_generator_validation(self, probe_world):
        net, grid, field, *_ = probe_world
        with pytest.raises(DataError):
            TraceGenerator(net, field, grid, sample_interval_s=0)
        with pytest.raises(DataError):
            TraceGenerator(net, field, grid, noise_std_m=-1)


class TestMapMatching:
    def test_nearest_matches_most_points(self, probe_world):
        net, *_, traces = probe_world
        matcher = NearestMatcher(net)
        rates = [matcher.match(t).match_rate for t in traces]
        assert np.mean(rates) > 0.95

    def test_hmm_matches_most_points(self, probe_world):
        net, *_, traces = probe_world
        matcher = HmmMatcher(net)
        rates = [matcher.match(t).match_rate for t in traces]
        assert np.mean(rates) > 0.95

    def test_hmm_at_least_as_consistent_as_nearest(self, probe_world):
        """HMM should produce no more road switches than nearest matching."""
        net, *_, traces = probe_world

        def switches(matched):
            roads = [p.road_id for p in matched.points if p.road_id is not None]
            return sum(1 for a, b in zip(roads, roads[1:]) if a != b)

        nearest = NearestMatcher(net)
        hmm = HmmMatcher(net)
        total_nearest = sum(switches(nearest.match(t)) for t in traces)
        total_hmm = sum(switches(hmm.match(t)) for t in traces)
        assert total_hmm <= total_nearest

    def test_hmm_recovers_true_route_roads(self, small_network):
        """With zero GPS noise the HMM recovers route roads (or twins)."""
        grid = TimeGrid(15)
        field, _ = TrafficSimulator(small_network, grid).simulate(0, 1, seed=5)
        trips = generate_trips(small_network, 5, day=0, seed=8)
        generator = TraceGenerator(small_network, field, grid, noise_std_m=0.0)
        matcher = HmmMatcher(small_network)
        for trip in trips:
            trace = generator.emit(trip, np.random.default_rng(2))
            matched = matcher.match(trace)
            allowed = set()
            for road in trip.route:
                allowed.add(road)
                seg = small_network.segment(road)
                for twin in small_network.outgoing(seg.end_node):
                    if twin.end_node == seg.start_node:
                        allowed.add(twin.road_id)
            hits = [
                p.road_id in allowed
                for p in matched.points
                if p.road_id is not None
            ]
            assert np.mean(hits) > 0.85

    def test_unmatchable_points_are_none(self, probe_world):
        net, *_ = probe_world
        matcher = NearestMatcher(net, search_radius_m=50.0)
        lost = GpsTrace(
            0,
            (
                GpsPoint(0, 0.0, Point(-9999, -9999)),
                GpsPoint(0, 30.0, Point(-9999, -9950)),
            ),
        )
        matched = matcher.match(lost)
        assert matched.match_rate == 0.0


class TestSpeedExtraction:
    def test_extracted_speeds_near_truth(self, probe_world):
        net, grid, field, _, _, traces = probe_world
        matcher = HmmMatcher(net)
        matched = [matcher.match(t) for t in traces]
        table = extract_probe_speeds(net, matched, grid)
        assert table.num_entries > 0
        errors = []
        for (road, interval), speed in table.items():
            if interval in field.intervals:
                errors.append(abs(speed - field.speed(road, interval)))
        # Probe speeds track ground truth to within a few km/h on average.
        assert np.mean(errors) < 8.0

    def test_coverage_is_sparse(self, probe_world):
        net, grid, field, _, _, traces = probe_world
        matcher = NearestMatcher(net)
        table = extract_probe_speeds(net, [matcher.match(t) for t in traces], grid)
        assert 0.0 < table.coverage(net.num_segments, field.intervals) < 0.2

    def test_implausible_speeds_dropped(self, small_network, grid15):
        from repro.gps.map_matching import MatchedPoint, MatchedTrace

        # Two fixes on the same road implying 400 km/h.
        trace = MatchedTrace(
            0,
            (
                MatchedPoint(0.0, 0, 5.0, 0.0),
                MatchedPoint(10.0, 0, 5.0, 1.0),  # 400m in 10s on a 400m road
            ),
        )
        # 400m in 10s = 144 km/h -> above default 150? No: 144 < 150, kept.
        samples = extract_samples(small_network, trace, grid15)
        assert len(samples) == 1
        samples = extract_samples(
            small_network, trace, grid15, max_speed_kmh=100.0
        )
        assert samples == []

    def test_aggregation_trims_outliers(self):
        samples = [ProbeSample(1, 0, 30.0)] * 8 + [ProbeSample(1, 0, 90.0)]
        table = aggregate_samples(samples, trim_fraction=0.2)
        assert table.speed(1, 0) == pytest.approx(30.0)
        assert table.count(1, 0) == 9

    def test_aggregation_validation(self):
        with pytest.raises(DataError):
            aggregate_samples([], trim_fraction=0.6)

    def test_table_queries(self):
        table = ProbeSpeedTable({(1, 0): 30.0, (2, 0): 40.0, (1, 1): 35.0},
                                {(1, 0): 3, (2, 0): 1, (1, 1): 2})
        assert table.observed_roads(0) == [1, 2]
        assert table.speed(9, 9) is None
        assert table.count(1, 0) == 3
        with pytest.raises(DataError):
            table.coverage(0, range(0, 10))

    def test_table_key_mismatch_rejected(self):
        with pytest.raises(DataError):
            ProbeSpeedTable({(1, 0): 30.0}, {})
