"""Tests for repro.obs: registry, spans, recorder, exporters, report."""

import json

import pytest

from repro.core.errors import ConfigError, DataError
from repro.obs import (
    DEFAULT_BUCKETS,
    FlightRecorder,
    MetricsRegistry,
    NullRecorder,
    SpanTracer,
    aggregate_spans,
    configure_from_env,
    get_recorder,
    load_events,
    recording,
    render_report,
    set_recorder,
    to_json,
    to_prometheus_text,
    verify_recording,
)
from repro.obs.recorder import OBS_ENV_VAR
from repro.obs.report import summarize_rounds


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc()
        reg.counter("a.b").inc(2.5)
        assert reg.counter("a.b").value == 3.5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.counter("a").inc(-1)

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("g")
        gauge.set(5)
        gauge.dec(2)
        gauge.inc(0.5)
        assert gauge.value == 3.5

    def test_labeled_series_are_isolated(self):
        reg = MetricsRegistry()
        reg.counter("crowd.tasks", status="answered").inc(7)
        reg.counter("crowd.tasks", status="dropped").inc(2)
        assert reg.counter("crowd.tasks", status="answered").value == 7
        assert reg.counter("crowd.tasks", status="dropped").value == 2
        # Label order must not matter for series identity.
        reg.counter("x", a="1", b="2").inc()
        assert reg.counter("x", b="2", a="1").value == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ConfigError, match="counter"):
            reg.gauge("m")

    def test_histogram_bucket_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ConfigError, match="buckets"):
            reg.histogram("h", buckets=(1.0, 3.0))
        # Re-registering without explicit buckets reuses the family's.
        assert reg.histogram("h").bounds == (1.0, 2.0)

    def test_invalid_metric_name_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.counter("9starts.with.digit")

    def test_histogram_bucket_edges(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=(1.0, 2.0, 5.0))
        # An observation exactly on a bound lands in that bound's bucket
        # (Prometheus "le" semantics: bucket counts values <= bound).
        for value in (0.5, 1.0, 1.5, 2.0, 4.9, 5.0, 5.1):
            hist.observe(value)
        assert hist.bucket_counts == [2, 2, 2, 1]
        assert hist.cumulative_counts() == [2, 4, 6, 7]
        assert hist.count == 7
        assert hist.sum == pytest.approx(20.0)
        assert hist.mean == pytest.approx(20.0 / 7)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ConfigError):
            MetricsRegistry().histogram("h", buckets=())
        with pytest.raises(ConfigError):
            MetricsRegistry().histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ConfigError):
            MetricsRegistry().histogram("h", buckets=(1.0, 1.0))

    def test_default_buckets_used_when_unspecified(self):
        reg = MetricsRegistry()
        assert reg.histogram("h").bounds == DEFAULT_BUCKETS

    def test_scalar_totals_key_format(self):
        reg = MetricsRegistry()
        reg.counter("plain").inc(3)
        reg.counter("tagged", b="2", a="1").inc(4)
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        totals = reg.scalar_totals()
        assert totals["plain"] == 3
        assert totals["tagged{a=1,b=2}"] == 4  # canonical label order
        assert totals["lat"] == 1  # histograms report their count

    def test_snapshot_is_json_serialisable(self):
        reg = MetricsRegistry()
        reg.counter("c", k="v").inc()
        reg.gauge("g").set(2)
        reg.histogram("h", buckets=(1.0,)).observe(3.0)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["c"]["kind"] == "counter"
        assert snap["c"]["series"][0]["labels"] == {"k": "v"}
        assert snap["h"]["series"][0]["buckets"]["+Inf"] == 1


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_nested_span_parentage(self):
        tracer = SpanTracer()
        with tracer.span("outer") as outer:
            assert tracer.depth == 1
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                with tracer.span("leaf") as leaf:
                    assert leaf.parent_id == inner.span_id
        assert outer.parent_id is None
        finished = tracer.drain()
        assert [s.name for s in finished] == ["leaf", "inner", "outer"]
        assert all(s.duration_s is not None for s in finished)
        assert tracer.depth == 0

    def test_span_attrs_and_set(self):
        tracer = SpanTracer()
        with tracer.span("work", roads=10) as span:
            span.set(iterations=3)
        event = tracer.drain()[0].to_event()
        assert event["type"] == "span"
        assert event["attrs"] == {"roads": 10, "iterations": 3}
        assert event["dur_s"] >= 0

    def test_exception_unwinding_marks_error(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        span = tracer.drain()[0]
        assert span.attrs["error"] is True
        assert tracer.depth == 0

    def test_finished_buffer_is_bounded(self):
        tracer = SpanTracer(max_finished=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.drain()) == 4
        assert tracer.total_finished == 10

    def test_aggregate_spans(self):
        tracer = SpanTracer()
        for _ in range(3):
            with tracer.span("stage.a"):
                pass
        with tracer.span("stage.b"):
            pass
        stages = aggregate_spans(tracer.drain())
        assert stages["stage.a"]["count"] == 3
        assert stages["stage.b"]["count"] == 1
        assert stages["stage.a"]["max_s"] <= stages["stage.a"]["total_s"]


# ----------------------------------------------------------------------
# Recorders
# ----------------------------------------------------------------------
class TestNullRecorder:
    def test_every_hook_is_a_noop(self):
        rec = NullRecorder()
        rec.count("a", 2, label="x")
        rec.gauge("b", 1.5)
        rec.observe("c", 0.1, buckets=(1.0,), label="y")
        rec.event("anything", detail=1)
        rec.round_begin(5)
        rec.round_end(5, answered=3)
        with rec.span("s", k="v") as span:
            span.set(more="attrs")
        assert rec.enabled is False
        # The same span sentinel is reused — no per-call allocation.
        assert rec.span("a") is rec.span("b")

    def test_default_recorder_is_null(self):
        assert isinstance(get_recorder(), NullRecorder)


class TestFlightRecorder:
    def test_metric_hooks_feed_registry(self):
        rec = FlightRecorder()
        rec.count("c", 2, kind="x")
        rec.gauge("g", 7)
        rec.observe("h", 0.5)
        assert rec.registry.counter("c", kind="x").value == 2
        assert rec.registry.gauge("g").value == 7
        assert rec.registry.histogram("h").count == 1

    def test_span_records_histogram(self):
        rec = FlightRecorder()
        with rec.span("trend.infer"):
            pass
        hist = rec.registry.histogram("span.seconds", span="trend.infer")
        assert hist.count == 1

    def test_round_snapshot_drains_spans(self):
        rec = FlightRecorder()
        rec.round_begin(10)
        with rec.span("crowd.round"):
            pass
        rec.count("crowd.answers", 5)
        rec.round_end(10, answered=5, degraded=False)
        (snapshot,) = rec.rounds
        assert snapshot["round"] == 0
        assert snapshot["interval"] == 10
        assert snapshot["wall_s"] > 0
        assert snapshot["stages"]["crowd.round"]["count"] == 1
        assert snapshot["counters"]["crowd.answers"] == 5
        assert snapshot["fields"]["answered"] == 5
        # The next round's drain must not see this round's spans again.
        rec.round_end(11)
        assert rec.rounds[1]["stages"] == {}

    def test_ring_is_bounded(self):
        rec = FlightRecorder(ring_size=2)
        for i in range(5):
            rec.round_end(i)
        assert [r["round"] for r in rec.rounds] == [3, 4]

    def test_rejects_bad_ring_size(self):
        with pytest.raises(ValueError):
            FlightRecorder(ring_size=0)

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with FlightRecorder(path=path) as rec:
            rec.round_begin(42)
            with rec.span("speed.solve", roads=9):
                pass
            rec.event("note", detail="hello")
            rec.round_end(42, answered=1)
        events = load_events(path)
        types = [e["type"] for e in events]
        assert types == ["meta", "span", "event", "round"]
        assert events[0]["version"] == 1
        assert events[1]["name"] == "speed.solve"
        assert events[1]["attrs"] == {"roads": 9}
        assert events[3]["interval"] == 42
        # Re-opening appends rather than truncating the black box.
        with FlightRecorder(path=path) as rec:
            rec.round_end(43)
        assert len(load_events(path)) == len(events) + 2

    def test_recording_scope_restores_previous(self):
        before = get_recorder()
        with recording() as rec:
            assert get_recorder() is rec
            assert isinstance(rec, FlightRecorder)
        assert get_recorder() is before

    def test_set_recorder_returns_previous(self):
        previous = set_recorder(NullRecorder())
        try:
            assert isinstance(previous, NullRecorder)
        finally:
            set_recorder(previous)

    def test_configure_from_env(self, tmp_path):
        path = tmp_path / "env.jsonl"
        previous = get_recorder()
        try:
            rec = configure_from_env({OBS_ENV_VAR: str(path)})
            assert isinstance(rec, FlightRecorder)
            assert get_recorder() is rec
            rec.close()
            assert load_events(path)[0]["type"] == "meta"
        finally:
            set_recorder(previous)
        assert configure_from_env({}) is None
        assert configure_from_env({OBS_ENV_VAR: "  "}) is None


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExporters:
    def test_prometheus_text(self):
        reg = MetricsRegistry()
        reg.counter("crowd.tasks", status="answered").inc(3)
        reg.gauge("crowd.quarantined_workers").set(2)
        reg.histogram("solve.seconds", buckets=(0.1, 1.0)).observe(0.5)
        text = to_prometheus_text(reg)
        assert "# TYPE crowd_tasks counter" in text
        assert 'crowd_tasks{status="answered"} 3' in text
        assert "crowd_quarantined_workers 2" in text
        assert 'solve_seconds_bucket{le="0.1"} 0' in text
        assert 'solve_seconds_bucket{le="1"} 1' in text
        assert 'solve_seconds_bucket{le="+Inf"} 1' in text
        assert "solve_seconds_sum 0.5" in text
        assert "solve_seconds_count 1" in text

    def test_json_export_parses(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        doc = json.loads(to_json(reg))
        assert doc["a"]["series"][0]["value"] == 1


class TestPrometheusConformance:
    """Exposition-format details real scrapers trip over."""

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("m", path='a\\b"c\nd').inc()
        text = to_prometheus_text(reg)
        assert 'path="a\\\\b\\"c\\nd"' in text
        # The escaped line is still a single line.
        (line,) = [l for l in text.splitlines() if l.startswith("m{")]
        assert line.endswith(" 1")

    def test_histogram_inf_bucket_equals_count(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat.seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        lines = to_prometheus_text(reg).splitlines()
        buckets = {}
        for line in lines:
            if line.startswith("lat_seconds_bucket"):
                le = line.split('le="')[1].split('"')[0]
                buckets[le] = float(line.rsplit(" ", 1)[1])
        count = next(
            float(l.rsplit(" ", 1)[1])
            for l in lines
            if l.startswith("lat_seconds_count")
        )
        assert buckets["+Inf"] == count == 3
        # Buckets are cumulative and non-decreasing in bound order.
        assert buckets["0.1"] <= buckets["1"] <= buckets["+Inf"]
        assert any(l.startswith("lat_seconds_sum") for l in lines)

    def test_every_family_gets_one_type_line(self):
        reg = MetricsRegistry()
        reg.counter("c", a="1").inc()
        reg.counter("c", a="2").inc()
        text = to_prometheus_text(reg)
        assert text.count("# TYPE c counter") == 1


# ----------------------------------------------------------------------
# Report / verify
# ----------------------------------------------------------------------
def _write_lines(path, lines):
    path.write_text("".join(json.dumps(l) + "\n" for l in lines))


class TestReport:
    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(DataError, match="does not exist"):
            load_events(tmp_path / "nope.jsonl")

    def test_load_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(DataError, match="empty"):
            load_events(path)

    def test_load_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta"}\nnot json\n')
        with pytest.raises(DataError, match="bad.jsonl:2"):
            load_events(path)

    def test_load_rejects_untyped_event(self, tmp_path):
        path = tmp_path / "untyped.jsonl"
        path.write_text('{"no_type": 1}\n')
        with pytest.raises(DataError, match="'type'"):
            load_events(path)

    def test_verify_requires_spans_or_rounds(self, tmp_path):
        path = tmp_path / "meta_only.jsonl"
        _write_lines(path, [{"type": "meta", "version": 1}])
        with pytest.raises(DataError, match="no span or round"):
            verify_recording(path)

    def test_verify_summarises(self, tmp_path):
        path = tmp_path / "ok.jsonl"
        with FlightRecorder(path=path) as rec:
            with rec.span("x"):
                pass
            rec.round_end(0)
        summary = verify_recording(path)
        assert "1 round" in summary and "1 span" in summary

    def test_summarize_rounds_computes_deltas(self):
        events = [
            {
                "type": "round",
                "round": 0,
                "interval": 10,
                "wall_s": 0.1,
                "stages": {},
                "counters": {
                    "crowd.tasks{status=answered}": 5,
                    "crowd.tasks{status=no_response}": 1,
                    "crowd.breaker.trips": 0,
                },
                "fields": {},
            },
            {
                "type": "round",
                "round": 1,
                "interval": 11,
                "wall_s": 0.1,
                "stages": {},
                "counters": {
                    "crowd.tasks{status=answered}": 8,
                    "crowd.tasks{status=no_response}": 4,
                    "crowd.breaker.trips": 1,
                    "pipeline.substitutions{reason=stale}": 2,
                },
                "fields": {"degraded": True},
            },
        ]
        rows = summarize_rounds(events)
        assert rows[0]["tasks_answered"] == 5
        assert rows[1]["tasks_answered"] == 3  # delta, not cumulative
        assert rows[1]["tasks_failed"] == 3
        assert rows[1]["breaker_trips"] == 1
        assert rows[1]["substitutions"] == 2
        assert rows[1]["degraded"] is True

    def test_render_report_round_table(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with FlightRecorder(path=path) as rec:
            for i in range(2):
                rec.round_begin(20 + i)
                with rec.span("crowd.round"):
                    pass
                with rec.span("trend.infer"):
                    pass
                rec.count("crowd.tasks", 4, status="answered")
                rec.round_end(20 + i, degraded=bool(i))
        text = render_report(load_events(path))
        assert "crowd ms" in text and "trend ms" in text
        assert "2 rounds, 1 degraded" in text
        assert "8 answered" in text

    def test_render_report_span_only_fallback(self):
        events = [
            {"type": "span", "name": "trend.bp", "dur_s": 0.01},
            {"type": "span", "name": "trend.bp", "dur_s": 0.02},
        ]
        text = render_report(events)
        assert "trend.bp" in text and "no rounds" in text

    def test_render_report_rejects_useless_recording(self):
        with pytest.raises(DataError):
            render_report([{"type": "meta"}])


class TestVerifyEventSchemas:
    """``obs verify`` enforces the structured-event contract."""

    def _valid_trace_fields(self):
        return {
            "trace_id": 1, "rung": "fresh", "statuses": {"fresh": 2},
            "roads": 2, "latency_s": 0.001, "snapshot_version": 0,
            "age_s": 0.0, "breaker_open": False, "sampled": "interval",
        }

    def test_known_kinds_with_all_fields_pass(self, tmp_path):
        path = tmp_path / "ok.jsonl"
        with FlightRecorder(path=path) as rec:
            rec.event("read_trace", **self._valid_trace_fields())
            rec.event(
                "slo_alert", slo="read-availability", previous="ok",
                state="page", burn_fast=50.0, burn_slow=12.0, target=0.99,
            )
            rec.round_end(0)
        assert "1 round" in verify_recording(path)

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "unknown.jsonl"
        with FlightRecorder(path=path) as rec:
            rec.event("mystery_kind", detail=1)
            rec.round_end(0)
        with pytest.raises(DataError, match="unknown kind 'mystery_kind'"):
            verify_recording(path)

    def test_missing_required_field_rejected(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        fields = self._valid_trace_fields()
        fields.pop("rung")
        with FlightRecorder(path=path) as rec:
            rec.event("read_trace", **fields)
            rec.round_end(0)
        with pytest.raises(DataError, match=r"missing required fields \['rung'\]"):
            verify_recording(path)

    def test_event_without_kind_rejected(self, tmp_path):
        path = tmp_path / "kindless.jsonl"
        _write_lines(
            path,
            [
                {"type": "event", "ts": 0.0},
                {"type": "round", "round": 0},
            ],
        )
        with pytest.raises(DataError, match="no 'kind'"):
            verify_recording(path)

    def test_every_src_emitter_is_registered(self):
        """Any event() kind the instrumentation emits must have a schema,
        or obs verify would reject its own recordings."""
        from repro.obs.report import EVENT_SCHEMAS

        for kind in (
            "read_trace", "slo_alert", "publish_rejected",
            "round_not_published", "snapshot_corrupt",
            "snapshot_corruption_injected",
        ):
            assert kind in EVENT_SCHEMAS

    def test_recorder_events_property_filters_ring(self):
        rec = FlightRecorder()
        rec.event("read_trace", **self._valid_trace_fields())
        rec.round_end(0)
        (event,) = rec.events
        assert event["kind"] == "read_trace"
