"""Tests for temporal trend filtering and rotating seed schedules."""

import numpy as np
import pytest

from repro.core.errors import InferenceError
from repro.core.types import Trend
from repro.trend.model import TrendModel
from repro.trend.propagation import TrendPropagationInference
from repro.trend.temporal import RotatingSeedSchedule, TemporalTrendFilter


@pytest.fixture(scope="module")
def world(small_dataset):
    model = TrendModel(small_dataset.graph, small_dataset.store)
    return small_dataset, model


class TestRotatingSchedule:
    def test_groups_partition_seeds(self):
        schedule = RotatingSeedSchedule(list(range(10)), num_groups=3)
        seen = []
        for g in range(3):
            seen.extend(schedule.group(g))
        assert sorted(seen) == list(range(10))

    def test_groups_interleaved(self):
        schedule = RotatingSeedSchedule([10, 20, 30, 40], num_groups=2)
        assert schedule.group(0) == (10, 30)
        assert schedule.group(1) == (20, 40)
        assert schedule.group(2) == (10, 30)  # wraps

    def test_cost_fraction(self):
        schedule = RotatingSeedSchedule(list(range(10)), num_groups=2)
        assert schedule.per_round_cost_fraction() == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(InferenceError):
            RotatingSeedSchedule([], 1)
        with pytest.raises(InferenceError):
            RotatingSeedSchedule([1, 2], 3)
        with pytest.raises(InferenceError):
            RotatingSeedSchedule([1, 2], 1).group(-1)


class TestTemporalFilter:
    def test_first_round_equals_memoryless(self, world):
        dataset, model = world
        interval = dataset.test_day_intervals()[30]
        truth = dataset.test.speeds_at(interval)
        seeds = dataset.network.road_ids()[:6]
        seed_trends = {
            r: dataset.store.trend_of(r, interval, truth[r]) for r in seeds
        }
        inference = TrendPropagationInference()
        filtered = TemporalTrendFilter(model, inference)
        a = filtered.infer_at(interval, seed_trends)
        b = inference.infer(model.instance(interval, seed_trends))
        assert np.allclose(a.as_array(), b.as_array())

    def test_memory_carries_forward(self, world):
        """A road seeded FALL in round 1 keeps elevated P(fall) in round 2
        even when round 2's seeds say nothing about it."""
        dataset, model = world
        intervals = dataset.test_day_intervals()
        roads = dataset.network.road_ids()
        seed_a, seed_b = roads[0], roads[-1]
        inference = TrendPropagationInference()

        filtered = TemporalTrendFilter(model, inference, stay_probability=0.9)
        filtered.infer_at(intervals[10], {seed_a: Trend.FALL})
        with_memory = filtered.infer_at(intervals[11], {seed_b: Trend.RISE})

        memoryless = inference.infer(
            model.instance(intervals[11], {seed_b: Trend.RISE})
        )
        neighbour = dataset.graph.neighbour_ids(seed_a)[0]
        assert with_memory.p_rise(neighbour) < memoryless.p_rise(neighbour)

    def test_gap_decays_memory(self, world):
        dataset, model = world
        intervals = dataset.test_day_intervals()
        roads = dataset.network.road_ids()
        inference = TrendPropagationInference()
        neighbour = dataset.graph.neighbour_ids(roads[0])[0]

        def p_after_gap(gap):
            filtered = TemporalTrendFilter(
                model, inference, stay_probability=0.8
            )
            filtered.infer_at(intervals[0], {roads[0]: Trend.FALL})
            posterior = filtered.infer_at(
                intervals[0] + gap, {roads[-1]: Trend.RISE}
            )
            return posterior.p_rise(neighbour)

        # Longer silence -> memory of the FALL fades -> higher P(rise).
        assert p_after_gap(1) < p_after_gap(6)

    def test_intervals_must_increase(self, world):
        dataset, model = world
        inference = TrendPropagationInference()
        filtered = TemporalTrendFilter(model, inference)
        interval = dataset.test_day_intervals()[5]
        road = dataset.network.road_ids()[0]
        filtered.infer_at(interval, {road: Trend.RISE})
        with pytest.raises(InferenceError, match="increase"):
            filtered.infer_at(interval, {road: Trend.RISE})

    def test_reset_forgets(self, world):
        dataset, model = world
        intervals = dataset.test_day_intervals()
        roads = dataset.network.road_ids()
        inference = TrendPropagationInference()
        filtered = TemporalTrendFilter(model, inference)
        filtered.infer_at(intervals[0], {roads[0]: Trend.FALL})
        filtered.reset()
        fresh = filtered.infer_at(intervals[1], {roads[-1]: Trend.RISE})
        memoryless = inference.infer(
            model.instance(intervals[1], {roads[-1]: Trend.RISE})
        )
        assert np.allclose(fresh.as_array(), memoryless.as_array())

    def test_validation(self, world):
        _, model = world
        inference = TrendPropagationInference()
        with pytest.raises(InferenceError):
            TemporalTrendFilter(model, inference, stay_probability=1.0)
        with pytest.raises(InferenceError):
            TemporalTrendFilter(model, inference, prior_clip=0.5)


class TestRotatingWithMemory:
    def test_recovers_full_budget_accuracy(self, world):
        """Half-budget rotating rounds + memory ≈ full-budget accuracy,
        clearly better than half-budget without memory."""
        dataset, model = world
        from repro.seeds.lazy import lazy_greedy_select
        from repro.seeds.objective import SeedSelectionObjective

        seeds = list(
            lazy_greedy_select(SeedSelectionObjective(dataset.graph), 12).seeds
        )
        schedule = RotatingSeedSchedule(seeds, num_groups=2)
        inference = TrendPropagationInference()
        intervals = dataset.test_day_intervals()
        non_seeds = [r for r in dataset.network.road_ids() if r not in set(seeds)]

        def accuracy(posteriors):
            correct = total = 0
            for interval, posterior in posteriors:
                truth = dataset.test.speeds_at(interval)
                for road in non_seeds:
                    total += 1
                    correct += posterior.trend(road) == dataset.store.trend_of(
                        road, interval, truth[road]
                    )
            return correct / total

        def seed_trends_at(interval, subset):
            truth = dataset.test.speeds_at(interval)
            return {
                r: dataset.store.trend_of(r, interval, truth[r]) for r in subset
            }

        full = accuracy(
            (t, inference.infer(model.instance(t, seed_trends_at(t, seeds))))
            for t in intervals
        )
        no_memory = accuracy(
            (
                t,
                inference.infer(
                    model.instance(t, seed_trends_at(t, schedule.group(k)))
                ),
            )
            for k, t in enumerate(intervals)
        )
        filtered = TemporalTrendFilter(model, inference, stay_probability=0.75)
        with_memory = accuracy(
            (t, filtered.infer_at(t, seed_trends_at(t, schedule.group(k))))
            for k, t in enumerate(intervals)
        )

        assert with_memory > no_memory
        assert with_memory > full - 0.04  # most of the gap recovered
