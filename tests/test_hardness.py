"""Machine verification of the Set Cover → seed selection reduction."""

import itertools

import numpy as np
import pytest

from repro.core.errors import SelectionError
from repro.seeds.hardness import (
    covers_all_elements,
    min_seed_budget,
    min_set_cover_size,
    set_cover_to_seed_selection,
)


class TestConstruction:
    def test_road_layout(self):
        inst = set_cover_to_seed_selection(3, [frozenset({0, 1}), frozenset({2})])
        assert inst.element_roads == (0, 1, 2)
        assert inst.set_roads == (3, 4)
        assert inst.graph.num_edges == 3

    def test_threshold_separates_path_lengths(self):
        inst = set_cover_to_seed_selection(2, [frozenset({0, 1})], agreement=0.9)
        q = 0.8
        assert q * q < inst.threshold <= q

    def test_validation(self):
        with pytest.raises(SelectionError):
            set_cover_to_seed_selection(0, [frozenset({0})])
        with pytest.raises(SelectionError):
            set_cover_to_seed_selection(2, [])
        with pytest.raises(SelectionError):
            set_cover_to_seed_selection(2, [frozenset()])
        with pytest.raises(SelectionError):
            set_cover_to_seed_selection(2, [frozenset({5})])
        with pytest.raises(SelectionError):
            set_cover_to_seed_selection(2, [frozenset({0})], agreement=0.6)


class TestCoverageSemantics:
    def test_set_road_covers_its_elements(self):
        inst = set_cover_to_seed_selection(3, [frozenset({0, 1, 2})])
        assert covers_all_elements(inst, (inst.set_roads[0],))

    def test_set_road_does_not_cover_outside(self):
        inst = set_cover_to_seed_selection(
            3, [frozenset({0, 1}), frozenset({2})]
        )
        assert not covers_all_elements(inst, (inst.set_roads[0],))

    def test_element_road_covers_only_itself(self):
        """Two-hop influence element->set->element stays below θ."""
        inst = set_cover_to_seed_selection(2, [frozenset({0, 1})])
        assert not covers_all_elements(inst, (0,))  # covers element 0 only
        assert covers_all_elements(inst, (0, 1))

    def test_min_seed_budget_on_known_instance(self):
        sets = [frozenset({0, 1}), frozenset({2, 3}), frozenset({1, 2})]
        inst = set_cover_to_seed_selection(4, sets)
        assert min_seed_budget(inst) == 2
        assert min_set_cover_size(4, sets) == 2


class TestBruteForceSetCover:
    def test_simple(self):
        assert min_set_cover_size(3, [frozenset({0, 1, 2})]) == 1
        assert (
            min_set_cover_size(3, [frozenset({0}), frozenset({1}), frozenset({2})])
            == 3
        )

    def test_uncoverable(self):
        assert min_set_cover_size(3, [frozenset({0, 1})]) is None


class TestReductionEquivalence:
    """The theorem, verified exhaustively on random feasible instances:
    minimum covering seed budget == minimum set cover size."""

    @pytest.mark.parametrize("trial", range(8))
    def test_random_instances(self, trial):
        rng = np.random.default_rng(trial)
        num_elements = int(rng.integers(2, 5))
        num_sets = int(rng.integers(2, 4))
        sets = []
        for _ in range(num_sets):
            size = int(rng.integers(1, num_elements + 1))
            members = rng.choice(num_elements, size=size, replace=False)
            sets.append(frozenset(int(m) for m in members))
        # Ensure feasibility: add a set covering anything missed.
        covered = set().union(*sets)
        missing = set(range(num_elements)) - covered
        if missing:
            sets.append(frozenset(missing))

        cover = min_set_cover_size(num_elements, sets)
        inst = set_cover_to_seed_selection(num_elements, sets)
        budget = min_seed_budget(inst)
        assert budget == cover, (
            f"reduction mismatch on {sets}: cover={cover}, seeds={budget}"
        )

    def test_forward_direction_explicitly(self):
        """Any set cover's set-roads form a covering seed set of equal size."""
        sets = [frozenset({0, 1}), frozenset({1, 2}), frozenset({2, 3})]
        inst = set_cover_to_seed_selection(4, sets)
        for combo in itertools.combinations(range(len(sets)), 2):
            is_cover = set(range(4)) <= set().union(*(sets[i] for i in combo))
            seeds = tuple(inst.set_roads[i] for i in combo)
            if is_cover:
                assert covers_all_elements(inst, seeds)
            else:
                assert not covers_all_elements(inst, seeds)
