"""Unit tests for the uniform-grid spatial index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import NetworkError
from repro.roadnet.geometry import Point, point_segment_distance
from repro.roadnet.generators import grid_city
from repro.roadnet.network import RoadNetwork
from repro.roadnet.spatial_index import SpatialIndex


@pytest.fixture(scope="module")
def indexed_grid():
    net = grid_city(6, 6, block_m=400.0)
    return net, SpatialIndex(net, cell_size_m=200.0)


class TestConstruction:
    def test_rejects_bad_cell_size(self, small_network):
        with pytest.raises(ValueError):
            SpatialIndex(small_network, cell_size_m=0)

    def test_rejects_empty_network(self):
        net = RoadNetwork()
        net.add_intersection(0, Point(0, 0))
        with pytest.raises(NetworkError):
            SpatialIndex(net)

    def test_has_cells(self, indexed_grid):
        _, index = indexed_grid
        assert index.num_cells > 0
        assert index.cell_size_m == 200.0


class TestQueries:
    def test_nearest_on_segment(self, indexed_grid):
        net, index = indexed_grid
        # A point sitting right on a known segment's midpoint.
        road = net.road_ids()[0]
        mid = net.segment_midpoint(road)
        match = index.nearest_segment(mid, radius_m=50)
        assert match is not None
        assert match.distance_m == pytest.approx(0.0, abs=1e-9)

    def test_nearest_respects_radius(self, indexed_grid):
        _, index = indexed_grid
        far_away = Point(1e5, 1e5)
        assert index.nearest_segment(far_away, radius_m=100) is None

    def test_negative_radius_rejected(self, indexed_grid):
        _, index = indexed_grid
        with pytest.raises(ValueError):
            index.candidates_near(Point(0, 0), -1)

    def test_results_sorted_by_distance(self, indexed_grid):
        _, index = indexed_grid
        matches = index.nearest_segments(Point(210, 190), radius_m=400, limit=8)
        distances = [m.distance_m for m in matches]
        assert distances == sorted(distances)

    def test_limit_respected(self, indexed_grid):
        _, index = indexed_grid
        matches = index.nearest_segments(Point(200, 200), radius_m=600, limit=3)
        assert len(matches) <= 3

    def test_candidates_superset_of_matches(self, indexed_grid):
        _, index = indexed_grid
        point = Point(350, 410)
        candidates = set(index.candidates_near(point, 300))
        matches = index.nearest_segments(point, 300, limit=100)
        assert {m.road_id for m in matches} <= candidates

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=-100, max_value=2100),
        st.floats(min_value=-100, max_value=2100),
    )
    def test_matches_brute_force(self, x, y):
        """Index result equals exhaustive nearest-segment search."""
        net = grid_city(6, 6, block_m=400.0)
        index = SpatialIndex(net, cell_size_m=200.0)
        point = Point(x, y)
        match = index.nearest_segment(point, radius_m=250)
        brute = min(
            (
                point_segment_distance(point, *net.segment_endpoints(r))
                for r in net.road_ids()
            ),
        )
        if brute <= 250:
            assert match is not None
            assert match.distance_m == pytest.approx(brute, abs=1e-6)
        else:
            assert match is None
