"""Tests for the ASCII heat-map renderer."""

import pytest

from repro.core.errors import DataError
from repro.evalkit.ascii_map import (
    DEFAULT_RAMP,
    render_deviation_map,
    render_road_values,
)


class TestRenderRoadValues:
    def test_dimensions(self, small_network):
        values = {r: 1.0 for r in small_network.road_ids()}
        art = render_road_values(small_network, values, width=40)
        lines = art.splitlines()
        assert all(len(line) == 40 for line in lines)
        assert len(lines) >= 2

    def test_uniform_values_render_uniformly(self, small_network):
        values = {r: 5.0 for r in small_network.road_ids()}
        art = render_road_values(small_network, values, lo=0.0, hi=10.0)
        non_blank = {ch for ch in art if ch not in (" ", "\n")}
        assert len(non_blank) == 1

    def test_hot_cell_uses_denser_character(self, small_network):
        roads = small_network.road_ids()
        values = {r: 0.0 for r in roads}
        values[roads[0]] = 1.0
        art = render_road_values(
            small_network, values, lo=0.0, hi=1.0, ramp=".#"
        )
        assert "#" in art
        assert "." in art

    def test_scale_clamps(self, small_network):
        roads = small_network.road_ids()
        values = {r: 100.0 for r in roads}  # way above hi
        art = render_road_values(
            small_network, values, lo=0.0, hi=1.0, ramp=".#"
        )
        assert "#" in art and "." not in art.replace("\n", "")

    def test_empty_cells_are_blank(self, ring_network):
        # The ring city has a hollow centre: blanks must appear.
        values = {r: 1.0 for r in ring_network.road_ids()}
        art = render_road_values(ring_network, values, width=50)
        assert " " in art

    def test_subset_of_roads_allowed(self, small_network):
        roads = small_network.road_ids()[:5]
        art = render_road_values(
            small_network, {r: 1.0 for r in roads}, width=30
        )
        assert art  # renders fine with sparse coverage

    def test_validation(self, small_network):
        values = {small_network.road_ids()[0]: 1.0}
        with pytest.raises(DataError):
            render_road_values(small_network, values, width=2)
        with pytest.raises(DataError):
            render_road_values(small_network, values, ramp="x")
        with pytest.raises(DataError):
            render_road_values(small_network, {})
        with pytest.raises(DataError):
            render_road_values(small_network, {999999: 1.0})

    def test_default_ramp_monotone_density(self):
        assert DEFAULT_RAMP[0] == " "
        assert len(DEFAULT_RAMP) == 10


class TestDeviationMap:
    def test_congested_area_lights_up(self, small_dataset):
        city = small_dataset
        interval = city.test_day_intervals()[34]
        truth = city.test.speeds_at(interval)
        historical = {
            r: city.store.historical_speed(r, interval)
            for r in city.network.road_ids()
        }
        art = render_deviation_map(city.network, truth, historical, width=40)
        assert len(art.splitlines()) >= 2

    def test_free_flow_renders_light(self, small_network):
        roads = small_network.road_ids()
        speeds = {r: 30.0 for r in roads}
        historical = {r: 30.0 for r in roads}  # exactly typical
        art = render_deviation_map(small_network, speeds, historical)
        dense = sum(1 for ch in art if ch in "#%@")
        assert dense == 0

    def test_missing_historical_rejected(self, small_network):
        roads = small_network.road_ids()
        with pytest.raises(DataError, match="historical"):
            render_deviation_map(
                small_network, {roads[0]: 30.0}, {}
            )
