"""Chaos suite: fault scenarios, injection, and graceful degradation.

Unit-tests the `repro.faults` package, the platform's non-aborting
round lifecycle, worker quarantine and the circuit breaker — then
drives the full pipeline through every bundled fault scenario and
asserts estimates are always produced with bounded accuracy loss
relative to the fault-free rounds.
"""

import numpy as np
import pytest

from repro.core.errors import CrowdsourcingError
from repro.core.pipeline import RoundOutcome, SpeedEstimationSystem
from repro.crowd import (
    BreakerState,
    CircuitBreaker,
    CrowdsourcingPlatform,
    SpeedQueryTask,
    TaskStatus,
    Worker,
    WorkerHealthTracker,
    WorkerPool,
)
from repro.speed.degradation import (
    PRIOR,
    STALE,
    DegradationParams,
    DegradationPolicy,
)
from repro.faults import (
    FaultScenario,
    FaultWindow,
    bundled_scenarios,
    get_scenario,
    inject_faults,
)


def silent_pool(size=10):
    return WorkerPool(
        [Worker(i, 0.05, 0.0, reliability=0.0) for i in range(size)]
    )


def honest_pool(size=20):
    return WorkerPool(
        [Worker(i, 0.05, 0.0, reliability=1.0) for i in range(size)]
    )


class TestScenarios:
    def test_window_validation(self):
        with pytest.raises(CrowdsourcingError):
            FaultWindow("gremlins", 0, 1)
        with pytest.raises(CrowdsourcingError):
            FaultWindow("spam", -1, 1)
        with pytest.raises(CrowdsourcingError):
            FaultWindow("spam", 0, 0)
        with pytest.raises(CrowdsourcingError):
            FaultWindow("spam", 0, 1, intensity=0.0)

    def test_window_activity(self):
        window = FaultWindow("no_show", 2, 3, 0.5)
        assert [window.active(i) for i in range(6)] == [
            False, False, True, True, True, False,
        ]

    def test_scenario_round_trip(self):
        scenario = get_scenario("rolling-chaos")
        clone = FaultScenario.from_dict(scenario.to_dict())
        assert clone == scenario

    def test_bundled_cover_every_kind(self):
        kinds = {
            w.kind for s in bundled_scenarios().values() for w in s.windows
        }
        assert kinds == {"no_show", "spam", "stale", "outage", "task_dropout"}

    def test_unknown_scenario_rejected(self):
        with pytest.raises(CrowdsourcingError, match="unknown fault scenario"):
            get_scenario("volcano")


class TestInjector:
    def test_afflicted_subset_deterministic(self):
        scenario = get_scenario("no-show-storm")
        a = inject_faults(WorkerPool.sample(50, seed=3), scenario)
        b = inject_faults(WorkerPool.sample(50, seed=3), scenario)
        window = scenario.windows[0]
        assert a.afflicted_workers(window) == b.afflicted_workers(window)
        fraction = len(a.afflicted_workers(window)) / a.size
        assert 0.6 < fraction < 1.0  # ~ the window's 0.85 intensity

    def test_no_show_silences_afflicted_only(self):
        scenario = FaultScenario(
            "storm", (FaultWindow("no_show", 0, 10, 0.5),), seed=9
        )
        pool = inject_faults(honest_pool(40), scenario)
        pool.begin_round(0)
        afflicted = pool.afflicted_workers(scenario.windows[0])
        rng = np.random.default_rng(1)
        for worker in pool.draw(10, rng):
            answer = worker.answer(40.0, rng)
            if worker.worker_id in afflicted:
                assert answer is None
            else:
                assert answer is not None

    def test_outage_silences_everyone(self):
        scenario = FaultScenario("dark", (FaultWindow("outage", 0, 2),))
        pool = inject_faults(honest_pool(), scenario)
        pool.begin_round(0)
        rng = np.random.default_rng(1)
        assert all(w.answer(40.0, rng) is None for w in pool.draw(8, rng))
        # The window ends; the pool recovers.
        pool.begin_round(1)
        pool.begin_round(2)
        assert all(
            w.answer(40.0, rng) is not None for w in pool.draw(8, rng)
        )

    def test_spam_burst_answers_are_noise(self):
        scenario = FaultScenario(
            "burst", (FaultWindow("spam", 0, 5, 1.0),), seed=4
        )
        pool = inject_faults(honest_pool(), scenario)
        pool.begin_round(0)
        rng = np.random.default_rng(2)
        answers = [w.answer(40.0, rng) for w in pool.draw(15, rng)]
        assert np.std(answers) > 15  # uniform(1, 100), not 40 +- 5%

    def test_stale_answers_lag_current_truth(self):
        scenario = FaultScenario(
            "lag", (FaultWindow("stale", 1, 5, 1.0),), seed=5
        )
        pool = inject_faults(honest_pool(), scenario)
        rng = np.random.default_rng(3)
        # Round 0 is clean and seeds the memory with ~20 km/h truths.
        pool.begin_round(0)
        for worker in pool.draw(10, rng):
            worker.answer(20.0, rng)
        # Round 1: truth jumped to 60, stale workers still report ~20.
        pool.begin_round(1)
        answers = [w.answer(60.0, rng) for w in pool.draw(10, rng)]
        assert np.mean(answers) < 40.0

    def test_task_dropout_deterministic_per_round_and_road(self):
        scenario = get_scenario("seed-dropout-30")
        pool = inject_faults(honest_pool(), scenario)
        pool.begin_round(0)
        first = [pool.task_dropped(road) for road in range(200)]
        assert 0.15 < np.mean(first) < 0.45
        again = [pool.task_dropped(road) for road in range(200)]
        assert first == again
        pool.begin_round(1)
        assert [pool.task_dropped(r) for r in range(200)] != first

    def test_clean_rounds_are_untouched(self):
        scenario = get_scenario("no-show-storm")  # active rounds 2-5
        pool = inject_faults(honest_pool(), scenario)
        pool.begin_round(0)
        rng = np.random.default_rng(1)
        drawn = pool.draw(5, rng)
        assert all(isinstance(w, Worker) for w in drawn)


class TestRoundLifecycle:
    def test_collect_never_raises_and_reports_failures(self):
        platform = CrowdsourcingPlatform(
            silent_pool(), workers_per_task=3, max_postings=2
        )
        tasks = [SpeedQueryTask(r, 0, 40.0) for r in range(4)]
        round_ = platform.collect(tasks, seed=0)
        assert len(round_) == 0
        statuses = {o.status for o in round_.report.outcomes}
        assert statuses == {TaskStatus.NO_RESPONSE}
        assert round_.report.success_rate == 0.0

    def test_dropped_tasks_reported_without_postings(self):
        scenario = FaultScenario(
            "loss", (FaultWindow("task_dropout", 0, 10, 1.0),), seed=1
        )
        platform = CrowdsourcingPlatform(
            inject_faults(honest_pool(), scenario), workers_per_task=3
        )
        round_ = platform.collect(
            [SpeedQueryTask(r, 0, 40.0) for r in range(3)], seed=0
        )
        assert len(round_) == 0
        for outcome in round_.report.outcomes:
            assert outcome.status is TaskStatus.DROPPED
            assert outcome.postings == 0
            assert outcome.cost == 0.0

    def test_circuit_breaker_saves_retry_budget(self):
        spendthrift = CrowdsourcingPlatform(
            silent_pool(), workers_per_task=3, max_postings=10
        )
        protected = CrowdsourcingPlatform(
            silent_pool(),
            workers_per_task=3,
            max_postings=10,
            circuit_breaker=CircuitBreaker(failure_threshold=2),
        )
        tasks = [SpeedQueryTask(r, 0, 40.0) for r in range(6)]
        unprotected_report = spendthrift.collect(tasks, seed=0).report
        protected_report = protected.collect(tasks, seed=0).report
        assert protected_report.circuit_tripped
        skipped = [
            o
            for o in protected_report.outcomes
            if o.status is TaskStatus.SKIPPED_CIRCUIT_OPEN
        ]
        assert len(skipped) == 4  # everything after the second failure
        assert (
            protected_report.total_postings
            < unprotected_report.total_postings
        )

    def test_breaker_probes_next_round_and_recovers(self):
        scenario = FaultScenario("dark", (FaultWindow("outage", 0, 1),))
        pool = inject_faults(honest_pool(), scenario)
        breaker = CircuitBreaker(failure_threshold=1)
        platform = CrowdsourcingPlatform(
            pool, workers_per_task=3, max_postings=1, circuit_breaker=breaker
        )
        tasks = [SpeedQueryTask(r, 0, 40.0) for r in range(4)]
        dark = platform.collect(tasks, seed=0)
        assert len(dark) == 0
        assert breaker.state is BreakerState.OPEN
        # Outage over: the half-open probe succeeds and the round runs.
        bright = platform.collect(tasks, seed=1)
        assert len(bright) == 4
        assert breaker.state is BreakerState.CLOSED

    def test_dropped_probe_does_not_wedge_breaker(self):
        """Regression: a half-open probe consumed by a DROPPED task used
        to leave the breaker wedged — neither success nor failure was
        recorded, begin_round re-armed only from OPEN, and every task of
        every later round was skipped even after all faults ended."""
        scenario = FaultScenario(
            "dark-then-lossy",
            (
                FaultWindow("outage", 0, 1),
                FaultWindow("task_dropout", 1, 1, 1.0),
            ),
        )
        pool = inject_faults(honest_pool(), scenario)
        breaker = CircuitBreaker(failure_threshold=1)
        platform = CrowdsourcingPlatform(
            pool, workers_per_task=3, max_postings=1, circuit_breaker=breaker
        )
        tasks = [SpeedQueryTask(r, 0, 40.0) for r in range(3)]
        platform.collect(tasks, seed=0)  # outage trips the breaker
        assert breaker.state is BreakerState.OPEN
        lossy = platform.collect(tasks, seed=1)
        # Dropped tasks are inconclusive: each re-arms the probe instead
        # of consuming it, so none are skipped as circuit-open.
        assert {o.status for o in lossy.report.outcomes} == {
            TaskStatus.DROPPED
        }
        # All faults over: a fresh probe succeeds and the round runs.
        clear = platform.collect(tasks, seed=2)
        assert len(clear) == 3
        assert breaker.state is BreakerState.CLOSED

    def test_breaker_rearms_probe_each_round(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        breaker.begin_round()
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()
        assert not breaker.allow()  # single probe per round
        # Probe spent without a verdict: the next round must grant a
        # fresh one even though the state is still HALF_OPEN.
        breaker.begin_round()
        assert breaker.allow()
        breaker.record_inconclusive()  # re-arms within the same round
        assert breaker.allow()

    def test_empty_round_advances_scenario_clock(self):
        """Fault windows count platform rounds; a legal empty round must
        tick the scenario clock so the windows do not drift."""
        scenario = FaultScenario("dark", (FaultWindow("outage", 1, 1),))
        pool = inject_faults(honest_pool(), scenario)
        platform = CrowdsourcingPlatform(
            pool, workers_per_task=3, max_postings=1
        )
        platform.collect([], seed=0)  # round 0: zero sentinels
        assert pool.round_index == 0
        dark = platform.collect([SpeedQueryTask(0, 1, 40.0)], seed=1)
        assert dark.report.outcomes[0].status is TaskStatus.NO_RESPONSE


class TestQuarantine:
    def test_chronic_non_responders_quarantined(self):
        workers = [
            Worker(i, 0.05, 0.0, reliability=0.0 if i < 3 else 1.0)
            for i in range(12)
        ]
        health = WorkerHealthTracker(min_assignments=8)
        platform = CrowdsourcingPlatform(
            WorkerPool(workers), workers_per_task=6, health=health
        )
        for round_index in range(12):
            platform.collect(
                [SpeedQueryTask(r, round_index, 40.0) for r in range(5)],
                seed=round_index,
            )
        quarantined = health.quarantined()
        assert quarantined <= {0, 1, 2}
        assert quarantined  # the dead workers got caught
        # Quarantined workers stop being assigned.
        report = platform.last_report
        assert set(report.quarantined_workers) == set(quarantined)

    def test_spammers_quarantined_by_outlier_rate(self):
        workers = [
            Worker(i, 0.02, 0.0, reliability=1.0, is_spammer=(i == 0))
            for i in range(8)
        ]
        health = WorkerHealthTracker(
            min_assignments=8, max_outlier_rate=0.5
        )
        platform = CrowdsourcingPlatform(
            WorkerPool(workers), workers_per_task=5, health=health
        )
        for round_index in range(15):
            platform.collect(
                [SpeedQueryTask(r, round_index, 40.0) for r in range(4)],
                seed=round_index,
            )
        assert 0 in health.quarantined()

    def test_quarantine_waived_when_pool_would_starve(self):
        health = WorkerHealthTracker(min_assignments=2)
        pool = silent_pool(4)
        platform = CrowdsourcingPlatform(
            pool, workers_per_task=3, max_postings=2, health=health
        )
        for round_index in range(4):
            platform.collect(
                [SpeedQueryTask(0, round_index, 40.0)], seed=round_index
            )
        # Everyone is quarantined, yet rounds still staff their tasks.
        assert len(health.quarantined()) == 4
        report = platform.collect([SpeedQueryTask(0, 9, 40.0)], seed=9).report
        assert report.outcomes[0].postings >= 1


class TestDegradationPolicy:
    @pytest.fixture
    def policy(self, small_dataset):
        return DegradationPolicy(
            small_dataset.store,
            DegradationParams(decay_per_interval=0.5, max_staleness_intervals=4),
        )

    def test_real_observations_pass_through(self, policy, small_dataset):
        roads = small_dataset.store.road_ids[:3]
        observed = {roads[0]: 31.0, roads[1]: 45.0, roads[2]: 20.0}
        filled, substituted = policy.fill_missing(0, observed, list(roads))
        assert filled == observed
        assert substituted == {}

    def test_stale_fill_decays_toward_prior(self, policy, small_dataset):
        road = small_dataset.store.road_ids[0]
        prior = small_dataset.store.historical_speed(road, 2)
        observed_speed = prior + 12.0
        policy.observe(0, {road: observed_speed})
        filled, substituted = policy.fill_missing(2, {}, [road])
        assert substituted == {road: STALE}
        expected = prior + 12.0 * 0.5**2
        assert filled[road] == pytest.approx(expected, rel=0.02)

    def test_prior_fill_beyond_staleness_horizon(self, policy, small_dataset):
        road = small_dataset.store.road_ids[0]
        policy.observe(0, {road: 99.0})
        filled, substituted = policy.fill_missing(20, {}, [road])
        assert substituted == {road: PRIOR}
        assert filled[road] == pytest.approx(
            small_dataset.store.historical_speed(road, 20)
        )

    def test_unseen_road_uses_prior(self, policy, small_dataset):
        road = small_dataset.store.road_ids[5]
        filled, substituted = policy.fill_missing(7, {}, [road])
        assert substituted == {road: PRIOR}


# ----------------------------------------------------------------------
# The chaos drive: every bundled scenario through the full pipeline.
# ----------------------------------------------------------------------
NUM_SEEDS = 10
#: Acceptable full-network MAE inflation per scenario, versus the
#: fault-free rounds. Spam is hardest: a burst can make spammers the
#: per-task majority, which no aggregator fully repairs.
MAE_BOUNDS = {
    "no-show-storm": 1.5,
    "spam-burst": 2.2,
    "outage-window": 1.6,
    "stale-answers": 1.8,
    "seed-dropout-30": 1.5,
    "rolling-chaos": 2.0,
}


@pytest.fixture(scope="module")
def chaos_intervals(small_dataset):
    return small_dataset.test_day_intervals(stride=8)[:10]


def drive(system, platform, dataset, intervals):
    seed_set = set(system.seeds)
    outcomes, errors = [], []
    for interval in intervals:
        outcome = system.run_round(
            interval, dataset.test, platform, crowd_seed=interval
        )
        truth = dataset.test.speeds_at(interval)
        for road in dataset.network.road_ids():
            if road not in seed_set:
                errors.append(abs(outcome[road].speed_kmh - truth[road]))
        outcomes.append(outcome)
    return outcomes, float(np.mean(errors))


@pytest.fixture(scope="module")
def clean_mae(small_dataset, chaos_intervals):
    system = SpeedEstimationSystem.from_parts(
        small_dataset.network, small_dataset.store, small_dataset.graph
    )
    system.select_seeds(NUM_SEEDS)
    platform = CrowdsourcingPlatform(
        WorkerPool.sample(60, seed=2), workers_per_task=5
    )
    _, mae = drive(system, platform, small_dataset, chaos_intervals)
    return mae


class TestChaos:
    @pytest.mark.parametrize("name", sorted(MAE_BOUNDS))
    def test_pipeline_survives_scenario(
        self, name, small_dataset, chaos_intervals, clean_mae
    ):
        system = SpeedEstimationSystem.from_parts(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        seeds = system.select_seeds(NUM_SEEDS)
        platform = CrowdsourcingPlatform(
            inject_faults(WorkerPool.sample(60, seed=2), get_scenario(name)),
            workers_per_task=5,
            max_postings=4,
            health=WorkerHealthTracker(),
            circuit_breaker=CircuitBreaker(failure_threshold=3),
        )
        outcomes, mae = drive(system, platform, small_dataset, chaos_intervals)

        for outcome in outcomes:
            assert isinstance(outcome, RoundOutcome)
            # Estimation always completes for the whole network.
            assert len(outcome) == small_dataset.network.num_segments
            # Per-task accounting is exact: every planned seed is either
            # answered or failed, and failures are what got substituted.
            report = outcome.report
            accounted = set(report.answered_roads) | set(report.failed_roads)
            assert accounted == set(seeds)
            assert set(outcome.substituted) == set(report.failed_roads)
            assert set(outcome.observed) == set(report.answered_roads)
            for road, source in outcome.substituted.items():
                assert source in (STALE, PRIOR)
                assert outcome[road].degraded
            if outcome.substituted:
                assert outcome.degraded

        # Accuracy loss is bounded relative to the fault-free rounds.
        assert mae < clean_mae * MAE_BOUNDS[name], (
            f"{name}: MAE {mae:.2f} vs clean {clean_mae:.2f}"
        )

    def test_outage_trips_circuit_breaker(
        self, small_dataset, chaos_intervals
    ):
        system = SpeedEstimationSystem.from_parts(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        system.select_seeds(NUM_SEEDS)
        breaker = CircuitBreaker(failure_threshold=3)
        platform = CrowdsourcingPlatform(
            inject_faults(
                WorkerPool.sample(60, seed=2), get_scenario("outage-window")
            ),
            workers_per_task=5,
            max_postings=4,
            circuit_breaker=breaker,
        )
        outcomes, _ = drive(system, platform, small_dataset, chaos_intervals)
        assert breaker.times_tripped >= 1
        tripped_rounds = [o for o in outcomes if o.report.circuit_tripped]
        assert tripped_rounds
        # During the outage, skipped tasks cost nothing.
        for outcome in tripped_rounds:
            for task in outcome.report.outcomes:
                if task.status is TaskStatus.SKIPPED_CIRCUIT_OPEN:
                    assert task.cost == 0.0

    def test_dropout_scenario_produces_degraded_rounds(
        self, small_dataset, chaos_intervals
    ):
        system = SpeedEstimationSystem.from_parts(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        system.select_seeds(NUM_SEEDS)
        platform = CrowdsourcingPlatform(
            inject_faults(
                WorkerPool.sample(60, seed=2), get_scenario("seed-dropout-30")
            ),
            workers_per_task=5,
        )
        outcomes, _ = drive(system, platform, small_dataset, chaos_intervals)
        degraded = [o for o in outcomes if o.degraded]
        assert degraded  # ~30% task loss must show up
        statuses = {
            t.status for o in degraded for t in o.report.outcomes
        }
        assert TaskStatus.DROPPED in statuses
