"""Unit tests for the hierarchical linear model (Step 2)."""

import numpy as np
import pytest

from repro.core.errors import DataError, InferenceError
from repro.core.types import Trend
from repro.speed.hlm import (
    HierarchicalLinearModel,
    HlmParams,
    JointSeedRegression,
    SeedRegression,
)
from repro.trend.model import TrendPosterior


@pytest.fixture(scope="module")
def hlm(small_dataset):
    return HierarchicalLinearModel.fit(
        small_dataset.store, small_dataset.network, small_dataset.graph
    )


def flat_posterior(road_ids, p=0.5):
    return TrendPosterior(tuple(road_ids), np.full(len(road_ids), float(p)))


class TestHlmParams:
    def test_defaults_valid(self):
        HlmParams()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"prior_weight": -1},
            {"min_fidelity": 0.0},
            {"min_fidelity": 1.0},
            {"slope_clip": 0},
            {"ridge_alpha": -0.1},
            {"max_seeds_per_road": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(DataError):
            HlmParams(**kwargs)


class TestSeedRegression:
    def test_self_regression_is_identity(self, small_dataset):
        reg = SeedRegression(small_dataset.store)
        road = small_dataset.store.road_ids[0]
        assert reg.slope(road, road) == pytest.approx(1.0)
        assert reg.weight(road, road) == pytest.approx(1.0)

    def test_unknown_seed(self, small_dataset):
        reg = SeedRegression(small_dataset.store)
        with pytest.raises(InferenceError):
            reg.for_seed(999999)

    def test_slopes_match_manual_ols(self, small_dataset):
        store = small_dataset.store
        reg = SeedRegression(store)
        seed = store.road_ids[3]
        target = store.road_ids[8]
        centred = store.deviation_matrix() - 1.0
        x = centred[:, store.road_column(seed)]
        y = centred[:, store.road_column(target)]
        assert reg.slope(seed, target) == pytest.approx(
            float(x @ y / (x @ x)), abs=1e-9
        )

    def test_weights_are_r_squared(self, small_dataset):
        store = small_dataset.store
        reg = SeedRegression(store)
        seed, target = store.road_ids[3], store.road_ids[8]
        centred = store.deviation_matrix() - 1.0
        x = centred[:, store.road_column(seed)]
        y = centred[:, store.road_column(target)]
        r2 = float((x @ y) ** 2 / ((x @ x) * (y @ y)))
        assert reg.weight(seed, target) == pytest.approx(r2, abs=1e-9)

    def test_cached(self, small_dataset):
        reg = SeedRegression(small_dataset.store)
        seed = small_dataset.store.road_ids[0]
        a = reg.for_seed(seed)
        b = reg.for_seed(seed)
        assert a is b


class TestJointSeedRegression:
    def test_single_seed_close_to_marginal(self, small_dataset):
        """With one seed and tiny ridge, joint slope ≈ marginal OLS slope."""
        store = small_dataset.store
        joint = JointSeedRegression(store, HlmParams(ridge_alpha=1e-9))
        marginal = SeedRegression(store)
        seed, target = store.road_ids[3], store.road_ids[8]
        fitted = joint.for_road(target, {seed: 0.5})
        assert fitted is not None
        assert fitted.coefficients[0] == pytest.approx(
            marginal.slope(seed, target), abs=1e-6
        )

    def test_no_influence_returns_none(self, small_dataset):
        joint = JointSeedRegression(small_dataset.store, HlmParams())
        assert joint.for_road(small_dataset.store.road_ids[0], {}) is None

    def test_caps_seed_count(self, small_dataset):
        store = small_dataset.store
        joint = JointSeedRegression(store, HlmParams(max_seeds_per_road=3))
        influence = {s: 0.5 for s in store.road_ids[1:10]}
        fitted = joint.for_road(store.road_ids[0], influence)
        assert len(fitted.seeds) == 3

    def test_keeps_highest_fidelity_seeds(self, small_dataset):
        store = small_dataset.store
        joint = JointSeedRegression(store, HlmParams(max_seeds_per_road=2))
        influence = {
            store.road_ids[1]: 0.9,
            store.road_ids[2]: 0.1,
            store.road_ids[3]: 0.8,
        }
        fitted = joint.for_road(store.road_ids[0], influence)
        assert set(fitted.seeds) == {store.road_ids[1], store.road_ids[3]}

    def test_r_squared_bounds(self, small_dataset):
        store = small_dataset.store
        joint = JointSeedRegression(store, HlmParams())
        fitted = joint.for_road(
            store.road_ids[0], {s: 0.5 for s in store.road_ids[1:6]}
        )
        assert 0.0 <= fitted.r_squared < 1.0
        assert fitted.weight >= 0.0

    def test_predict_neutral_for_neutral_seeds(self, small_dataset):
        store = small_dataset.store
        joint = JointSeedRegression(store, HlmParams())
        fitted = joint.for_road(
            store.road_ids[0], {s: 0.5 for s in store.road_ids[1:4]}
        )
        neutral = {s: 1.0 for s in fitted.seeds}
        assert fitted.predict(neutral) == pytest.approx(1.0)

    def test_cached_per_seed_set(self, small_dataset):
        store = small_dataset.store
        joint = JointSeedRegression(store, HlmParams())
        influence = {store.road_ids[1]: 0.5}
        a = joint.for_road(store.road_ids[0], influence)
        b = joint.for_road(store.road_ids[0], influence)
        assert a is b


class TestEstimateRoad:
    def test_no_influence_uses_prior(self, small_dataset, hlm):
        store = small_dataset.store
        road = store.road_ids[0]
        interval = small_dataset.test_day_intervals()[30]
        posterior = flat_posterior(store.road_ids, p=0.9)
        speed = hlm.estimate_road(road, interval, posterior, {}, {}, {})
        bucket = small_dataset.grid.bucket_of(interval)
        expected = hlm.hierarchy.conditional_mean(
            road, bucket, Trend.RISE
        ) * store.historical_speed(road, interval)
        assert speed == pytest.approx(expected, rel=0.05)

    def test_falling_seeds_lower_estimate(self, small_dataset, hlm):
        store = small_dataset.store
        road = store.road_ids[0]
        neighbours = small_dataset.graph.neighbour_ids(road)[:3]
        interval = small_dataset.test_day_intervals()[30]
        posterior = flat_posterior(store.road_ids)
        influence = {s: 0.8 for s in neighbours}
        slow = hlm.estimate_road(
            road, interval, posterior,
            {s: 0.6 for s in neighbours},
            {s: Trend.FALL for s in neighbours},
            influence,
        )
        fast = hlm.estimate_road(
            road, interval, posterior,
            {s: 1.4 for s in neighbours},
            {s: Trend.RISE for s in neighbours},
            influence,
        )
        assert slow < fast

    def test_estimates_clamped(self, small_dataset, hlm):
        store = small_dataset.store
        road = store.road_ids[0]
        neighbours = small_dataset.graph.neighbour_ids(road)[:3]
        interval = small_dataset.test_day_intervals()[10]
        posterior = flat_posterior(store.road_ids)
        influence = {s: 0.9 for s in neighbours}
        crazy_fast = hlm.estimate_road(
            road, interval, posterior,
            {s: 10.0 for s in neighbours},
            {s: Trend.RISE for s in neighbours},
            influence,
        )
        upper = (
            small_dataset.network.segment(road).free_flow_kmh
            * hlm.params.max_over_free_flow
        )
        assert crazy_fast <= upper
        crazy_slow = hlm.estimate_road(
            road, interval, posterior,
            {s: 0.0001 for s in neighbours},
            {s: Trend.FALL for s in neighbours},
            influence,
        )
        assert crazy_slow >= hlm.params.min_speed_kmh

    def test_missing_observation_raises(self, small_dataset, hlm):
        store = small_dataset.store
        road = store.road_ids[0]
        neighbour = small_dataset.graph.neighbour_ids(road)[0]
        posterior = flat_posterior(store.road_ids)
        with pytest.raises(InferenceError):
            hlm.estimate_road(
                road, 0, posterior, {}, {}, {neighbour: 0.8}
            )

    def test_no_trend_ablation_ignores_posterior(self, small_dataset):
        params = HlmParams(use_trend=False)
        hlm = HierarchicalLinearModel.fit(
            small_dataset.store, small_dataset.network, params=params
        )
        store = small_dataset.store
        road = store.road_ids[0]
        interval = small_dataset.test_day_intervals()[30]
        confident_rise = flat_posterior(store.road_ids, 0.99)
        confident_fall = flat_posterior(store.road_ids, 0.01)
        a = hlm.estimate_road(road, interval, confident_rise, {}, {}, {})
        b = hlm.estimate_road(road, interval, confident_fall, {}, {}, {})
        assert a == b  # trend machinery fully disabled

    def test_flat_ablation_uses_global_mean(self, small_dataset):
        params = HlmParams(hierarchical=False)
        hlm = HierarchicalLinearModel.fit(
            small_dataset.store, small_dataset.network, params=params
        )
        store = small_dataset.store
        interval = small_dataset.test_day_intervals()[30]
        posterior = flat_posterior(store.road_ids, 0.99)
        for road in store.road_ids[:5]:
            speed = hlm.estimate_road(road, interval, posterior, {}, {}, {})
            expected = hlm.hierarchy.global_mean(
                Trend.RISE
            ) * store.historical_speed(road, interval)
            # Prior confidence scaling applies equally; ratio must match.
            assert speed == pytest.approx(
                hlm._clamp(road, expected), rel=1e-9
            )
