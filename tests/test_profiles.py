"""Unit tests for daily speed profiles."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.traffic.profiles import (
    DEFAULT_PROFILES,
    DailyProfile,
    ProfileSet,
    RushWindow,
)

hours = st.floats(min_value=0.0, max_value=23.999)


class TestRushWindow:
    def test_peak_dip_equals_depth(self):
        w = RushWindow(peak_hour=8.0, width_hours=1.0, depth=0.4)
        assert w.dip_at(8.0) == pytest.approx(0.4)

    def test_dip_decays_with_distance(self):
        w = RushWindow(peak_hour=8.0, width_hours=1.0, depth=0.4)
        assert w.dip_at(9.0) < w.dip_at(8.5) < w.dip_at(8.0)

    def test_wraps_midnight(self):
        w = RushWindow(peak_hour=23.5, width_hours=1.0, depth=0.3)
        assert w.dip_at(0.5) == pytest.approx(w.dip_at(22.5))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"peak_hour": 24.0, "width_hours": 1, "depth": 0.3},
            {"peak_hour": 8.0, "width_hours": 0, "depth": 0.3},
            {"peak_hour": 8.0, "width_hours": 1, "depth": 0.0},
            {"peak_hour": 8.0, "width_hours": 1, "depth": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RushWindow(**kwargs)


class TestDailyProfile:
    @pytest.fixture
    def profile(self):
        return DEFAULT_PROFILES["arterial"]

    def test_night_is_free_flow(self, profile):
        assert profile.multiplier_at(3.0) > 0.97

    def test_rush_is_slower_than_midday(self, profile):
        assert profile.multiplier_at(8.25) < profile.multiplier_at(12.0)

    def test_evening_rush_slower_than_night(self, profile):
        assert profile.multiplier_at(18.0) < profile.multiplier_at(2.0)

    @given(hours)
    def test_multiplier_within_bounds(self, hour):
        profile = DEFAULT_PROFILES["highway"]
        m = profile.multiplier_at(hour)
        assert profile.floor <= m <= 1.0

    def test_out_of_range_hour_rejected(self, profile):
        with pytest.raises(ValueError):
            profile.multiplier_at(24.0)
        with pytest.raises(ValueError):
            profile.multiplier_at(-0.1)

    def test_floor_respected(self):
        deep = DailyProfile(
            rush_windows=(
                RushWindow(8.0, 2.0, 0.5),
                RushWindow(8.5, 2.0, 0.5),
            ),
            floor=0.3,
        )
        assert deep.multiplier_at(8.25) == pytest.approx(0.3)


class TestProfileSet:
    def test_all_classes_covered(self):
        profiles = ProfileSet()
        for road_class in ("highway", "arterial", "collector", "local"):
            assert profiles.multiplier(road_class, 12.0) > 0

    def test_unknown_class_falls_back_to_local(self):
        profiles = ProfileSet()
        assert profiles.for_class("unknown") is profiles.profiles["local"]

    def test_commuter_roads_dip_hardest(self):
        profiles = ProfileSet()
        rush = 8.25
        assert profiles.multiplier("highway", rush) < profiles.multiplier(
            "local", rush
        )
        assert profiles.multiplier("arterial", rush) < profiles.multiplier(
            "collector", rush
        )
