"""Shared fixtures.

Expensive artefacts (datasets, fitted systems) are session-scoped and
deliberately *small* — a 6×6 grid with a week of history — so the whole
suite stays fast while still exercising every pipeline stage on
realistic structure. Benchmarks use the full-size cities instead.
"""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import TrafficDataset, build_dataset
from repro.history.timebuckets import TimeGrid
from repro.roadnet.generators import grid_city, ring_radial_city
from repro.roadnet.network import RoadNetwork


@pytest.fixture(scope="session")
def small_network() -> RoadNetwork:
    """A 6x6 grid: 120 directed segments."""
    return grid_city(6, 6, block_m=400.0, arterial_every=3)


@pytest.fixture(scope="session")
def ring_network() -> RoadNetwork:
    return ring_radial_city(rings=3, spokes=8)


@pytest.fixture(scope="session")
def grid15() -> TimeGrid:
    return TimeGrid(15)


@pytest.fixture(scope="session")
def small_dataset(small_network) -> TrafficDataset:
    """The workhorse dataset: 6x6 grid, 7 history days, 1 test day."""
    return build_dataset(
        "test-city",
        small_network,
        history_days=7,
        test_days=1,
        seed=12345,
    )


@pytest.fixture(scope="session")
def tiny_network() -> RoadNetwork:
    """A 3x3 grid: 24 directed segments, for exact-inference tests."""
    return grid_city(3, 3)


@pytest.fixture(scope="session")
def tiny_dataset(tiny_network) -> TrafficDataset:
    return build_dataset(
        "tiny-city",
        tiny_network,
        history_days=5,
        test_days=1,
        seed=777,
    )
