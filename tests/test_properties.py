"""Cross-module property and invariant tests.

These pin down contracts that span packages: determinism of the whole
pipeline, insensitivity to incidental input ordering, consistency of
estimates with their inputs, and conservation laws of the simulator.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import SpeedEstimationSystem
from repro.core.types import Trend


@pytest.fixture(scope="module")
def fitted(small_dataset):
    system = SpeedEstimationSystem.from_parts(
        small_dataset.network, small_dataset.store, small_dataset.graph
    )
    seeds = system.select_seeds(10)
    return small_dataset, system, seeds


class TestPipelineInvariants:
    def test_estimates_independent_of_seed_dict_order(self, fitted):
        """The seed mapping is a set of facts; its dict order is noise."""
        city, system, seeds = fitted
        interval = city.test_day_intervals()[40]
        truth = city.test.speeds_at(interval)
        forward = {r: truth[r] for r in seeds}
        backward = {r: truth[r] for r in reversed(seeds)}
        assert system.estimate(interval, forward) == system.estimate(
            interval, backward
        )

    def test_refitting_is_deterministic(self, small_dataset):
        a = SpeedEstimationSystem.from_parts(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        b = SpeedEstimationSystem.from_parts(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        assert a.select_seeds(7) == b.select_seeds(7)
        interval = small_dataset.test_day_intervals()[20]
        truth = small_dataset.test.speeds_at(interval)
        crowd = {r: truth[r] for r in a.seeds}
        assert a.estimate(interval, crowd) == b.estimate(interval, crowd)

    def test_estimates_respect_physical_bounds(self, fitted):
        city, system, seeds = fitted
        for interval in city.test_day_intervals(stride=24):
            truth = city.test.speeds_at(interval)
            estimates = system.estimate(
                interval, {r: truth[r] for r in seeds}
            )
            for road, est in estimates.items():
                if est.is_seed:
                    continue
                upper = city.network.segment(road).free_flow_kmh * 1.2
                assert 2.0 <= est.speed_kmh <= upper + 1e-9

    def test_trend_consistent_with_probability(self, fitted):
        city, system, seeds = fitted
        interval = city.test_day_intervals()[50]
        truth = city.test.speeds_at(interval)
        for est in system.estimate(
            interval, {r: truth[r] for r in seeds}
        ).values():
            expected = Trend.RISE if est.trend_probability >= 0.5 else Trend.FALL
            assert est.trend is expected

    @settings(max_examples=10, deadline=None)
    @given(scale=st.floats(min_value=0.6, max_value=1.4))
    def test_uniform_seed_scaling_moves_estimates_monotonically(
        self, fitted, scale
    ):
        """Scaling every seed speed by a common factor never moves a
        non-seed estimate in the opposite direction (before clamping)."""
        city, system, seeds = fitted
        interval = city.test_day_intervals()[44]
        truth = city.test.speeds_at(interval)
        base = {r: truth[r] for r in seeds}
        scaled = {r: v * scale for r, v in base.items()}
        est_base = system.estimate(interval, base)
        est_scaled = system.estimate(interval, scaled)
        moved_up = 0
        moved_down = 0
        for road in city.network.road_ids():
            if road in base:
                continue
            delta = est_scaled[road].speed_kmh - est_base[road].speed_kmh
            if delta > 1e-9:
                moved_up += 1
            elif delta < -1e-9:
                moved_down += 1
        if scale > 1.0:
            assert moved_up >= moved_down
        elif scale < 1.0:
            assert moved_down >= moved_up


class TestSimulatorInvariants:
    def test_history_statistics_match_field(self, small_dataset):
        """Store means are exact averages of the history field."""
        store = small_dataset.store
        field = small_dataset.history
        rng = np.random.default_rng(1)
        roads = rng.choice(store.road_ids, size=5, replace=False)
        for road in roads:
            series = field.series(int(road)).reshape(7, 96)
            for bucket in rng.choice(96, size=4, replace=False):
                assert store.mean(int(road), int(bucket)) == pytest.approx(
                    series[:, int(bucket)].mean()
                )

    def test_correlation_edges_are_symmetric_facts(self, small_dataset):
        graph = small_dataset.graph
        for edge in list(graph.edges())[:200]:
            assert graph.agreement(edge.road_u, edge.road_v) == (
                graph.agreement(edge.road_v, edge.road_u)
            )

    def test_deviation_and_trend_consistent(self, small_dataset):
        """deviation > 1 exactly when trend is RISE (tie -> RISE)."""
        store = small_dataset.store
        field = small_dataset.test
        rng = np.random.default_rng(2)
        for _ in range(50):
            road = int(rng.choice(store.road_ids))
            interval = int(rng.choice(list(field.intervals)))
            speed = field.speed(road, interval)
            deviation = store.deviation_ratio(road, interval, speed)
            trend = store.trend_of(road, interval, speed)
            if deviation >= 1.0:
                assert trend is Trend.RISE
            else:
                assert trend is Trend.FALL


class TestSelectionInvariants:
    @settings(max_examples=10, deadline=None)
    @given(budget=st.integers(min_value=1, max_value=15))
    def test_greedy_prefix_property(self, small_dataset, budget):
        """Greedy with budget k is a prefix of greedy with budget k+1."""
        from repro.seeds.lazy import lazy_greedy_select
        from repro.seeds.objective import SeedSelectionObjective

        objective = SeedSelectionObjective(small_dataset.graph)
        small = lazy_greedy_select(objective, budget)
        large = lazy_greedy_select(objective, budget + 1)
        assert large.seeds[:budget] == small.seeds

    def test_selection_methods_return_valid_roads(self, fitted):
        city, system, _ = fitted
        valid = set(city.network.road_ids())
        for method in ("lazy", "partition", "random", "top-degree", "k-center"):
            seeds = system.select_seeds(6, method=method)
            assert set(seeds) <= valid
            assert len(set(seeds)) == 6
