"""Tests for the end-to-end SpeedEstimationSystem."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.errors import ConfigError, SelectionError
from repro.core.pipeline import SpeedEstimationSystem
from repro.crowd.platform import CrowdsourcingPlatform
from repro.crowd.workers import WorkerPool
from repro.history.timebuckets import TimeGrid


@pytest.fixture(scope="module")
def system(small_dataset):
    return SpeedEstimationSystem.from_parts(
        small_dataset.network, small_dataset.store, small_dataset.graph
    )


class TestConfig:
    def test_defaults(self):
        config = PipelineConfig()
        assert config.selection_method == "lazy"
        assert config.inference_method == "propagation"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"selection_method": "magic"},
            {"inference_method": "oracle"},
            {"correlation_max_hops": 0},
            {"correlation_min_agreement": 0.4},
            {"num_partitions": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            PipelineConfig(**kwargs)


class TestFit:
    def test_fit_from_history(self, small_dataset):
        system = SpeedEstimationSystem.fit(
            small_dataset.network,
            small_dataset.grid,
            [small_dataset.history],
        )
        assert system.graph.num_edges > 0
        assert system.store.num_training_intervals == 7 * 96

    def test_grid_mismatch_rejected(self, small_dataset):
        with pytest.raises(ConfigError):
            SpeedEstimationSystem.fit(
                small_dataset.network,
                TimeGrid(30),
                [small_dataset.history],
                PipelineConfig(interval_minutes=15),
            )


class TestSelection:
    def test_select_records_seeds(self, system):
        seeds = system.select_seeds(6)
        assert len(seeds) == 6
        assert system.seeds == seeds
        assert system.selection is not None
        assert system.selection.method == "lazy-greedy"

    @pytest.mark.parametrize(
        "method", ["greedy", "lazy", "partition", "random", "top-degree", "k-center"]
    )
    def test_all_methods_run(self, system, method):
        seeds = system.select_seeds(4, method=method)
        assert len(seeds) == 4

    def test_unknown_method_rejected(self, system):
        with pytest.raises(SelectionError):
            system.select_seeds(4, method="sorcery")

    @pytest.mark.parametrize("budget", [0, -3])
    def test_non_positive_budget_rejected(self, system, budget):
        with pytest.raises(SelectionError, match="budget"):
            system.select_seeds(budget)

    def test_oversized_budget_rejected(self, system, small_dataset):
        too_many = len(small_dataset.graph.road_ids) + 1
        with pytest.raises(SelectionError, match="exceeds"):
            system.select_seeds(too_many)


class TestEstimation:
    def test_estimate_round(self, system, small_dataset):
        seeds = system.select_seeds(8)
        interval = small_dataset.test_day_intervals()[40]
        truth = {r: small_dataset.test.speed(r, interval) for r in seeds}
        estimates = system.estimate(interval, truth)
        assert len(estimates) == small_dataset.network.num_segments

    def test_run_round_with_crowd(self, system, small_dataset):
        system.select_seeds(8)
        platform = CrowdsourcingPlatform(
            WorkerPool.sample(30, seed=4), workers_per_task=5
        )
        interval = small_dataset.test_day_intervals()[40]
        estimates = system.run_round(
            interval, small_dataset.test, platform, crowd_seed=1
        )
        assert len(estimates) == small_dataset.network.num_segments
        assert platform.total_cost > 0
        seed_estimates = [e for e in estimates.values() if e.is_seed]
        assert len(seed_estimates) == 8

    def test_run_round_outcome_carries_report(self, system, small_dataset):
        seeds = system.select_seeds(8)
        platform = CrowdsourcingPlatform(
            WorkerPool.sample(30, seed=4), workers_per_task=5
        )
        interval = small_dataset.test_day_intervals()[40]
        outcome = system.run_round(
            interval, small_dataset.test, platform, crowd_seed=1
        )
        assert outcome.report.interval == interval
        assert set(outcome.report.answered_roads) == set(seeds)
        assert set(outcome.observed) == set(seeds)
        assert not outcome.degraded
        assert outcome.substituted == {}

    def test_run_round_degrades_when_crowd_fails(self, system, small_dataset):
        from repro.crowd.workers import Worker

        seeds = system.select_seeds(8)
        dead = CrowdsourcingPlatform(
            WorkerPool([Worker(i, 0.05, 0.0, 0.0) for i in range(10)]),
            workers_per_task=3,
            max_postings=2,
        )
        interval = small_dataset.test_day_intervals()[40]
        outcome = system.run_round(interval, small_dataset.test, dead)
        assert outcome.degraded
        assert set(outcome.substituted) == set(seeds)
        assert len(outcome) == small_dataset.network.num_segments
        for road in seeds:
            assert outcome[road].degraded

    def test_run_round_requires_selection(self, small_dataset):
        fresh = SpeedEstimationSystem.from_parts(
            small_dataset.network, small_dataset.store, small_dataset.graph
        )
        platform = CrowdsourcingPlatform(
            WorkerPool.sample(10, seed=1), workers_per_task=3
        )
        with pytest.raises(SelectionError, match="select_seeds"):
            fresh.run_round(0, small_dataset.test, platform)

    @pytest.mark.parametrize("inference", ["propagation", "bp"])
    def test_inference_methods(self, small_dataset, inference):
        system = SpeedEstimationSystem.from_parts(
            small_dataset.network,
            small_dataset.store,
            small_dataset.graph,
            PipelineConfig(inference_method=inference),
        )
        seeds = system.select_seeds(5)
        interval = small_dataset.test_day_intervals()[30]
        truth = {r: small_dataset.test.speed(r, interval) for r in seeds}
        estimates = system.estimate(interval, truth)
        assert len(estimates) == small_dataset.network.num_segments
