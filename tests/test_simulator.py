"""Unit tests for the ground-truth traffic simulator and SpeedField."""

import numpy as np
import pytest

from repro.core.errors import DataError
from repro.core.field import SpeedField
from repro.history.timebuckets import TimeGrid
from repro.traffic.simulator import SimulatorParams, TrafficSimulator


@pytest.fixture(scope="module")
def simulated(small_network):
    grid = TimeGrid(15)
    sim = TrafficSimulator(small_network, grid)
    field, events = sim.simulate(0, 3, seed=42)
    return small_network, grid, sim, field, events


class TestSpeedField:
    def test_shape(self, simulated):
        net, grid, _, field, _ = simulated
        assert field.matrix.shape == (3 * 96, net.num_segments)
        assert field.intervals == range(0, 288)

    def test_speed_lookup_matches_matrix(self, simulated):
        net, _, _, field, _ = simulated
        road = net.road_ids()[5]
        assert field.speed(road, 10) == field.matrix[10, field.road_column(road)]

    def test_speeds_at(self, simulated):
        net, _, _, field, _ = simulated
        row = field.speeds_at(100)
        assert set(row) == set(net.road_ids())

    def test_series_length(self, simulated):
        net, _, _, field, _ = simulated
        assert len(field.series(net.road_ids()[0])) == 288

    def test_out_of_range_interval(self, simulated):
        _, _, _, field, _ = simulated
        with pytest.raises(DataError):
            field.speed(0, 288)

    def test_unknown_road(self, simulated):
        _, _, _, field, _ = simulated
        with pytest.raises(DataError):
            field.speed(99999, 0)

    def test_observations_at(self, simulated):
        _, _, _, field, _ = simulated
        obs = field.observations_at(50)
        assert all(o.interval == 50 for o in obs)
        assert all(o.speed_kmh > 0 for o in obs)

    def test_constructor_validation(self):
        with pytest.raises(DataError):
            SpeedField(np.ones(5), [1], 0)  # 1-D
        with pytest.raises(DataError):
            SpeedField(np.ones((5, 2)), [1], 0)  # column mismatch
        with pytest.raises(DataError):
            SpeedField(np.ones((5, 1)), [1], -1)  # negative start


class TestSimulator:
    def test_deterministic_given_seed(self, small_network):
        grid = TimeGrid(15)
        a, _ = TrafficSimulator(small_network, grid).simulate(0, 1, seed=9)
        b, _ = TrafficSimulator(small_network, grid).simulate(0, 1, seed=9)
        assert np.array_equal(a.matrix, b.matrix)

    def test_different_seeds_differ(self, small_network):
        grid = TimeGrid(15)
        sim = TrafficSimulator(small_network, grid)
        a, _ = sim.simulate(0, 1, seed=1)
        b, _ = sim.simulate(0, 1, seed=2)
        assert not np.array_equal(a.matrix, b.matrix)

    def test_speeds_physical(self, simulated):
        net, _, _, field, _ = simulated
        params = SimulatorParams()
        assert field.matrix.min() >= params.min_speed_kmh
        for road in net.road_ids():
            upper = net.segment(road).free_flow_kmh * params.max_over_free_flow
            assert field.series(road).max() <= upper + 1e-9

    def test_rush_hour_slower_on_average(self, simulated):
        net, grid, _, field, _ = simulated
        arterials = [
            r for r in net.road_ids() if net.segment(r).road_class == "arterial"
        ]
        rush = [t for t in field.intervals if 7.5 <= grid.hour_of(t) <= 9.0]
        night = [t for t in field.intervals if grid.hour_of(t) <= 4.0]
        rush_mean = np.mean(
            [field.speed(r, t) for r in arterials for t in rush]
        )
        night_mean = np.mean(
            [field.speed(r, t) for r in arterials for t in night]
        )
        assert rush_mean < night_mean * 0.8

    def test_adjacent_roads_correlate(self, simulated):
        """The key property: neighbouring roads' deviations co-move."""
        net, _, _, field, _ = simulated
        rng = np.random.default_rng(0)
        road_ids = net.road_ids()
        correlations = []
        for road in rng.choice(road_ids, size=20, replace=False):
            neighbours = net.adjacent_roads(int(road))
            if not neighbours:
                continue
            a = field.series(int(road))
            b = field.series(neighbours[0])
            # Correlate residuals from each road's own daily profile.
            a_resid = a - a.reshape(3, 96).mean(axis=0).repeat(1).tolist() * 3
            b_resid = b - b.reshape(3, 96).mean(axis=0).repeat(1).tolist() * 3
            correlations.append(np.corrcoef(a_resid, b_resid)[0, 1])
        assert np.mean(correlations) > 0.5

    def test_distant_roads_correlate_less(self, simulated):
        net, _, _, field, _ = simulated
        road_ids = net.road_ids()
        near_r, far_r = [], []
        a = field.series(road_ids[0])
        a = a - a.mean()
        within = net.roads_within_hops(road_ids[0], 1)
        mid_a = net.segment_midpoint(road_ids[0])
        for other in road_ids[1:]:
            b = field.series(other)
            b = b - b.mean()
            c = float(np.corrcoef(a, b)[0, 1])
            if other in within:
                near_r.append(c)
            elif net.segment_midpoint(other).distance_to(mid_a) > 1500:
                far_r.append(c)
        assert np.mean(near_r) > np.mean(far_r)

    def test_region_weights_sum_to_one(self, simulated):
        net, _, sim, _, _ = simulated
        for road in net.road_ids()[:10]:
            weights = sim.region_weights_of(road)
            assert sum(weights.values()) == pytest.approx(1.0)

    def test_region_of_is_a_weight_key(self, simulated):
        net, _, sim, _, _ = simulated
        road = net.road_ids()[0]
        assert sim.region_of(road) in sim.region_weights_of(road)

    def test_zero_days_rejected(self, small_network):
        sim = TrafficSimulator(small_network, TimeGrid(15))
        with pytest.raises(DataError):
            sim.simulate(0, 0, seed=1)

    def test_later_day_interval_offsets(self, small_network):
        grid = TimeGrid(15)
        sim = TrafficSimulator(small_network, grid)
        field, _ = sim.simulate(5, 1, seed=3)
        assert field.intervals == range(5 * 96, 6 * 96)


class TestSimulatorParams:
    def test_stationarity_guard(self):
        with pytest.raises(ValueError):
            SimulatorParams(regional_persistence=0.95, regional_coupling=0.1)

    def test_noise_persistence_bounds(self):
        with pytest.raises(ValueError):
            SimulatorParams(road_noise_persistence=1.0)

    def test_region_size_positive(self):
        with pytest.raises(ValueError):
            SimulatorParams(region_size_m=0)
