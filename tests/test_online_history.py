"""Tests for the rolling-window online history."""

import numpy as np
import pytest

from repro.core.errors import DataError
from repro.core.field import SpeedField
from repro.history.online import RollingHistory
from repro.history.store import HistoricalSpeedStore
from repro.history.timebuckets import TimeGrid
from repro.traffic.simulator import TrafficSimulator


@pytest.fixture(scope="module")
def day_fields(small_network):
    grid = TimeGrid(15)
    sim = TrafficSimulator(small_network, grid)
    field, _ = sim.simulate(0, 10, seed=77)
    days = []
    for day in range(10):
        rows = slice(day * 96, (day + 1) * 96)
        days.append(
            SpeedField(field.matrix[rows], field.road_ids, day * 96)
        )
    return grid, days


class TestIngestion:
    def test_empty_state_raises(self, small_network, grid15):
        rolling = RollingHistory(small_network, grid15)
        with pytest.raises(DataError):
            rolling.store
        with pytest.raises(DataError):
            rolling.graph
        assert rolling.newest_day is None

    def test_single_day(self, small_network, day_fields):
        grid, days = day_fields
        rolling = RollingHistory(small_network, grid, window_days=5)
        rolling.ingest_day(days[0])
        assert rolling.num_days == 1
        assert rolling.newest_day == 0
        assert rolling.store.num_training_intervals == 96
        assert rolling.graph.num_roads == small_network.num_segments

    def test_window_eviction(self, small_network, day_fields):
        grid, days = day_fields
        rolling = RollingHistory(small_network, grid, window_days=3)
        for day in days[:6]:
            rolling.ingest_day(day)
        assert rolling.num_days == 3
        assert rolling.is_full
        assert rolling.oldest_day == 3
        assert rolling.newest_day == 5
        assert rolling.store.num_training_intervals == 3 * 96

    def test_store_matches_batch_build(self, small_network, day_fields):
        grid, days = day_fields
        rolling = RollingHistory(small_network, grid, window_days=4)
        for day in days[:4]:
            rolling.ingest_day(day)
        batch = HistoricalSpeedStore.from_fields(grid, days[:4])
        road = small_network.road_ids()[7]
        for bucket in (0, 34, 80):
            assert rolling.store.mean(road, bucket) == pytest.approx(
                batch.mean(road, bucket)
            )

    def test_partial_day_rejected(self, small_network, day_fields):
        grid, days = day_fields
        rolling = RollingHistory(small_network, grid)
        half = SpeedField(days[0].matrix[:48], days[0].road_ids, 0)
        with pytest.raises(DataError, match="exactly one day"):
            rolling.ingest_day(half)

    def test_misaligned_day_rejected(self, small_network, day_fields):
        grid, days = day_fields
        rolling = RollingHistory(small_network, grid)
        shifted = SpeedField(days[0].matrix, days[0].road_ids, 10)
        with pytest.raises(DataError, match="midnight"):
            rolling.ingest_day(shifted)

    def test_gap_rejected(self, small_network, day_fields):
        grid, days = day_fields
        rolling = RollingHistory(small_network, grid)
        rolling.ingest_day(days[0])
        with pytest.raises(DataError, match="non-contiguous"):
            rolling.ingest_day(days[2])

    def test_road_set_change_rejected(self, small_network, day_fields):
        grid, days = day_fields
        rolling = RollingHistory(small_network, grid)
        rolling.ingest_day(days[0])
        fewer = SpeedField(
            days[1].matrix[:, :-1], days[1].road_ids[:-1], days[1].intervals.start
        )
        with pytest.raises(DataError, match="different roads"):
            rolling.ingest_day(fewer)

    def test_validation(self, small_network, grid15):
        with pytest.raises(DataError):
            RollingHistory(small_network, grid15, window_days=0)
        with pytest.raises(DataError):
            RollingHistory(small_network, grid15, remine_every_days=0)


class TestMiningCadence:
    def test_remine_rate_limited(self, small_network, day_fields):
        grid, days = day_fields
        rolling = RollingHistory(
            small_network, grid, window_days=10, remine_every_days=3
        )
        rolling.ingest_day(days[0])
        first_graph = rolling.graph
        assert rolling.mining_epoch == 1
        rolling.ingest_day(days[1])
        rolling.ingest_day(days[2])
        assert rolling.mining_epoch == 1  # not yet due
        rolling.ingest_day(days[3])
        assert rolling.mining_epoch == 2  # 3 days elapsed
        # Incremental mining patches the same graph object in place.
        assert rolling.graph is first_graph
        rolling.verify_incremental()

    def test_remine_rate_limited_batch_mode(self, small_network, day_fields):
        """Batch mode keeps the historical fresh-object-per-remine shape."""
        grid, days = day_fields
        rolling = RollingHistory(
            small_network, grid, window_days=10, remine_every_days=3,
            incremental=False,
        )
        rolling.ingest_day(days[0])
        first_graph = rolling.graph
        rolling.ingest_day(days[1])
        rolling.ingest_day(days[2])
        assert rolling.graph is first_graph  # not yet due
        rolling.ingest_day(days[3])
        assert rolling.graph is not first_graph  # 3 days elapsed

    def test_force_remine(self, small_network, day_fields):
        grid, days = day_fields
        rolling = RollingHistory(
            small_network, grid, window_days=10, remine_every_days=99
        )
        rolling.ingest_day(days[0])
        stale_epoch = rolling.mining_epoch
        rolling.ingest_day(days[1])
        fresh = rolling.force_remine()
        assert rolling.mining_epoch == stale_epoch + 1
        assert rolling.graph is fresh
        rolling.verify_incremental()

    def test_first_day_unknown_roads_rejected(self, small_network, day_fields):
        """Day one is validated against the network, not just day two+."""
        grid, days = day_fields
        rolling = RollingHistory(small_network, grid)
        bogus_ids = list(days[0].road_ids)
        bogus_ids[-1] = 999_999
        bogus = SpeedField(days[0].matrix, tuple(bogus_ids), 0)
        with pytest.raises(DataError, match="not in the network"):
            rolling.ingest_day(bogus)
        # The rejected day must not have been retained.
        assert rolling.num_days == 0
        rolling.ingest_day(days[0])
        assert rolling.num_days == 1

    def test_rolling_feeds_estimator(self, small_network, day_fields):
        """The rolling artefacts plug straight into the pipeline."""
        from repro.core.pipeline import SpeedEstimationSystem

        grid, days = day_fields
        rolling = RollingHistory(small_network, grid, window_days=7)
        for day in days[:7]:
            rolling.ingest_day(day)
        system = SpeedEstimationSystem.from_parts(
            small_network, rolling.store, rolling.graph
        )
        seeds = system.select_seeds(8)
        live = days[7]
        ours, ha = [], []
        for interval in list(live.intervals)[8::12]:
            crowd = {r: live.speed(r, interval) for r in seeds}
            estimates = system.estimate(interval, crowd)
            assert len(estimates) == small_network.num_segments
            truth = live.speeds_at(interval)
            for road in small_network.road_ids():
                if road in crowd:
                    continue
                ours.append(abs(estimates[road].speed_kmh - truth[road]))
                ha.append(
                    abs(rolling.store.historical_speed(road, interval) - truth[road])
                )
        assert np.mean(ours) < np.mean(ha)
