"""Tests for per-class error breakdowns and the metropolis dataset."""

import pytest

from repro.core.errors import DataError
from repro.evalkit.breakdown import errors_by_road_class, worst_roads


class TestErrorsByClass:
    def test_partitions_by_class(self, small_dataset):
        city = small_dataset
        interval = city.test_day_intervals()[30]
        truth = city.test.speeds_at(interval)
        estimates = {
            r: city.store.historical_speed(r, interval)
            for r in city.network.road_ids()
        }
        breakdown = errors_by_road_class(city.network, estimates, truth)
        assert set(breakdown) == set(city.network.class_counts())
        total = sum(e.count for e in breakdown.values())
        assert total == city.network.num_segments

    def test_exclusions_respected(self, small_dataset):
        city = small_dataset
        interval = city.test_day_intervals()[30]
        truth = city.test.speeds_at(interval)
        estimates = dict(truth)
        excluded = set(city.network.road_ids()[:7])
        breakdown = errors_by_road_class(
            city.network, estimates, truth, exclude=excluded
        )
        total = sum(e.count for e in breakdown.values())
        assert total == city.network.num_segments - len(excluded)

    def test_perfect_estimates_zero_error(self, small_dataset):
        city = small_dataset
        interval = city.test_day_intervals()[30]
        truth = city.test.speeds_at(interval)
        breakdown = errors_by_road_class(city.network, dict(truth), truth)
        assert all(e.mae == 0.0 for e in breakdown.values())

    def test_missing_truth_rejected(self, small_dataset):
        city = small_dataset
        road = city.network.road_ids()[0]
        with pytest.raises(DataError, match="no truth"):
            errors_by_road_class(city.network, {road: 30.0}, {})

    def test_everything_excluded_rejected(self, small_dataset):
        city = small_dataset
        road = city.network.road_ids()[0]
        with pytest.raises(DataError, match="no roads"):
            errors_by_road_class(
                city.network, {road: 30.0}, {road: 30.0}, exclude={road}
            )


class TestWorstRoads:
    def test_ordering_and_limit(self):
        estimates = {1: 30.0, 2: 30.0, 3: 30.0}
        truths = {1: 35.0, 2: 31.0, 3: 20.0}
        worst = worst_roads(estimates, truths, limit=2)
        assert worst == [(3, pytest.approx(10.0)), (1, pytest.approx(5.0))]

    def test_validation(self):
        with pytest.raises(DataError):
            worst_roads({1: 30.0}, {1: 30.0}, limit=0)
        with pytest.raises(DataError):
            worst_roads({1: 30.0}, {})


class TestMetropolisDataset:
    def test_builds_with_all_classes(self):
        from repro.datasets.synthetic import synthetic_metropolis

        city = synthetic_metropolis()
        counts = city.network.class_counts()
        assert {"highway", "arterial", "collector", "local"} <= set(counts)
        assert city.graph.num_edges > 0

    def test_pipeline_runs_on_metropolis(self):
        from repro.core.pipeline import SpeedEstimationSystem
        from repro.datasets.synthetic import synthetic_metropolis
        from repro.evalkit.breakdown import errors_by_road_class

        city = synthetic_metropolis()
        system = SpeedEstimationSystem.from_parts(
            city.network, city.store, city.graph
        )
        seeds = system.select_seeds(
            max(1, round(city.network.num_segments * 0.05))
        )
        interval = city.test_day_intervals()[34]
        truth = city.test.speeds_at(interval)
        estimates = system.estimate(interval, {r: truth[r] for r in seeds})
        breakdown = errors_by_road_class(
            city.network,
            {r: e.speed_kmh for r, e in estimates.items()},
            truth,
            exclude=set(seeds),
        )
        # Every class is estimated, with sane error levels.
        for road_class, errors in breakdown.items():
            assert errors.count > 0
            assert errors.mae < 15.0, road_class
