"""Smoke checks that every example script is importable and well-formed.

Full example runs take minutes (they build the full-size cities), so
the test suite verifies the cheap invariants: each script compiles,
imports only available modules, defines ``main``, and is listed in the
README. The examples themselves are executed by CI-style full runs.
"""

import ast
import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXPECTED = {
    "quickstart.py",
    "city_monitoring.py",
    "budget_planning.py",
    "incident_response.py",
    "probe_pipeline.py",
    "route_eta.py",
}


def example_paths():
    return sorted(EXAMPLES_DIR.glob("*.py"))


class TestExampleScripts:
    def test_expected_examples_present(self):
        names = {p.name for p in example_paths()}
        assert EXPECTED <= names

    @pytest.mark.parametrize("path", example_paths(), ids=lambda p: p.name)
    def test_compiles(self, path):
        source = path.read_text()
        compile(source, str(path), "exec")

    @pytest.mark.parametrize("path", example_paths(), ids=lambda p: p.name)
    def test_has_main_and_guard(self, path):
        tree = ast.parse(path.read_text())
        function_names = {
            node.name for node in ast.walk(tree)
            if isinstance(node, ast.FunctionDef)
        }
        assert "main" in function_names, f"{path.name} lacks a main()"
        assert '__main__' in path.read_text(), f"{path.name} lacks a guard"

    @pytest.mark.parametrize("path", example_paths(), ids=lambda p: p.name)
    def test_has_module_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a docstring"

    @pytest.mark.parametrize("path", example_paths(), ids=lambda p: p.name)
    def test_top_level_imports_resolve(self, path):
        tree = ast.parse(path.read_text())
        for node in tree.body:
            modules = []
            if isinstance(node, ast.Import):
                modules = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                modules = [node.module]
            for module in modules:
                assert importlib.util.find_spec(module) is not None, (
                    f"{path.name} imports unavailable module {module}"
                )

    def test_all_examples_in_readme(self):
        readme = (EXAMPLES_DIR.parent / "README.md").read_text()
        for name in EXPECTED:
            assert name in readme, f"{name} missing from README"
