"""Chaos suite: the serving invariants under every infra scenario.

Two invariants, asserted under *every* bundled infrastructure fault
scenario (and a combined custom one):

1. the store never serves garbage — every snapshot it holds verifies
   against its content checksum, versions never move backwards, and
   every answered read carries internally consistent numbers;
2. a reader never sees an exception — every read returns a typed
   :class:`~repro.serving.store.ServedEstimate`, degrading through
   ``fresh -> stale -> baseline`` rather than failing.
"""

import pytest

from repro.core.clock import ManualClock
from repro.core.config import PipelineConfig
from repro.core.pipeline import SpeedEstimationSystem
from repro.crowd.platform import CrowdsourcingPlatform
from repro.crowd.workers import WorkerPool, WorkerPoolParams
from repro.faults import (
    InfraFault,
    InfraInjector,
    InfraScenario,
    bundled_infra_scenarios,
    get_infra_scenario,
)
from repro.serving import (
    CANCELLED,
    CRASHED,
    PUBLISHED,
    EstimateStore,
    SnapshotPublisher,
    StalenessPolicy,
    default_watchdog,
    recover_latest,
)
from repro.speed.uncertainty import UncertaintyModel

SCENARIO_NAMES = sorted(bundled_infra_scenarios())

ANSWERING_STATUSES = ("fresh", "stale", "baseline")


def drive(small_dataset, tmp_path, scenario, rounds=None, seeds=8,
          clock=None, on_round=None):
    """Run the publisher/store stack under ``scenario``; sweep readers
    every round. Returns per-round (report, reads, snapshot_version).

    ``clock`` injects the manual clock (so a caller can share it with
    an SLO engine); ``on_round(i)`` runs after each round's reads,
    before the clock advances — where the serve loop ticks its SLOs.
    """
    clock = clock or ManualClock()
    interval_s = small_dataset.grid.interval_minutes * 60.0
    system = SpeedEstimationSystem.from_parts(
        small_dataset.network,
        small_dataset.store,
        small_dataset.graph,
        PipelineConfig(),
    )
    system.select_seeds(seeds)
    pool = WorkerPool.sample(60, WorkerPoolParams(noise_std_frac=0.10), seed=7)
    platform = CrowdsourcingPlatform(pool, workers_per_task=3)
    store = EstimateStore(
        history=small_dataset.store,
        network=small_dataset.network,
        clock=clock,
        staleness=StalenessPolicy(
            soft_after_s=1.5 * interval_s, hard_after_s=4.0 * interval_s
        ),
    )
    publisher = SnapshotPublisher(
        system,
        store,
        UncertaintyModel(system.estimator, small_dataset.store),
        watchdog=default_watchdog(interval_s, clock=clock),
        clock=clock,
        snapshot_dir=tmp_path,
        injector=InfraInjector(scenario, clock),
    )
    rounds = rounds if rounds is not None else scenario.last_faulty_round + 3
    sweep = small_dataset.network.road_ids()[:20]
    intervals = small_dataset.test_day_intervals()
    rows = []
    for i in range(rounds):
        report = publisher.publish_round(
            intervals[i], small_dataset.test, platform, crowd_seed=i
        )
        reads = store.get_many(sweep)  # must never raise
        snapshot = store.latest()
        if snapshot is not None:
            assert snapshot.verify(), "store is holding a corrupt snapshot"
        rows.append((report, reads, store.version))
        if on_round is not None:
            on_round(i)
        clock.advance(interval_s)
    return rows


def assert_serving_invariants(rows):
    last_version = -1
    for report, reads, version in rows:
        if version is not None:
            assert version >= last_version, "snapshot version went backwards"
            last_version = version
        for road, served in reads.items():
            assert served.road_id == road
            assert served.status in ANSWERING_STATUSES + ("shed", "unavailable")
            if served.answered:
                assert served.speed_kmh >= 0.0
                assert served.lower_kmh <= served.speed_kmh <= served.upper_kmh
                assert served.std_kmh > 0.0


def availability(rows):
    answered = total = 0
    for _, reads, _ in rows:
        for served in reads.values():
            total += 1
            answered += served.status in ANSWERING_STATUSES
    return answered / total


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_invariants_under_every_scenario(name, small_dataset, tmp_path):
    interval_s = small_dataset.grid.interval_minutes * 60.0
    scenario = get_infra_scenario(name, interval_s)
    rows = drive(small_dataset, tmp_path, scenario)
    assert_serving_invariants(rows)
    # With a historical baseline behind the store, every read is
    # answerable no matter what the infrastructure does.
    assert availability(rows) == 1.0


def test_stage_hang_cancels_only_faulty_rounds(small_dataset, tmp_path):
    interval_s = small_dataset.grid.interval_minutes * 60.0
    scenario = get_infra_scenario("stage-hang", interval_s)
    rows = drive(small_dataset, tmp_path, scenario)
    outcomes = [report.outcome for report, _, _ in rows]
    assert outcomes[2] == CANCELLED and outcomes[3] == CANCELLED
    assert outcomes[0] == outcomes[1] == outcomes[4] == PUBLISHED
    # Cancelled rounds leave the store serving the previous snapshot.
    assert rows[2][2] == rows[1][2]


def test_collect_hang_recoverable_within_timeout(small_dataset, tmp_path):
    interval_s = small_dataset.grid.interval_minutes * 60.0
    scenario = get_infra_scenario("collect-hang", interval_s)
    rows = drive(small_dataset, tmp_path, scenario)
    outcomes = [report.outcome for report, _, _ in rows]
    # Half-interval stalls (rounds 1-2) fit inside the collect timeout;
    # the 1.5x-interval stall (round 4) blows the round deadline.
    assert outcomes[1] == outcomes[2] == PUBLISHED
    assert outcomes[4] == CANCELLED
    assert outcomes[5] == PUBLISHED


def test_publisher_crash_keeps_previous_snapshot(small_dataset, tmp_path):
    interval_s = small_dataset.grid.interval_minutes * 60.0
    scenario = get_infra_scenario("publisher-crash", interval_s)
    rows = drive(small_dataset, tmp_path, scenario)
    outcomes = [report.outcome for report, _, _ in rows]
    assert outcomes[2] == outcomes[3] == outcomes[4] == CRASHED
    # Crashed rounds never touched the in-memory store.
    assert rows[2][2] == rows[1][2] == 1
    # Post-fault round publishes and the version is strictly newer.
    assert outcomes[5] == PUBLISHED
    assert rows[5][2] > rows[1][2]


def test_corrupt_snapshots_skipped_on_recovery(small_dataset, tmp_path):
    interval_s = small_dataset.grid.interval_minutes * 60.0
    scenario = get_infra_scenario("snapshot-corruption", interval_s)
    # Stop right after the fault window so the corrupt files are the
    # newest on disk — the case recovery exists for.
    rows = drive(
        small_dataset, tmp_path, scenario,
        rounds=scenario.last_faulty_round + 1,
    )
    corrupted = [report for report, _, _ in rows if report.corrupted]
    assert len(corrupted) == 2  # rounds 2-3 wrote corrupt files
    recovery = recover_latest(tmp_path)
    # Recovery walks newest-first, rejects both corrupt files by
    # checksum, and lands on the newest good snapshot instead.
    assert recovery.snapshot is not None
    assert recovery.snapshot.verify()
    assert len(recovery.corrupt) == 2
    good_versions = {
        report.version for report, _, _ in rows
        if report.outcome == PUBLISHED
    }
    assert recovery.snapshot.version == max(good_versions)


def test_sustained_outage_rides_staleness_ladder(small_dataset, tmp_path):
    interval_s = small_dataset.grid.interval_minutes * 60.0
    scenario = get_infra_scenario("sustained-outage", interval_s)
    rows = drive(small_dataset, tmp_path, scenario)
    statuses = [
        {served.status for served in reads.values()}
        for _, reads, _ in rows
    ]
    assert statuses[0] == {"fresh"}
    # As the outage persists the one pre-outage snapshot ages through
    # the ladder; the exact boundary follows the staleness thresholds.
    assert statuses[2] == {"stale"}
    assert statuses[5] == {"baseline"}
    # First post-outage round goes straight back to fresh.
    assert statuses[7] == {"fresh"}
    assert availability(rows) == 1.0


def test_clock_skew_combined_with_outage(small_dataset, tmp_path):
    """A forward clock jump during an outage ages the snapshot coherently:
    readers land deeper in the staleness ladder, never on garbage."""
    interval_s = small_dataset.grid.interval_minutes * 60.0
    scenario = InfraScenario(
        name="skew-during-outage",
        faults=(
            InfraFault("pipeline_outage", 1, 2),
            InfraFault("clock_skew", 2, 1, seconds=5.0 * interval_s),
        ),
    )
    rows = drive(small_dataset, tmp_path, scenario, rounds=4)
    assert_serving_invariants(rows)
    outcomes = [report.outcome for report, _, _ in rows]
    assert outcomes[0] == PUBLISHED and outcomes[3] == PUBLISHED
    assert outcomes[1] == outcomes[2] == CANCELLED
    # Round 1's read is one interval old: merely soft-stale at worst.
    assert {s.status for s in rows[1][1].values()} <= {"fresh", "stale"}
    # The 5-interval jump at round 2 pushes past the hard threshold.
    assert {s.status for s in rows[2][1].values()} == {"baseline"}


# ----------------------------------------------------------------------
# SLO burn-rate alerting under infrastructure chaos
# ----------------------------------------------------------------------
def _collapse(states):
    """Consecutive duplicates collapsed: the shape of the alert arc."""
    arc = []
    for state in states:
        if not arc or arc[-1] != state:
            arc.append(state)
    return arc


def _drive_with_slos(small_dataset, tmp_path, scenario, rounds):
    from repro.obs import FlightRecorder, SLOEngine, default_serving_slos, recording

    interval_s = small_dataset.grid.interval_minutes * 60.0
    clock = ManualClock()
    recorder = FlightRecorder(ring_size=8192)
    states = []
    with recording(recorder):
        engine = SLOEngine(
            recorder.registry,
            default_serving_slos(interval_s, soft_after_s=1.5 * interval_s),
            clock=clock,
        )
        rows = drive(
            small_dataset, tmp_path, scenario, rounds=rounds,
            clock=clock, on_round=lambda _i: states.append(dict(engine.tick())),
        )
    return rows, states, recorder


def test_sustained_outage_slo_arc(small_dataset, tmp_path):
    """The acceptance arc: availability is ok while the stale snapshot
    still answers, pages when readers fall to the baseline, degrades to
    a warning as the slow window drains after recovery, and ends ok —
    even though every single read was answered (availability == 1.0)."""
    interval_s = small_dataset.grid.interval_minutes * 60.0
    scenario = get_infra_scenario("sustained-outage", interval_s)
    rows, states, recorder = _drive_with_slos(
        small_dataset, tmp_path, scenario, rounds=14
    )
    assert availability(rows) == 1.0  # nobody saw an error...
    arc = _collapse([s["read-availability"] for s in states])
    assert arc == ["ok", "page", "warning", "ok"]  # ...but the SLO paged
    # Every objective has recovered by the end of the run.
    assert all(state == "ok" for state in states[-1].values())
    # The transitions were emitted as structured slo_alert events, and
    # the degraded reads were tail-sampled into read_trace events.
    alerts = [
        e for e in recorder.events
        if e["kind"] == "slo_alert" and e["slo"] == "read-availability"
    ]
    assert [e["state"] for e in alerts] == ["page", "warning", "ok"]
    traced_rungs = {
        e["rung"] for e in recorder.events if e["kind"] == "read_trace"
    }
    assert {"stale", "baseline"} <= traced_rungs


def test_flapping_outage_warns_without_paging(small_dataset, tmp_path):
    """Short blips never exhaust the stale window, so availability
    (fresh-or-stale) stays ok throughout; the stricter degraded-reads
    objective warns on the sustained bleed but never pages."""
    interval_s = small_dataset.grid.interval_minutes * 60.0
    scenario = get_infra_scenario("flapping-outage", interval_s)
    rows, states, _recorder = _drive_with_slos(
        small_dataset, tmp_path, scenario, rounds=14
    )
    assert_serving_invariants(rows)
    assert {s["read-availability"] for s in states} == {"ok"}
    degraded = [s["degraded-reads"] for s in states]
    assert "warning" in degraded
    assert "page" not in degraded
    assert all(state == "ok" for state in states[-1].values())
