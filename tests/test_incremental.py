"""Tests for incremental sliding-window correlation mining.

The load-bearing contract: the incrementally maintained graph is
**exactly** (bit-for-bit, with the default tolerance 0.0) the graph a
from-scratch :func:`~repro.history.correlation.mine_correlation_graph`
would produce on the current window, after any sequence of ingests,
evictions and re-mines. Everything else — delta plumbing, selective
cache eviction — leans on that guarantee.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DataError
from repro.core.field import SpeedField
from repro.history.correlation import (
    CorrelationEdge,
    CorrelationGraph,
    mine_correlation_graph,
)
from repro.history.incremental import (
    EMPTY_DELTA,
    GraphDelta,
    IncrementalCoTrendStats,
    diff_edges,
)
from repro.history.online import RollingHistory
from repro.history.store import HistoricalSpeedStore
from repro.history.timebuckets import TimeGrid
from repro.traffic.simulator import TrafficSimulator


class _StubStore:
    """Just enough store surface for mining: ids + a crafted trend matrix."""

    def __init__(self, road_ids, trends):
        self.road_ids = list(road_ids)
        self._trends = np.asarray(trends)

    def trend_matrix(self):
        return self._trends


def _line_network(num_roads):
    from repro.roadnet.geometry import Point
    from repro.roadnet.network import RoadNetwork

    net = RoadNetwork()
    for node in range(num_roads + 1):
        net.add_intersection(node, Point(100.0 * node, 0))
    for road in range(num_roads):
        net.add_segment(road, road, road + 1)
    return net


def _graph_weights(graph):
    return {(e.road_u, e.road_v): e.agreement for e in graph.edges()}


def _assert_graphs_equal(actual, expected):
    assert actual.road_ids == expected.road_ids
    assert _graph_weights(actual) == _graph_weights(expected)


# ----------------------------------------------------------------------
# GraphDelta + diff_edges
# ----------------------------------------------------------------------
class TestGraphDelta:
    def test_empty(self):
        assert EMPTY_DELTA.is_empty
        assert EMPTY_DELTA.num_changes == 0
        assert EMPTY_DELTA.touched_roads() == ()

    def test_touched_roads_sorted_union(self):
        delta = GraphDelta(
            added=(CorrelationEdge(5, 9, 0.8),),
            removed=((1, 2),),
            reweighted=(CorrelationEdge(2, 5, 0.7),),
        )
        assert delta.touched_roads() == (1, 2, 5, 9)
        assert delta.num_changes == 3
        assert not delta.is_empty

    def test_diff_identifies_each_change_kind(self):
        graph = CorrelationGraph(
            [1, 2, 3, 4],
            [
                CorrelationEdge(1, 2, 0.9),
                CorrelationEdge(2, 3, 0.7),
            ],
        )
        mined = [
            CorrelationEdge(1, 2, 0.9),  # unchanged
            CorrelationEdge(2, 3, 0.8),  # reweighted
            CorrelationEdge(3, 4, 0.65),  # added
            # (nothing for a removed edge — none mined)
        ]
        delta = diff_edges(graph, mined)
        assert [(e.road_u, e.road_v) for e in delta.added] == [(3, 4)]
        assert delta.removed == ()
        assert [(e.road_u, e.road_v, e.agreement) for e in delta.reweighted] == [
            (2, 3, 0.8)
        ]

    def test_diff_reports_removals(self):
        graph = CorrelationGraph(
            [1, 2, 3], [CorrelationEdge(1, 2, 0.9), CorrelationEdge(2, 3, 0.7)]
        )
        delta = diff_edges(graph, [CorrelationEdge(1, 2, 0.9)])
        assert delta.removed == ((2, 3),)
        assert delta.added == () and delta.reweighted == ()

    def test_tolerance_suppresses_small_drift(self):
        graph = CorrelationGraph([1, 2], [CorrelationEdge(1, 2, 0.80)])
        drifted = [CorrelationEdge(1, 2, 0.805)]
        assert diff_edges(graph, drifted, tolerance=0.01).is_empty
        moved = diff_edges(graph, drifted, tolerance=0.001)
        assert [e.agreement for e in moved.reweighted] == [0.805]

    def test_tolerance_never_suppresses_presence_changes(self):
        graph = CorrelationGraph([1, 2, 3], [CorrelationEdge(1, 2, 0.8)])
        delta = diff_edges(graph, [CorrelationEdge(2, 3, 0.8)], tolerance=9.0)
        assert delta.removed == ((1, 2),)
        assert [(e.road_u, e.road_v) for e in delta.added] == [(2, 3)]

    def test_negative_tolerance_rejected(self):
        graph = CorrelationGraph([1, 2], [])
        with pytest.raises(DataError, match="tolerance"):
            diff_edges(graph, [], tolerance=-0.1)


class TestApplyDelta:
    def _graph(self):
        return CorrelationGraph(
            [1, 2, 3, 4],
            [
                CorrelationEdge(1, 2, 0.9),
                CorrelationEdge(2, 3, 0.7),
                CorrelationEdge(1, 3, 0.8),
            ],
        )

    def test_apply_reaches_fresh_mining_state(self):
        graph = self._graph()
        mined = [
            CorrelationEdge(1, 2, 0.95),
            CorrelationEdge(1, 3, 0.8),
            CorrelationEdge(3, 4, 0.62),
        ]
        graph.apply_delta(diff_edges(graph, mined))
        _assert_graphs_equal(graph, CorrelationGraph([1, 2, 3, 4], mined))

    def test_apply_preserves_identity_and_adjacency_order(self):
        graph = self._graph()
        before = id(graph)
        graph.apply_delta(
            diff_edges(graph, [CorrelationEdge(1, 2, 0.6), CorrelationEdge(2, 3, 0.7)])
        )
        assert id(graph) == before
        # Adjacency stays sorted strongest-first after a reweight.
        assert [e.agreement for e in graph.neighbours(2)] == [0.7, 0.6]
        assert graph.agreement(1, 3) is None

    def test_apply_empty_delta_is_noop(self):
        graph = self._graph()
        before = _graph_weights(graph)
        graph.apply_delta(EMPTY_DELTA)
        assert _graph_weights(graph) == before

    def test_remove_absent_edge_rejected(self):
        with pytest.raises(DataError, match="remove absent"):
            self._graph().apply_delta(
                GraphDelta(added=(), removed=((1, 4),), reweighted=())
            )

    def test_add_duplicate_edge_rejected(self):
        with pytest.raises(DataError, match="duplicate"):
            self._graph().apply_delta(
                GraphDelta(
                    added=(CorrelationEdge(1, 2, 0.5),), removed=(), reweighted=()
                )
            )

    def test_add_unknown_road_rejected(self):
        with pytest.raises(DataError, match="unknown road"):
            self._graph().apply_delta(
                GraphDelta(
                    added=(CorrelationEdge(1, 9, 0.5),), removed=(), reweighted=()
                )
            )

    def test_reweight_absent_edge_rejected(self):
        with pytest.raises(DataError, match="reweight absent"):
            self._graph().apply_delta(
                GraphDelta(
                    added=(), removed=(), reweighted=(CorrelationEdge(1, 4, 0.5),)
                )
            )


# ----------------------------------------------------------------------
# IncrementalCoTrendStats
# ----------------------------------------------------------------------
class TestCoTrendStats:
    def test_pair_set_matches_batch_candidates(self):
        net = _line_network(4)
        stats = IncrementalCoTrendStats(net, [0, 1, 2, 3], max_hops=2)
        # Line adjacency at 2 hops: (0,1),(0,2),(1,2),(1,3),(2,3).
        assert stats.num_pairs == 5

    def test_reset_then_mine_equals_batch(self):
        rng = np.random.default_rng(3)
        trends = rng.choice([-1, 1], size=(48, 5)).astype(np.int8)
        net = _line_network(5)
        stats = IncrementalCoTrendStats(net, [0, 1, 2, 3, 4], max_hops=2)
        stats.reset(trends)
        mined = CorrelationGraph(
            [0, 1, 2, 3, 4], stats.mine_edges(min_agreement=0.5)
        )
        batch = mine_correlation_graph(
            net, _StubStore([0, 1, 2, 3, 4], trends), max_hops=2, min_agreement=0.5
        )
        _assert_graphs_equal(mined, batch)

    def test_advance_equals_rebuild_with_zero_trends(self):
        # Sliding updates over matrices *with zeros* must track a fresh
        # rebuild exactly — the masked formula and support guard run on
        # identical counts.
        rng = np.random.default_rng(9)
        net = _line_network(6)
        roads = list(range(6))
        stats = IncrementalCoTrendStats(net, roads, max_hops=2)
        window = rng.choice([-1, 0, 1], size=(24, 6), p=[0.4, 0.2, 0.4]).astype(
            np.int8
        )
        stats.reset(window)
        for step in range(6):
            evict = int(rng.integers(0, 9))
            retained = window[evict:]
            fresh_rows = rng.choice(
                [-1, 0, 1], size=(8, 6), p=[0.4, 0.2, 0.4]
            ).astype(np.int8)
            window = np.vstack([retained, fresh_rows])
            # Bucket-mean drift: occasionally flip a retained entry.
            if step % 2:
                window[0, step % 6] *= -1
            stats.advance(window, evict)
            mined = CorrelationGraph(
                roads, stats.mine_edges(min_agreement=0.5, min_valid_fraction=0.1)
            )
            batch = mine_correlation_graph(
                net,
                _StubStore(roads, window),
                max_hops=2,
                min_agreement=0.5,
                min_valid_fraction=0.1,
            )
            _assert_graphs_equal(mined, batch)

    def test_mine_before_reset_rejected(self):
        stats = IncrementalCoTrendStats(_line_network(2), [0, 1])
        with pytest.raises(DataError, match="no window"):
            stats.mine_edges()

    def test_bad_shapes_rejected(self):
        stats = IncrementalCoTrendStats(_line_network(2), [0, 1])
        with pytest.raises(DataError, match="does not cover"):
            stats.reset(np.ones((4, 3), dtype=np.int8))
        stats.reset(np.ones((4, 2), dtype=np.int8))
        with pytest.raises(DataError, match="evicted_rows"):
            stats.advance(np.ones((4, 2), dtype=np.int8), evicted_rows=5)
        with pytest.raises(DataError, match="shrank"):
            stats.advance(np.ones((2, 2), dtype=np.int8), evicted_rows=0)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_counts_equal_fresh_rebuild(self, data):
        """Property: any advance sequence == reset on the final window."""
        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        num_roads = data.draw(st.integers(2, 6))
        net = _line_network(num_roads)
        roads = list(range(num_roads))
        incremental = IncrementalCoTrendStats(net, roads, max_hops=2)

        def rows(n):
            return rng.choice(
                [-1, 0, 1], size=(n, num_roads), p=[0.45, 0.1, 0.45]
            ).astype(np.int8)

        window = rows(data.draw(st.integers(1, 12)))
        incremental.reset(window)
        for _ in range(data.draw(st.integers(1, 5))):
            evict = data.draw(st.integers(0, window.shape[0]))
            grow = data.draw(st.integers(0, 8))
            retained = window[evict:].copy()
            if retained.size and data.draw(st.booleans()):
                # Simulated bucket-mean drift flips a retained entry.
                i = data.draw(st.integers(0, retained.shape[0] - 1))
                j = data.draw(st.integers(0, num_roads - 1))
                retained[i, j] = -retained[i, j] if retained[i, j] else 1
            window = np.vstack([retained, rows(grow)])
            if window.shape[0] == 0:
                window = rows(1)
            incremental.advance(window, evict)
            fresh = IncrementalCoTrendStats(net, roads, max_hops=2)
            fresh.reset(window)
            np.testing.assert_array_equal(incremental._same, fresh._same)
            np.testing.assert_array_equal(incremental._valid, fresh._valid)


# ----------------------------------------------------------------------
# RollingHistory end to end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sim_days(small_network):
    grid = TimeGrid(15)
    sim = TrafficSimulator(small_network, grid)
    field, _ = sim.simulate(0, 12, seed=41)
    days = [
        SpeedField(field.matrix[day * 96 : (day + 1) * 96], field.road_ids, day * 96)
        for day in range(12)
    ]
    return grid, days


class TestRollingIncremental:
    def test_every_window_state_equals_batch(self, small_network, sim_days):
        grid, days = sim_days
        rolling = RollingHistory(
            small_network, grid, window_days=4, remine_every_days=1
        )
        for day in days[:9]:
            rolling.ingest_day(day)
            rolling.verify_incremental()
            batch = mine_correlation_graph(
                small_network, rolling.store, max_hops=2, min_agreement=0.6
            )
            _assert_graphs_equal(rolling.graph, batch)

    def test_graph_object_is_stable_across_remines(self, small_network, sim_days):
        grid, days = sim_days
        rolling = RollingHistory(
            small_network, grid, window_days=3, remine_every_days=1
        )
        rolling.ingest_day(days[0])
        graph = rolling.graph
        for day in days[1:7]:
            rolling.ingest_day(day)
            assert rolling.graph is graph

    def test_delta_listener_sees_every_remine(self, small_network, sim_days):
        grid, days = sim_days
        rolling = RollingHistory(
            small_network, grid, window_days=3, remine_every_days=2
        )
        seen = []
        rolling.add_delta_listener(lambda graph, delta: seen.append(delta))
        for day in days[:7]:
            rolling.ingest_day(day)
        # 7 ingests: mine at day 1 (bootstrap, no delta), then every 2.
        assert rolling.mining_epoch == 4
        assert len(seen) == 3
        for delta in seen:
            assert isinstance(delta, GraphDelta)

    def test_last_delta_matches_batch_difference(self, small_network, sim_days):
        grid, days = sim_days
        rolling = RollingHistory(
            small_network, grid, window_days=3, remine_every_days=1
        )
        rolling.ingest_day(days[0])
        before = _graph_weights(rolling.graph)
        rolling.ingest_day(days[1])
        after = _graph_weights(rolling.graph)
        delta = rolling.last_delta
        assert delta is not None
        for edge in delta.added:
            key = (edge.road_u, edge.road_v)
            assert key not in before and after[key] == edge.agreement
        for key in delta.removed:
            assert key in before and key not in after
        for edge in delta.reweighted:
            key = (edge.road_u, edge.road_v)
            assert before[key] != after[key] == edge.agreement

    def test_delta_tolerance_keeps_old_weights(self, small_network, sim_days):
        grid, days = sim_days
        tolerant = RollingHistory(
            small_network,
            grid,
            window_days=3,
            remine_every_days=1,
            delta_tolerance=1.0,
        )
        for day in days[:5]:
            tolerant.ingest_day(day)
            # Weight drift never exceeds tolerance 1.0, so surviving
            # edges keep their first-mined weights; presence changes
            # still apply. The tolerant graph must stay within the
            # guarantee verify_incremental states.
            tolerant.verify_incremental()
            delta = tolerant.last_delta
            if delta is not None:
                assert delta.reweighted == ()

    def test_batch_and_incremental_modes_agree(self, small_network, sim_days):
        grid, days = sim_days
        inc = RollingHistory(
            small_network, grid, window_days=4, remine_every_days=2
        )
        batch = RollingHistory(
            small_network,
            grid,
            window_days=4,
            remine_every_days=2,
            incremental=False,
        )
        for day in days[:8]:
            inc.ingest_day(day)
            batch.ingest_day(day)
            _assert_graphs_equal(inc.graph, batch.graph)

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_arbitrary_ingest_sequences_stay_differential(
        self, data, tiny_network
    ):
        """Property: ingest/evict/force_remine interleavings never drift.

        Covers window shrink-to-refill: windows as small as 1 day evict
        on every ingest, then refill from scratch relative to their
        bucket statistics.
        """
        grid = TimeGrid(15)
        sim = TrafficSimulator(tiny_network, grid)
        field, _ = sim.simulate(0, 8, seed=data.draw(st.integers(0, 10_000)))
        days = [
            SpeedField(
                field.matrix[day * 96 : (day + 1) * 96], field.road_ids, day * 96
            )
            for day in range(8)
        ]
        rolling = RollingHistory(
            tiny_network,
            grid,
            window_days=data.draw(st.integers(1, 4)),
            remine_every_days=data.draw(st.integers(1, 3)),
        )
        num_days = data.draw(st.integers(2, 8))
        for day in days[:num_days]:
            rolling.ingest_day(day)
            if data.draw(st.booleans()):
                rolling.force_remine()
        rolling.force_remine()
        rolling.verify_incremental()
        batch = mine_correlation_graph(
            tiny_network, rolling.store, max_hops=2, min_agreement=0.6
        )
        _assert_graphs_equal(rolling.graph, batch)
