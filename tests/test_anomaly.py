"""Tests for congestion-anomaly detection."""

import numpy as np
import pytest

from repro.core.anomaly import (
    AnomalyScore,
    CongestionAnomalyDetector,
    precision_at_k,
)
from repro.core.errors import InferenceError
from repro.core.field import SpeedField
from repro.core.pipeline import SpeedEstimationSystem
from repro.traffic.events import CongestionEvent, render_event_factors


@pytest.fixture(scope="module")
def system_and_rounds(small_dataset):
    city = small_dataset
    system = SpeedEstimationSystem.from_parts(
        city.network, city.store, city.graph
    )
    seeds = system.select_seeds(12)
    intervals = city.test_day_intervals()
    return city, system, seeds, intervals


def estimates_at(city, system, seeds, truth_field, interval):
    crowd = {r: truth_field.speed(r, interval) for r in seeds}
    return system.estimate(interval, crowd)


class TestDetectorBasics:
    def test_requires_reference(self, system_and_rounds):
        city, system, seeds, intervals = system_and_rounds
        detector = CongestionAnomalyDetector(city.store)
        estimates = estimates_at(city, system, seeds, city.test, intervals[40])
        with pytest.raises(InferenceError, match="reference"):
            detector.score_round(estimates)
        detector.update_reference(estimates)
        assert detector.has_reference

    def test_calm_rounds_yield_few_alerts(self, system_and_rounds):
        city, system, seeds, intervals = system_and_rounds
        detector = CongestionAnomalyDetector(city.store, min_score=0.15)
        first = estimates_at(city, system, seeds, city.test, intervals[40])
        detector.update_reference(first)
        second = estimates_at(city, system, seeds, city.test, intervals[41])
        alerts = detector.score_round(second)
        # Consecutive calm intervals: few roads shift much.
        assert len(alerts) < city.network.num_segments * 0.25

    def test_scores_sorted_descending(self, system_and_rounds):
        city, system, seeds, intervals = system_and_rounds
        detector = CongestionAnomalyDetector(city.store, min_score=0.0)
        first = estimates_at(city, system, seeds, city.test, intervals[40])
        detector.update_reference(first)
        alerts = detector.score_round(
            estimates_at(city, system, seeds, city.test, intervals[42])
        )
        values = [a.score for a in alerts]
        assert values == sorted(values, reverse=True)

    def test_top_alerts_limit(self, system_and_rounds):
        city, system, seeds, intervals = system_and_rounds
        detector = CongestionAnomalyDetector(city.store, min_score=0.0)
        first = estimates_at(city, system, seeds, city.test, intervals[40])
        detector.update_reference(first)
        second = estimates_at(city, system, seeds, city.test, intervals[41])
        assert len(detector.top_alerts(second, limit=5)) <= 5
        with pytest.raises(InferenceError):
            detector.top_alerts(second, limit=0)

    def test_validation(self, small_dataset):
        with pytest.raises(InferenceError):
            CongestionAnomalyDetector(small_dataset.store, lift_weight=-1)
        with pytest.raises(InferenceError):
            CongestionAnomalyDetector(
                small_dataset.store, lift_weight=0, gap_weight=0
            )
        with pytest.raises(InferenceError):
            AnomalyScore(1, 0, -0.5, 0.0, 0.0)


class TestIncidentDetection:
    def test_detects_injected_incident(self, system_and_rounds):
        """An incident around a seed road dominates the alert ranking."""
        city, system, seeds, intervals = system_and_rounds
        interval = intervals[50]

        detector = CongestionAnomalyDetector(city.store, min_score=0.0)
        baseline = estimates_at(city, system, seeds, city.test, interval)
        detector.update_reference(baseline)

        # Inject a severe incident centred on the best-connected seed.
        centre = max(seeds, key=city.graph.degree)
        affected = city.network.roads_within_hops(centre, 2)
        severities = {
            road: max(0.05, 0.7 * (1.0 - hops / 3.0))
            for road, hops in affected.items()
        }
        event = CongestionEvent("incident", interval, interval + 1, severities)
        road_index = {r: i for i, r in enumerate(city.test.road_ids)}
        factors = render_event_factors(
            [event], road_index, city.test.intervals
        )
        perturbed = SpeedField(
            city.test.matrix * factors,
            city.test.road_ids,
            city.test.intervals.start,
        )

        estimates = estimates_at(city, system, seeds, perturbed, interval)
        alerts = detector.score_round(estimates)
        anomalous = set(affected)
        k = len(anomalous)
        precision = precision_at_k(alerts, anomalous, k)
        base_rate = len(anomalous) / city.network.num_segments
        # Strong enrichment over random ranking (the affected set spans
        # a large fraction of the small test city, so cap the multiple).
        assert precision > min(0.8, 2 * base_rate)
        # The observed seed itself tops (or nearly tops) the list.
        top_ids = [a.road_id for a in alerts[:5]]
        assert centre in top_ids


class TestPrecisionAtK:
    def test_arithmetic(self):
        alerts = [
            AnomalyScore(road_id=r, interval=0, score=1.0 - 0.1 * i,
                         trend_lift=0.0, speed_gap=0.0)
            for i, r in enumerate([5, 7, 9, 11])
        ]
        assert precision_at_k(alerts, {5, 9}, 2) == 0.5
        assert precision_at_k(alerts, {5, 7}, 2) == 1.0
        assert precision_at_k([], {1}, 3) == 0.0
        with pytest.raises(InferenceError):
            precision_at_k(alerts, {5}, 0)
