"""Unit tests for the historical speed store."""

import numpy as np
import pytest

from repro.core.errors import DataError
from repro.core.field import SpeedField
from repro.core.types import Trend
from repro.history.store import HistoricalSpeedStore
from repro.history.timebuckets import TimeGrid


@pytest.fixture(scope="module")
def store(small_dataset):
    return small_dataset.store


class TestConstruction:
    def test_from_fields_shape(self, small_dataset, store):
        assert store.num_roads == small_dataset.network.num_segments
        assert store.num_training_intervals == 7 * 96

    def test_empty_fields_rejected(self, grid15):
        with pytest.raises(DataError):
            HistoricalSpeedStore.from_fields(grid15, [])

    def test_mismatched_roads_rejected(self, grid15):
        a = SpeedField(np.ones((96, 2)) * 30, [1, 2], 0)
        b = SpeedField(np.ones((96, 3)) * 30, [1, 2, 3], 96)
        with pytest.raises(DataError, match="same roads"):
            HistoricalSpeedStore.from_fields(grid15, [a, b])

    def test_overlapping_fields_rejected(self, grid15):
        a = SpeedField(np.ones((96, 2)) * 30, [1, 2], 0)
        b = SpeedField(np.ones((96, 2)) * 30, [1, 2], 48)
        with pytest.raises(DataError, match="overlap"):
            HistoricalSpeedStore.from_fields(grid15, [a, b])

    def test_multiple_fields_concatenate(self, grid15):
        a = SpeedField(np.full((96, 1), 30.0), [7], 0)
        b = SpeedField(np.full((96, 1), 40.0), [7], 96)
        merged = HistoricalSpeedStore.from_fields(grid15, [b, a])  # any order
        assert merged.num_training_intervals == 192
        assert merged.mean(7, 0) == pytest.approx(35.0)

    def test_shape_mismatch_rejected(self, grid15):
        with pytest.raises(DataError):
            HistoricalSpeedStore(grid15, [1, 2], np.ones((5, 3)), np.arange(5))


class TestStatistics:
    def test_mean_matches_manual(self, small_dataset, store):
        road = small_dataset.network.road_ids()[3]
        series = small_dataset.history.series(road)
        bucket = 34
        manual = series.reshape(7, 96)[:, bucket].mean()
        assert store.mean(road, bucket) == pytest.approx(manual)

    def test_std_matches_manual(self, small_dataset, store):
        road = small_dataset.network.road_ids()[3]
        series = small_dataset.history.series(road)
        bucket = 70
        manual = series.reshape(7, 96)[:, bucket].std()
        assert store.std(road, bucket) == pytest.approx(manual, abs=1e-9)

    def test_bucket_count(self, store):
        assert store.bucket_count(0) == 7

    def test_historical_speed_uses_bucket(self, store, grid15):
        road = store.road_ids[0]
        assert store.historical_speed(road, 10) == store.mean(road, 10)
        assert store.historical_speed(road, 96 + 10) == store.mean(road, 10)

    def test_mean_row_order(self, store):
        row = store.mean_row(34)
        for i, road in enumerate(store.road_ids[:5]):
            assert row[i] == store.mean(road, 34)

    def test_rise_prior_clipped(self, store):
        for road in store.road_ids[:10]:
            for bucket in (0, 34, 68):
                assert 0.05 <= store.rise_prior(road, bucket) <= 0.95

    def test_unknown_road_raises(self, store):
        with pytest.raises(DataError):
            store.mean(999999, 0)


class TestDerived:
    def test_trend_definition(self, store):
        road = store.road_ids[0]
        mean = store.historical_speed(road, 50)
        assert store.trend_of(road, 50, mean + 1) is Trend.RISE
        assert store.trend_of(road, 50, mean) is Trend.RISE  # tie -> RISE
        assert store.trend_of(road, 50, mean - 1) is Trend.FALL

    def test_deviation_ratio(self, store):
        road = store.road_ids[0]
        mean = store.historical_speed(road, 50)
        assert store.deviation_ratio(road, 50, mean) == pytest.approx(1.0)
        assert store.deviation_ratio(road, 50, mean * 1.2) == pytest.approx(1.2)

    def test_trend_matrix_consistent_with_trend_of(self, small_dataset, store):
        trends = store.trend_matrix()
        road = store.road_ids[4]
        col = store.road_column(road)
        for row, interval in enumerate(store.training_intervals[:20]):
            speed = small_dataset.history.speed(road, int(interval))
            expected = store.trend_of(road, int(interval), speed)
            assert trends[row, col] == int(expected)

    def test_deviation_matrix_mean_near_one(self, store):
        deviations = store.deviation_matrix()
        assert deviations.mean() == pytest.approx(1.0, abs=0.02)

    def test_trend_matrix_is_signs(self, store):
        trends = store.trend_matrix()
        assert set(np.unique(trends)) <= {-1, 1}

    def test_bucket_rows_partition(self, store, grid15):
        total = sum(store.bucket_rows(b).sum() for b in range(grid15.num_buckets))
        assert total == store.num_training_intervals
