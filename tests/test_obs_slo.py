"""Tests for repro.obs SLOs: burn-rate engine, quantiles, tracer, dashboard."""

import json
import math

import pytest

from repro.core.clock import ManualClock
from repro.core.errors import ConfigError, DataError
from repro.obs import (
    ALERT_LEVEL,
    OK,
    PAGE,
    SLO,
    SLO_ALERT_EVENT,
    WARNING,
    BurnWindow,
    CounterRatioSLI,
    FlightRecorder,
    HistogramThresholdSLI,
    MetricsRegistry,
    MetricsView,
    ReadTracer,
    SLOEngine,
    default_serving_slos,
    recording,
    render_dashboard,
    worst_rung,
)
from repro.obs.registry import quantile_from_cumulative


# ----------------------------------------------------------------------
# Histogram quantiles
# ----------------------------------------------------------------------
class TestQuantile:
    def test_empty_window_is_nan(self):
        assert math.isnan(quantile_from_cumulative((1.0, 2.0), [0, 0, 0], 0.5))
        assert math.isnan(MetricsRegistry().histogram("h").quantile(0.99))

    def test_interpolates_inside_first_bucket(self):
        # 10 observations all in (0, 10]: the median interpolates to 5.
        assert quantile_from_cumulative((10.0,), [10, 10], 0.5) == pytest.approx(5.0)

    def test_interpolates_between_bounds(self):
        # 5 in (0,10], 5 in (10,20]: p75 sits mid-second-bucket.
        assert quantile_from_cumulative(
            (10.0, 20.0), [5, 10, 10], 0.75
        ) == pytest.approx(15.0)

    def test_overflow_clamps_to_last_bound(self):
        # Everything beyond the finite buckets: all we know is "> max".
        assert quantile_from_cumulative((10.0, 20.0), [0, 0, 5], 0.99) == 20.0

    def test_histogram_method_matches_function(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        for value in (0.5, 0.5, 1.5, 1.5):
            hist.observe(value)
        assert hist.quantile(0.5) == pytest.approx(
            quantile_from_cumulative((1.0, 2.0), [2, 4, 4], 0.5)
        )

    @pytest.mark.parametrize("q", [-0.1, 1.5])
    def test_rejects_out_of_range_q(self, q):
        with pytest.raises(ConfigError):
            quantile_from_cumulative((1.0,), [1, 1], q)


# ----------------------------------------------------------------------
# Read tracer
# ----------------------------------------------------------------------
class TestReadTracer:
    def test_rejects_bad_sample_every(self):
        with pytest.raises(ConfigError):
            ReadTracer(sample_every=0)

    def test_worst_rung_ordering(self):
        assert worst_rung({"fresh": 3}) == "fresh"
        assert worst_rung(["fresh", "baseline", "stale"]) == "baseline"
        assert worst_rung(["baseline", "shed"]) == "shed"
        # Unknown statuses are treated as worse than anything known.
        assert worst_rung(["fresh", "weird"]) == "weird"

    def test_healthy_reads_sampled_every_nth(self):
        rec = FlightRecorder()
        tracer = ReadTracer(sample_every=3)
        ids = [
            tracer.record_read(rec, {"fresh": 2}, 0.001, 1, 0.0)
            for _ in range(6)
        ]
        # Slots 0 and 3 are recorded; ids keep counting regardless.
        assert ids == [1, None, None, 4, None, None]
        events = [e for e in rec.events if e["kind"] == "read_trace"]
        assert [e["trace_id"] for e in events] == [1, 4]
        assert all(e["sampled"] == "interval" for e in events)
        assert rec.registry.counter("serving.traces", recorded="true").value == 2
        assert rec.registry.counter("serving.traces", recorded="false").value == 4

    def test_degraded_reads_always_tail_sampled(self):
        rec = FlightRecorder()
        tracer = ReadTracer(sample_every=1000)
        for counts in ({"fresh": 1, "stale": 1}, {"baseline": 2}, {"shed": 3}):
            assert tracer.record_read(rec, counts, 0.0, 0, 10.0) is not None
        events = [e for e in rec.events if e["kind"] == "read_trace"]
        assert [e["rung"] for e in events] == ["stale", "baseline", "shed"]
        assert all(e["sampled"] == "tail" for e in events)

    def test_breaker_open_forces_tail_sample(self):
        rec = FlightRecorder()
        tracer = ReadTracer(sample_every=1000)
        tracer.record_read(rec, {"fresh": 1}, 0.0, 0, 0.0)  # slot 0: recorded
        assert (
            tracer.record_read(rec, {"fresh": 1}, 0.0, 0, 0.0, breaker_open=True)
            is not None
        )
        assert rec.events[-1]["sampled"] == "tail"
        assert rec.events[-1]["breaker_open"] is True


# ----------------------------------------------------------------------
# SLIs
# ----------------------------------------------------------------------
class TestCounterRatioSLI:
    def test_good_over_total_by_label(self):
        reg = MetricsRegistry()
        reg.counter("serving.reads", status="fresh").inc(70)
        reg.counter("serving.reads", status="stale").inc(20)
        reg.counter("serving.reads", status="baseline").inc(10)
        sli = CounterRatioSLI("serving.reads", "status", good=("fresh", "stale"))
        assert sli.sample(reg) == (90.0, 100.0)

    def test_explicit_total_restricts_denominator(self):
        reg = MetricsRegistry()
        reg.counter("reads", status="fresh").inc(5)
        reg.counter("reads", status="shed").inc(5)
        sli = CounterRatioSLI(
            "reads", "status", good=("fresh",), total=("fresh",)
        )
        assert sli.sample(reg) == (5.0, 5.0)

    def test_needs_a_good_label(self):
        with pytest.raises(ConfigError):
            CounterRatioSLI("reads", "status", good=())


class TestHistogramThresholdSLI:
    def test_counts_observations_at_or_below_threshold(self):
        reg = MetricsRegistry()
        hist = reg.histogram("age", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 9.0):
            hist.observe(value)
        assert HistogramThresholdSLI("age", 2.0).sample(reg) == (3.0, 5.0)

    def test_threshold_below_first_bound_counts_nothing_good(self):
        reg = MetricsRegistry()
        reg.histogram("age", buckets=(1.0,)).observe(0.5)
        assert HistogramThresholdSLI("age", 0.1).sample(reg) == (0.0, 1.0)

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ConfigError):
            HistogramThresholdSLI("age", 0.0)


# ----------------------------------------------------------------------
# SLO / engine
# ----------------------------------------------------------------------
def _one_slo(fast_s=1.0, slow_s=4.0):
    return SLO(
        name="availability",
        sli=CounterRatioSLI("reads", "status", good=("good",)),
        target=0.9,
        fast=BurnWindow(window_s=fast_s, threshold=10.0, state=PAGE),
        slow=BurnWindow(window_s=slow_s, threshold=2.0, state=WARNING),
    )


class TestSLOValidation:
    def test_burn_window_validation(self):
        with pytest.raises(ConfigError):
            BurnWindow(window_s=0.0, threshold=1.0)
        with pytest.raises(ConfigError):
            BurnWindow(window_s=1.0, threshold=0.0)
        with pytest.raises(ConfigError):
            BurnWindow(window_s=1.0, threshold=1.0, state=OK)
        with pytest.raises(ConfigError):
            BurnWindow(window_s=1.0, threshold=1.0, min_events=0)

    @pytest.mark.parametrize("target", [0.0, 1.0, 1.5])
    def test_target_must_leave_a_budget(self, target):
        with pytest.raises(ConfigError):
            SLO(
                name="x",
                sli=CounterRatioSLI("r", "s", good=("g",)),
                target=target,
                fast=BurnWindow(1.0, 10.0),
                slow=BurnWindow(4.0, 2.0, state=WARNING),
            )

    def test_fast_window_must_not_outlast_slow(self):
        with pytest.raises(ConfigError, match="fast window"):
            _one_slo(fast_s=8.0, slow_s=4.0)

    def test_budget_is_one_minus_target(self):
        assert _one_slo().budget == pytest.approx(0.1)

    def test_engine_rejects_duplicates_and_emptiness(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError, match="at least one"):
            SLOEngine(reg, [])
        with pytest.raises(ConfigError, match="duplicate"):
            SLOEngine(reg, [_one_slo(), _one_slo()])


class TestSLOEngine:
    def test_burn_arc_ok_page_warning_ok(self):
        """The canonical alert arc: total breakage pages via the fast
        window, then degrades to a warning while the slow window drains,
        then clears — all on cumulative counters and a manual clock."""
        clock = ManualClock()
        rec = FlightRecorder()
        with recording(rec):
            reg = rec.registry
            engine = SLOEngine(reg, [_one_slo()], clock=clock)
            good = reg.counter("reads", status="good")
            bad = reg.counter("reads", status="bad")

            assert engine.tick() == {"availability": OK}  # t=0: no window yet
            clock.advance(1.0)
            good.inc(10)
            assert engine.tick() == {"availability": OK}  # t=1: all good
            clock.advance(1.0)
            bad.inc(20)  # total breakage inside the fast window
            assert engine.tick() == {"availability": PAGE}
            status = engine.statuses()["availability"]
            assert status.burn_fast == pytest.approx(10.0)
            assert status.good == 10.0 and status.total == 30.0
            clock.advance(1.0)
            # t=3: the fast window saw no new events, the slow window is
            # still digesting the breakage.
            assert engine.tick() == {"availability": WARNING}
            for _ in range(3):
                clock.advance(1.0)
                good.inc(30)
                states = engine.tick()
            assert states == {"availability": OK}
            assert engine.worst_state() == OK

        # Each transition emitted one slo_alert event and a counter bump.
        alerts = [e for e in rec.events if e["kind"] == SLO_ALERT_EVENT]
        assert [(e["previous"], e["state"]) for e in alerts] == [
            (OK, PAGE),
            (PAGE, WARNING),
            (WARNING, OK),
        ]
        assert all(e["slo"] == "availability" for e in alerts)
        assert reg.counter("slo.transitions", slo="availability", to=PAGE).value == 1
        # The alert state gauge tracks the numeric severity.
        assert reg.gauge("slo.alert_state", slo="availability").value == ALERT_LEVEL[OK]

    def test_min_events_guards_noise(self):
        clock = ManualClock()
        slo = SLO(
            name="noisy",
            sli=CounterRatioSLI("reads", "status", good=("good",)),
            target=0.9,
            fast=BurnWindow(1.0, 10.0, min_events=50),
            slow=BurnWindow(4.0, 2.0, state=WARNING, min_events=50),
        )
        reg = MetricsRegistry()
        engine = SLOEngine(reg, [slo], clock=clock)
        engine.tick()
        clock.advance(1.0)
        reg.counter("reads", status="bad").inc(10)  # 100% bad, but few
        assert engine.tick() == {"noisy": OK}
        status = engine.statuses()["noisy"]
        assert status.burn_fast == 0.0 and status.burn_slow == 0.0

    def test_sample_pruning_keeps_slow_baseline(self):
        clock = ManualClock()
        reg = MetricsRegistry()
        engine = SLOEngine(reg, [_one_slo(slow_s=4.0)], clock=clock)
        good = reg.counter("reads", status="good")
        for _ in range(20):
            good.inc(1)
            engine.tick()
            clock.advance(1.0)
        track = engine._tracks["availability"]
        # Everything older than the slow horizon is gone except the one
        # baseline sample the windowed delta is measured against.
        assert len(track.samples) <= 6

    def test_status_to_dict_round_trips_json(self):
        reg = MetricsRegistry()
        engine = SLOEngine(reg, [_one_slo()], clock=ManualClock())
        engine.tick()
        doc = json.loads(json.dumps(engine.statuses()["availability"].to_dict()))
        assert doc["name"] == "availability" and doc["state"] == OK


class TestDefaultServingSLOs:
    def test_four_objectives_with_sound_windows(self):
        slos = default_serving_slos(900.0)
        names = [slo.name for slo in slos]
        assert names == [
            "read-availability", "read-freshness", "read-latency",
            "degraded-reads",
        ]
        for slo in slos:
            assert slo.fast.window_s == 1800.0 and slo.fast.state == PAGE
            assert slo.slow.window_s == 3600.0 and slo.slow.state == WARNING

    def test_availability_counts_baseline_as_bad(self):
        """Baseline reads answer the reader but spend error budget —
        the property that makes a sustained outage page."""
        (availability, *_rest) = default_serving_slos(900.0)
        reg = MetricsRegistry()
        reg.counter("serving.reads", status="baseline").inc(10)
        good, total = availability.sli.sample(reg)
        assert (good, total) == (0.0, 10.0)

    def test_freshness_threshold_follows_soft_staleness(self):
        slos = default_serving_slos(900.0, soft_after_s=1350.0)
        freshness = slos[1]
        assert freshness.sli.threshold == 1350.0

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ConfigError):
            default_serving_slos(0.0)


# ----------------------------------------------------------------------
# Dashboard
# ----------------------------------------------------------------------
def _serving_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("serving.reads", status="fresh").inc(80)
    reg.counter("serving.reads", status="stale").inc(15)
    reg.counter("serving.reads", status="baseline").inc(5)
    reg.counter("serving.rounds", outcome="published").inc(7)
    reg.counter("serving.rounds", outcome="cancelled").inc(1)
    reg.counter("serving.shed", reason="capacity").inc(3)
    reg.counter("serving.traces", recorded="true").inc(9)
    reg.counter("serving.traces", recorded="false").inc(91)
    reg.gauge("serving.snapshot_version").set(7)
    reg.gauge("serving.snapshot_age_seconds").set(12.5)
    hist = reg.histogram("serving.read_seconds", buckets=(0.001, 0.01, 0.1))
    for value in (0.0005, 0.002, 0.05):
        hist.observe(value)
    stage = reg.histogram(
        "serving.stage_seconds", buckets=(1.0, 10.0), stage="collect", ok="true"
    )
    stage.observe(2.0)
    reg.gauge("slo.alert_state", slo="read-availability").set(2)
    reg.gauge("slo.burn_rate", slo="read-availability", window="fast").set(50.0)
    reg.gauge("slo.burn_rate", slo="read-availability", window="slow").set(12.0)
    return reg


class TestMetricsView:
    def test_from_registry_queries(self):
        view = MetricsView.from_registry(_serving_registry())
        assert view.total("serving.reads") == 100.0
        assert view.by_label("serving.reads", "status")["fresh"] == 80.0
        assert view.value("serving.snapshot_version") == 7.0
        assert view.value("serving.reads", status="nope") is None
        assert view.label_values("serving.stage_seconds", "stage") == ["collect"]

    def test_histogram_merge_and_quantile(self):
        view = MetricsView.from_registry(_serving_registry())
        stats = view.histogram("serving.read_seconds")
        assert stats["count"] == 3
        p50 = MetricsView.histogram_quantile(stats, 0.5)
        assert 0.001 <= p50 <= 0.01
        # Scalar-only views have no histograms to merge.
        scalar = MetricsView.from_scalar_totals({"serving.read_seconds": 3})
        assert scalar.histogram("serving.read_seconds") is None

    def test_from_scalar_totals_parses_label_keys(self):
        view = MetricsView.from_scalar_totals(
            {"serving.reads{status=fresh}": 10, "serving.publish": 2}
        )
        assert view.by_label("serving.reads", "status") == {"fresh": 10.0}
        assert view.total("serving.publish") == 2.0

    def test_from_file_metrics_json(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(_serving_registry().snapshot()))
        view = MetricsView.from_file(path)
        assert view.total("serving.reads") == 100.0

    def test_from_file_jsonl_uses_last_round(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with FlightRecorder(path=path) as rec:
            rec.count("serving.reads", 5, status="fresh")
            rec.round_end(0)
            rec.count("serving.reads", 7, status="stale")
            rec.round_end(1)
        view = MetricsView.from_file(path)
        ladder = view.by_label("serving.reads", "status")
        assert ladder == {"fresh": 5.0, "stale": 7.0}

    def test_from_file_errors_are_typed(self, tmp_path):
        with pytest.raises(DataError, match="does not exist"):
            MetricsView.from_file(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        with pytest.raises(DataError, match="not a registry snapshot"):
            MetricsView.from_file(bad)
        empty = tmp_path / "no_rounds.jsonl"
        empty.write_text('{"type": "meta", "version": 1}\n')
        with pytest.raises(DataError, match="no round events"):
            MetricsView.from_file(empty)


class TestRenderDashboard:
    def test_all_sections_render_from_registry(self):
        text = render_dashboard(MetricsView.from_registry(_serving_registry()))
        assert "SLO status" in text
        assert "read-availability" in text and "PAGE" in text
        assert "Read ladder" in text and "fresh" in text
        assert "Publish outcomes" in text and "published" in text
        assert "Stage timings" in text and "collect" in text
        assert "Protection & freshness" in text
        assert "read latency p99 (ms)" in text

    def test_live_slo_statuses_take_precedence(self):
        reg = MetricsRegistry()
        engine = SLOEngine(reg, [_one_slo()], clock=ManualClock())
        engine.tick()
        text = render_dashboard(
            MetricsView.from_registry(reg), slo_statuses=engine.statuses()
        )
        assert "availability" in text and "OK" in text
        assert "good/total" in text  # only the live table has these columns

    def test_empty_view_degrades_gracefully(self):
        text = render_dashboard(MetricsView.from_scalar_totals({}))
        assert "(no SLO engine data in this source)" in text
        assert "(no serving reads recorded)" in text
