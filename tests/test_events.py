"""Unit tests for congestion events."""

import numpy as np
import pytest

from repro.traffic.events import CongestionEvent, EventModel, render_event_factors


class TestCongestionEvent:
    def test_active_window(self):
        event = CongestionEvent("incident", 10, 14, {1: 0.5})
        assert not event.active_at(9)
        assert event.active_at(10)
        assert event.active_at(13)
        assert not event.active_at(14)

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            CongestionEvent("incident", 10, 10, {1: 0.5})

    @pytest.mark.parametrize("severity", [0.0, 0.96, -0.1, 1.5])
    def test_severity_bounds(self, severity):
        with pytest.raises(ValueError):
            CongestionEvent("incident", 0, 5, {1: severity})


class TestRenderFactors:
    def test_neutral_without_events(self):
        factors = render_event_factors([], {1: 0, 2: 1}, range(0, 10))
        assert factors.shape == (10, 2)
        assert np.all(factors == 1.0)

    def test_single_event_window(self):
        event = CongestionEvent("incident", 3, 6, {1: 0.5})
        factors = render_event_factors([event], {1: 0, 2: 1}, range(0, 10))
        assert np.all(factors[:, 1] == 1.0)  # unaffected road
        assert list(factors[:, 0]) == [1, 1, 1, 0.5, 0.5, 0.5, 1, 1, 1, 1]

    def test_overlapping_events_compound(self):
        events = [
            CongestionEvent("a", 0, 5, {1: 0.5}),
            CongestionEvent("b", 2, 5, {1: 0.4}),
        ]
        factors = render_event_factors(events, {1: 0}, range(0, 5))
        assert factors[1, 0] == pytest.approx(0.5)
        assert factors[3, 0] == pytest.approx(0.5 * 0.6)

    def test_event_clipped_to_range(self):
        event = CongestionEvent("a", 0, 100, {1: 0.5})
        factors = render_event_factors([event], {1: 0}, range(10, 20))
        assert np.all(factors == 0.5)

    def test_event_outside_range_ignored(self):
        event = CongestionEvent("a", 50, 60, {1: 0.5})
        factors = render_event_factors([event], {1: 0}, range(0, 10))
        assert np.all(factors == 1.0)

    def test_unknown_roads_ignored(self):
        event = CongestionEvent("a", 0, 5, {99: 0.5})
        factors = render_event_factors([event], {1: 0}, range(0, 5))
        assert np.all(factors == 1.0)


class TestEventModel:
    def test_sampling_is_deterministic(self, small_network):
        model = EventModel()
        day = range(0, 96)
        a = model.sample_day(small_network, day, np.random.default_rng(7))
        b = model.sample_day(small_network, day, np.random.default_rng(7))
        assert len(a) == len(b)
        for ea, eb in zip(a, b):
            assert ea.kind == eb.kind
            assert ea.start_interval == eb.start_interval
            assert ea.road_severities == eb.road_severities

    def test_events_within_day(self, small_network):
        model = EventModel(incidents_per_day=10.0)
        day = range(96, 192)
        events = model.sample_day(small_network, day, np.random.default_rng(1))
        for event in events:
            assert day.start <= event.start_interval < day.stop
            assert event.end_interval <= day.stop

    def test_incident_severity_decays_with_hops(self, small_network):
        model = EventModel(incidents_per_day=5.0, incident_radius_hops=2)
        events = model.sample_day(
            small_network, range(0, 96), np.random.default_rng(3)
        )
        incidents = [e for e in events if e.kind == "incident"]
        assert incidents
        for event in incidents:
            peak_road = max(event.road_severities, key=event.road_severities.get)
            peak = event.road_severities[peak_road]
            for road, severity in event.road_severities.items():
                hops = small_network.roads_within_hops(peak_road, 3).get(road)
                if hops is not None and hops > 0:
                    assert severity <= peak

    def test_weather_hits_every_road(self, small_network):
        model = EventModel(
            incidents_per_day=0.0, regional_per_day=0.0, weather_probability=1.0
        )
        events = model.sample_day(
            small_network, range(0, 96), np.random.default_rng(1)
        )
        weather = [e for e in events if e.kind == "weather"]
        assert len(weather) == 1
        assert set(weather[0].road_severities) == set(small_network.road_ids())
