"""Tests for the Dinic max-flow and graph-cut exact MAP inference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InferenceError
from repro.core.types import Trend
from repro.trend.exact import exact_map_assignment
from repro.trend.mapcut import GraphCutMapInference
from repro.trend.maxflow import MaxFlowNetwork
from repro.trend.model import TrendInstance


class TestMaxFlow:
    def test_single_edge(self):
        net = MaxFlowNetwork(2)
        net.add_edge(0, 1, 5.0)
        assert net.max_flow(0, 1) == 5.0

    def test_series_bottleneck(self):
        net = MaxFlowNetwork(3)
        net.add_edge(0, 1, 5.0)
        net.add_edge(1, 2, 3.0)
        assert net.max_flow(0, 2) == 3.0

    def test_parallel_paths(self):
        net = MaxFlowNetwork(4)
        net.add_edge(0, 1, 3.0)
        net.add_edge(1, 3, 3.0)
        net.add_edge(0, 2, 4.0)
        net.add_edge(2, 3, 2.0)
        assert net.max_flow(0, 3) == 5.0

    def test_classic_augmenting_case(self):
        """The textbook network where residual (reverse) edges matter."""
        net = MaxFlowNetwork(4)
        net.add_edge(0, 1, 1.0)
        net.add_edge(0, 2, 1.0)
        net.add_edge(1, 2, 1.0)
        net.add_edge(1, 3, 1.0)
        net.add_edge(2, 3, 1.0)
        assert net.max_flow(0, 3) == 2.0

    def test_disconnected_sink(self):
        net = MaxFlowNetwork(3)
        net.add_edge(0, 1, 5.0)
        assert net.max_flow(0, 2) == 0.0

    def test_min_cut_side(self):
        net = MaxFlowNetwork(3)
        net.add_edge(0, 1, 1.0)
        net.add_edge(1, 2, 10.0)
        net.max_flow(0, 2)
        # The 1.0 edge is the cut; only the source is on the source side.
        assert net.min_cut_source_side(0) == {0}

    def test_validation(self):
        with pytest.raises(InferenceError):
            MaxFlowNetwork(1)
        net = MaxFlowNetwork(3)
        with pytest.raises(InferenceError):
            net.add_edge(0, 0, 1.0)
        with pytest.raises(InferenceError):
            net.add_edge(0, 1, -1.0)
        with pytest.raises(InferenceError):
            net.add_edge(0, 9, 1.0)
        with pytest.raises(InferenceError):
            net.max_flow(0, 0)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_matches_networkx(self, data):
        """Property: flow value agrees with networkx on random DAG-ish graphs."""
        import networkx as nx

        n = data.draw(st.integers(min_value=3, max_value=7))
        edges = []
        for u in range(n - 1):
            for v in range(u + 1, n):
                if data.draw(st.booleans()):
                    cap = data.draw(
                        st.floats(min_value=0.1, max_value=10.0)
                    )
                    edges.append((u, v, cap))
        net = MaxFlowNetwork(n)
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        for u, v, cap in edges:
            net.add_edge(u, v, cap)
            g.add_edge(u, v, capacity=cap)
        ours = net.max_flow(0, n - 1)
        theirs = nx.maximum_flow_value(g, 0, n - 1)
        assert ours == pytest.approx(theirs, abs=1e-9)


def random_attractive_instance(rng, n, extra_edges=2, with_evidence=True):
    edges = [(i, i + 1, float(rng.uniform(0.55, 0.95))) for i in range(n - 1)]
    for _ in range(extra_edges):
        i, j = sorted(rng.choice(n, size=2, replace=False))
        if all((int(i), int(j)) != (a, b) for a, b, _ in edges):
            edges.append((int(i), int(j), float(rng.uniform(0.55, 0.95))))
    evidence = {}
    if with_evidence:
        evidence[0] = Trend.RISE if rng.random() < 0.5 else Trend.FALL
    return TrendInstance(
        road_ids=tuple(range(n)),
        prior_rise=rng.uniform(0.2, 0.8, size=n),
        edges=tuple(edges),
        evidence=evidence,
    )


class TestGraphCutMap:
    def test_matches_enumeration_on_random_instances(self):
        rng = np.random.default_rng(5)
        solver = GraphCutMapInference()
        for trial in range(15):
            instance = random_attractive_instance(rng, n=int(rng.integers(3, 9)))
            cut_map = solver.map_assignment(instance)
            enum_map = exact_map_assignment(instance)
            # The MAP may be non-unique; compare joint weights instead of labels.
            from repro.trend.exact import ExactEnumerationInference

            def weight(assignment):
                state = np.array(
                    [int(assignment[r]) for r in instance.road_ids], dtype=np.int8
                )
                return ExactEnumerationInference._joint_weight(instance, state)

            assert weight(cut_map) == pytest.approx(weight(enum_map), rel=1e-9), (
                f"trial {trial}"
            )

    def test_evidence_respected(self):
        rng = np.random.default_rng(1)
        instance = random_attractive_instance(rng, n=6)
        cut_map = GraphCutMapInference().map_assignment(instance)
        for road, trend in instance.evidence.items():
            assert cut_map[road] is trend

    def test_strong_chain_propagates_label(self):
        instance = TrendInstance(
            road_ids=(0, 1, 2, 3),
            prior_rise=np.full(4, 0.5),
            edges=((0, 1, 0.95), (1, 2, 0.95), (2, 3, 0.95)),
            evidence={0: Trend.FALL},
        )
        cut_map = GraphCutMapInference().map_assignment(instance)
        assert all(t is Trend.FALL for t in cut_map.values())

    def test_repulsive_edge_rejected(self):
        instance = TrendInstance(
            road_ids=(0, 1),
            prior_rise=np.array([0.5, 0.5]),
            edges=((0, 1, 0.3),),
            evidence={},
        )
        with pytest.raises(InferenceError, match="submodular"):
            GraphCutMapInference().map_assignment(instance)

    def test_scales_beyond_enumeration(self, small_dataset):
        """Graph cuts handle the full city MRF, which enumeration cannot."""
        from repro.trend.model import TrendModel

        model = TrendModel(small_dataset.graph, small_dataset.store)
        interval = small_dataset.test_day_intervals()[30]
        truth = small_dataset.test.speeds_at(interval)
        seeds = small_dataset.network.road_ids()[::10][:10]
        seed_trends = {
            r: small_dataset.store.trend_of(r, interval, truth[r]) for r in seeds
        }
        instance = model.instance(interval, seed_trends)
        cut_map = GraphCutMapInference().map_assignment(instance)
        assert len(cut_map) == instance.num_roads
        for road, trend in seed_trends.items():
            assert cut_map[road] is trend
        # The hard labelling is sensible: clearly better than chance.
        non_seeds = [r for r in cut_map if r not in seed_trends]
        correct = sum(
            cut_map[r] == small_dataset.store.trend_of(r, interval, truth[r])
            for r in non_seeds
        )
        assert correct / len(non_seeds) > 0.6
