"""Thin setup.py kept for environments without the `wheel` package,
where PEP-517 editable installs cannot build. All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
