"""The live ops dashboard: one screen of serving health.

``repro-traffic obs top`` renders a :class:`MetricsView` — a read-only,
source-agnostic view over metric series — into the operator's screen:
SLO alert states and burn rates, the read ladder's rung breakdown,
pipeline stage timings, publish outcomes, and the protection layer
(admission shedding, breaker short-circuits, trace sampling).

A view can come from three places, in decreasing order of fidelity:

* a live :class:`~repro.obs.registry.MetricsRegistry` (or its
  :meth:`~repro.obs.registry.MetricsRegistry.snapshot` dict / the JSON
  file ``--metrics-out`` writes) — full histograms, so latency
  percentiles render;
* the last ``round`` event of a recorded JSONL — scalar totals only,
  histogram rows degrade to counts;
* the :class:`~repro.obs.slo.SLOEngine`'s own statuses, passed
  alongside either, which add good/total and targets to the SLO rows.

Like :mod:`repro.obs.report` this module is a leaf: it formats its own
tables and imports nothing above :mod:`repro.obs`.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.core.errors import DataError
from repro.obs.registry import MetricsRegistry, quantile_from_cumulative
from repro.obs.report import fmt, format_table, load_events
from repro.obs.slo import ALERT_STATES, SLOStatus

_SCALAR_KEY_RE = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")


def _parse_scalar_key(key: str) -> tuple[str, dict[str, str]]:
    match = _SCALAR_KEY_RE.match(key)
    if match is None:  # pragma: no cover - the regex accepts any key
        return key, {}
    labels: dict[str, str] = {}
    raw = match.group("labels")
    if raw:
        for part in raw.split(","):
            label, _eq, value = part.partition("=")
            labels[label] = value
    return match.group("name"), labels


class MetricsView:
    """Uniform read access over metric series from any source.

    Internally one flat list of ``(family, labels, payload)`` where the
    payload is ``{"value": v}`` for scalars or ``{"sum", "count",
    "buckets"}`` for histograms (bucket keys are bound strings plus
    ``"+Inf"``, values cumulative — the registry snapshot shape).
    """

    def __init__(
        self, series: list[tuple[str, dict[str, str], dict]]
    ) -> None:
        self._series = series

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_registry(cls, registry: MetricsRegistry) -> "MetricsView":
        return cls.from_snapshot(registry.snapshot())

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "MetricsView":
        series: list[tuple[str, dict[str, str], dict]] = []
        for family, entry in snapshot.items():
            for item in entry.get("series", []):
                payload = {k: v for k, v in item.items() if k != "labels"}
                series.append((family, dict(item.get("labels", {})), payload))
        return cls(series)

    @classmethod
    def from_scalar_totals(cls, totals: dict[str, float]) -> "MetricsView":
        series = []
        for key, value in totals.items():
            family, labels = _parse_scalar_key(key)
            series.append((family, labels, {"value": float(value)}))
        return cls(series)

    @classmethod
    def from_file(cls, path: str | Path) -> "MetricsView":
        """Load from a metrics JSON dump or a recorded JSONL.

        A ``.jsonl`` recording contributes its *last* round event's
        cumulative counters; anything else is parsed as the registry
        snapshot JSON that ``--metrics-out`` writes.
        """
        path = Path(path)
        if path.suffix == ".jsonl":
            rounds = [
                e for e in load_events(path) if e.get("type") == "round"
            ]
            if not rounds:
                raise DataError(
                    f"recording {path} has no round events to build a "
                    f"dashboard from"
                )
            return cls.from_scalar_totals(rounds[-1].get("counters", {}))
        try:
            snapshot = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError as exc:
            raise DataError(f"metrics file {path} does not exist") from exc
        except (ValueError, OSError) as exc:
            raise DataError(f"metrics file {path} is unreadable: {exc}") from exc
        if not isinstance(snapshot, dict):
            raise DataError(f"metrics file {path} is not a registry snapshot")
        return cls.from_snapshot(snapshot)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _matching(self, family: str, **match: str):
        for name, labels, payload in self._series:
            if name != family:
                continue
            if any(labels.get(k) != v for k, v in match.items()):
                continue
            yield labels, payload

    @staticmethod
    def _scalar(payload: dict) -> float:
        if "value" in payload:
            return float(payload["value"])
        return float(payload.get("count", 0.0))

    def total(self, family: str, **match: str) -> float:
        """Summed scalar of matching series (histograms count)."""
        return sum(self._scalar(p) for _l, p in self._matching(family, **match))

    def value(self, family: str, **match: str) -> float | None:
        """The first matching series' scalar, or None."""
        for _labels, payload in self._matching(family, **match):
            return self._scalar(payload)
        return None

    def by_label(
        self, family: str, label: str, **match: str
    ) -> dict[str, float]:
        """Scalar totals keyed by one label's values."""
        out: dict[str, float] = {}
        for labels, payload in self._matching(family, **match):
            key = labels.get(label, "")
            out[key] = out.get(key, 0.0) + self._scalar(payload)
        return dict(sorted(out.items()))

    def label_values(self, family: str, label: str) -> list[str]:
        return sorted(
            {
                labels[label]
                for labels, _p in self._matching(family)
                if label in labels
            }
        )

    def histogram(self, family: str, **match: str) -> dict | None:
        """Matching histogram series merged; None when there are none
        (or the view only has scalar totals)."""
        merged_sum = 0.0
        merged_count = 0
        merged_buckets: dict[str, float] | None = None
        for _labels, payload in self._matching(family, **match):
            buckets = payload.get("buckets")
            if buckets is None:
                continue
            merged_sum += float(payload.get("sum", 0.0))
            merged_count += int(payload.get("count", 0))
            if merged_buckets is None:
                merged_buckets = dict(buckets)
            elif set(merged_buckets) == set(buckets):
                for key, value in buckets.items():
                    merged_buckets[key] += value
            else:  # pragma: no cover - one family has one bucket layout
                continue
        if merged_buckets is None:
            return None
        return {"sum": merged_sum, "count": merged_count, "buckets": merged_buckets}

    @staticmethod
    def histogram_quantile(stats: dict, q: float) -> float:
        bounds = sorted(
            float(b) for b in stats["buckets"] if b != "+Inf"
        )
        cumulative = [stats["buckets"][_bound_key(stats, b)] for b in bounds]
        cumulative.append(stats["buckets"].get("+Inf", stats["count"]))
        return quantile_from_cumulative(tuple(bounds), cumulative, q)


def _bound_key(stats: dict, bound: float) -> str:
    # Bucket keys are the stringified bounds; find the one that parses
    # back to this value (handles "0.5" vs "0.50" style differences).
    for key in stats["buckets"]:
        if key != "+Inf" and float(key) == bound:
            return key
    raise KeyError(bound)  # pragma: no cover - keys come from bounds


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
_STATE_BY_LEVEL = dict(enumerate(ALERT_STATES))


def _share(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:.1f}%" if whole else "-"


def _slo_section(
    view: MetricsView, slo_statuses: dict[str, SLOStatus] | None
) -> str:
    if slo_statuses:
        rows = [
            [
                status.name,
                status.state.upper(),
                fmt(status.burn_fast, 1),
                fmt(status.burn_slow, 1),
                f"{int(status.good)}/{int(status.total)}",
                f"{100 * status.target:g}%",
            ]
            for status in slo_statuses.values()
        ]
        return format_table(
            ["slo", "state", "burn fast", "burn slow", "good/total", "target"],
            rows,
            title="SLO status",
        )
    states = view.by_label("slo.alert_state", "slo")
    if not states:
        return "SLO status\n  (no SLO engine data in this source)"
    rows = []
    for name, level in states.items():
        rows.append(
            [
                name,
                _STATE_BY_LEVEL.get(int(level), "?").upper(),
                _fmt_or_dash(view.value("slo.burn_rate", slo=name, window="fast")),
                _fmt_or_dash(view.value("slo.burn_rate", slo=name, window="slow")),
            ]
        )
    return format_table(
        ["slo", "state", "burn fast", "burn slow"], rows, title="SLO status"
    )


def _fmt_or_dash(value: float | None, digits: int = 1) -> str:
    return fmt(value, digits) if value is not None else "-"


def _ladder_section(view: MetricsView) -> str:
    by_status = view.by_label("serving.reads", "status")
    if not by_status:
        return "Read ladder\n  (no serving reads recorded)"
    total = sum(by_status.values())
    rows = [
        [status, int(count), _share(count, total)]
        for status, count in by_status.items()
    ]
    rows.append(["total", int(total), ""])
    return format_table(["rung", "reads", "share"], rows, title="Read ladder")


def _stage_section(view: MetricsView) -> str:
    stages = view.label_values("serving.stage_seconds", "stage")
    if not stages:
        return "Stage timings\n  (no supervised stages recorded)"
    rows = []
    for stage in stages:
        for ok in view.label_values("serving.stage_seconds", "ok"):
            count = view.total("serving.stage_seconds", stage=stage, ok=ok)
            if not count:
                continue
            stats = view.histogram("serving.stage_seconds", stage=stage, ok=ok)
            mean_ms = (
                fmt(1000.0 * stats["sum"] / stats["count"], 2)
                if stats and stats["count"]
                else "-"
            )
            rows.append([stage, ok, int(count), mean_ms])
    return format_table(
        ["stage", "ok", "runs", "mean ms"], rows, title="Stage timings"
    )


def _publish_section(view: MetricsView) -> str:
    outcomes = view.by_label("serving.rounds", "outcome")
    if not outcomes:
        return "Publish outcomes\n  (no publish rounds recorded)"
    total = sum(outcomes.values())
    rows = [
        [outcome, int(count), _share(count, total)]
        for outcome, count in outcomes.items()
    ]
    return format_table(
        ["outcome", "rounds", "share"], rows, title="Publish outcomes"
    )


def _protection_section(view: MetricsView) -> str:
    traces = view.by_label("serving.traces", "recorded")
    latency = view.histogram("serving.read_seconds")
    lines = ["Protection & freshness"]
    rows = [
        ["requests shed", int(view.total("serving.shed"))],
        [
            "breaker short-circuited reads",
            int(view.total("serving.breaker_short_circuit")),
        ],
        ["deadline-cancelled rounds", int(view.total("serving.deadline_exceeded"))],
        ["traces recorded", int(traces.get("true", 0))],
        ["traces sampled away", int(traces.get("false", 0))],
    ]
    version = view.value("serving.snapshot_version")
    if version is not None:
        rows.append(["snapshot version", int(version)])
    age = view.value("serving.snapshot_age_seconds")
    if age is not None:
        rows.append(["snapshot age (s)", fmt(age, 1)])
    if latency is not None and latency["count"]:
        p50 = MetricsView.histogram_quantile(latency, 0.50)
        p99 = MetricsView.histogram_quantile(latency, 0.99)
        rows.append(["read latency p50 (ms)", fmt(1000.0 * p50, 3)])
        rows.append(["read latency p99 (ms)", fmt(1000.0 * p99, 3)])
    lines.append(
        format_table(["signal", "value"], [[k, str(v)] for k, v in rows])
    )
    return "\n".join(lines)


def render_dashboard(
    view: MetricsView,
    slo_statuses: dict[str, SLOStatus] | None = None,
    title: str | None = None,
) -> str:
    """The whole ops screen, section by section."""
    sections = [
        _slo_section(view, slo_statuses),
        _ladder_section(view),
        _publish_section(view),
        _stage_section(view),
        _protection_section(view),
    ]
    header = title or "Serving ops dashboard"
    return header + "\n\n" + "\n\n".join(sections)


def dashboard_file(path: str | Path) -> str:
    """Load + render in one call (the ``obs top`` entry point)."""
    return render_dashboard(
        MetricsView.from_file(path), title=f"Serving ops dashboard: {path}"
    )
