"""Recorders: the single seam all instrumentation goes through.

Every instrumented module calls :func:`repro.obs.get_recorder` and
talks to whatever comes back. The module default is a
:class:`NullRecorder` whose methods do nothing and allocate nothing, so
default-on instrumentation costs a function call and an attribute
lookup per hook — install a :class:`FlightRecorder` (globally with
:func:`set_recorder`, or scoped with :func:`recording`) to start
capturing.

The :class:`FlightRecorder` is the real thing: a
:class:`~repro.obs.registry.MetricsRegistry` for counters/gauges/
histograms, a :class:`~repro.obs.spans.SpanTracer` for nested timings,
a bounded in-memory ring of per-round snapshots, and an optional
append-only JSONL event log on disk (one ``span`` event per finished
span, one ``round`` event per estimation round) that ``repro-traffic
obs report`` renders back into a round-by-round summary.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from collections import deque
from pathlib import Path
from typing import IO, Iterator

from repro.core.clock import Clock, get_clock
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Span, SpanTracer, aggregate_spans

#: Environment variable that switches the process-default recorder from
#: the no-op to a JSONL-writing flight recorder at import time.
OBS_ENV_VAR = "REPRO_OBS_JSONL"

#: JSONL schema version stamped into every recording's ``meta`` line.
SCHEMA_VERSION = 1


class _NullSpan:
    """A reusable no-op stand-in for an active span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: object) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The default recorder: every hook is a no-op.

    Shares the :class:`FlightRecorder` surface so instrumented code
    never branches on whether recording is enabled.
    """

    enabled = False

    def count(self, name: str, value: float = 1.0, **labels: object) -> None:
        pass

    def gauge(self, name: str, value: float, **labels: object) -> None:
        pass

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] | None = None,
        **labels: object,
    ) -> None:
        pass

    def event(self, kind: str, **fields: object) -> None:
        pass

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def round_begin(self, interval: int | None) -> None:
        pass

    def round_end(self, interval: int | None, **fields: object) -> None:
        pass


class FlightRecorder:
    """Metrics + spans + per-round snapshots, optionally logged to JSONL.

    ``path=None`` records purely in memory (the overhead benchmark's
    configuration); with a path every span and round event is appended
    as one JSON line, giving a crash-durable black-box log of the run.
    The last ``ring_size`` round snapshots stay addressable in memory
    via :attr:`rounds` regardless of whether a file is attached.
    """

    enabled = True

    def __init__(
        self,
        path: str | Path | None = None,
        ring_size: int = 256,
        registry: MetricsRegistry | None = None,
        tracer: SpanTracer | None = None,
        clock: Clock | None = None,
    ) -> None:
        if ring_size < 1:
            raise ValueError("ring_size must be >= 1")
        self.registry = registry or MetricsRegistry()
        self.tracer = tracer or SpanTracer(clock=clock)
        self._clock = clock
        self._path = Path(path) if path is not None else None
        self._file: IO[str] | None = None
        self._ring: deque[dict] = deque(maxlen=ring_size)
        self._round_index = 0
        self._round_start: float | None = None
        self._round_interval: int | None = None
        if self._path is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self._path.open("a", encoding="utf-8")
            self._write(
                {
                    "type": "meta",
                    "version": SCHEMA_VERSION,
                    "ts": time.time(),
                    "pid": os.getpid(),
                }
            )

    # ------------------------------------------------------------------
    # Metric hooks
    # ------------------------------------------------------------------
    def count(self, name: str, value: float = 1.0, **labels: object) -> None:
        self.registry.counter(name, **labels).inc(value)

    def gauge(self, name: str, value: float, **labels: object) -> None:
        self.registry.gauge(name, **labels).set(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] | None = None,
        **labels: object,
    ) -> None:
        self.registry.histogram(name, buckets=buckets, **labels).observe(value)

    # ------------------------------------------------------------------
    # Spans and events
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object):
        return _RecordedSpan(self, self.tracer.span(name, **attrs))

    def event(self, kind: str, **fields: object) -> None:
        """Append one free-form event to the log (and the ring)."""
        payload = {"type": "event", "kind": kind, "ts": time.time(), **fields}
        self._ring.append(payload)
        self._write(payload)

    def _span_finished(self, span: Span) -> None:
        self.registry.histogram("span.seconds", span=span.name).observe(
            span.duration_s or 0.0
        )
        if self._file is not None:
            self._write(span.to_event())

    # ------------------------------------------------------------------
    # Per-round flight recording
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return (self._clock or get_clock()).monotonic()

    def round_begin(self, interval: int | None) -> None:
        self._round_start = self._now()
        self._round_interval = interval

    def round_end(self, interval: int | None, **fields: object) -> None:
        """Snapshot the round: stage timings + cumulative health counters.

        Legal without a prior :meth:`round_begin` (wall time is then
        omitted); drains every span finished since the previous round so
        one-off work (seed selection, model fitting) lands in the round
        that triggered it.
        """
        wall = (
            self._now() - self._round_start
            if self._round_start is not None
            else None
        )
        snapshot = {
            "type": "round",
            "round": self._round_index,
            "interval": interval if interval is not None else self._round_interval,
            "wall_s": wall,
            "stages": aggregate_spans(self.tracer.drain()),
            "counters": self.registry.scalar_totals(),
            "fields": dict(fields),
        }
        self._round_index += 1
        self._round_start = None
        self._round_interval = None
        self._ring.append(snapshot)
        self._write(snapshot)

    @property
    def rounds(self) -> list[dict]:
        """The in-memory ring of round snapshots (oldest first)."""
        return [e for e in self._ring if e.get("type") == "round"]

    @property
    def events(self) -> list[dict]:
        """The in-memory ring's free-form events (oldest first)."""
        return [e for e in self._ring if e.get("type") == "event"]

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _write(self, payload: dict) -> None:
        if self._file is None:
            return
        self._file.write(json.dumps(payload, sort_keys=True) + "\n")
        self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class _RecordedSpan:
    """Active-span wrapper that notifies the recorder on exit."""

    __slots__ = ("_recorder", "_active", "_span")

    def __init__(self, recorder: FlightRecorder, active) -> None:
        self._recorder = recorder
        self._active = active
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._active.__enter__()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._active.__exit__(exc_type, exc, tb)
        assert self._span is not None
        self._recorder._span_finished(self._span)
        return False

    def set(self, **attrs: object):
        if self._span is not None:
            self._span.set(**attrs)
        return self


# ----------------------------------------------------------------------
# The process-wide default recorder
# ----------------------------------------------------------------------
_recorder: NullRecorder | FlightRecorder = NullRecorder()


def get_recorder() -> NullRecorder | FlightRecorder:
    """The recorder all instrumentation hooks talk to."""
    return _recorder


def set_recorder(
    recorder: NullRecorder | FlightRecorder,
) -> NullRecorder | FlightRecorder:
    """Install ``recorder`` as the process default; returns the previous."""
    global _recorder
    previous = _recorder
    _recorder = recorder
    return previous


@contextlib.contextmanager
def recording(
    recorder: FlightRecorder | None = None,
) -> Iterator[FlightRecorder]:
    """Scoped recording: install a flight recorder, restore on exit."""
    rec = recorder or FlightRecorder()
    previous = set_recorder(rec)
    try:
        yield rec
    finally:
        set_recorder(previous)


def configure_from_env(environ: dict | None = None) -> FlightRecorder | None:
    """Honour ``REPRO_OBS_JSONL=<path>``: install a JSONL flight recorder.

    Called once at package import, so any entry point — the CLI, the
    examples, a pytest run — becomes a black-box-recorded run just by
    exporting the variable. Returns the installed recorder, or ``None``
    when the variable is unset/empty.
    """
    env = environ if environ is not None else os.environ
    path = env.get(OBS_ENV_VAR, "").strip()
    if not path:
        return None
    recorder = FlightRecorder(path=path)
    set_recorder(recorder)
    return recorder
