"""The zero-dependency metrics registry.

Three metric kinds, modelled on the Prometheus data model but with no
client library behind them:

* :class:`Counter` — a monotonically increasing total (tasks answered,
  gain evaluations, breaker trips);
* :class:`Gauge` — a value that goes up and down (quarantine-set size,
  light-rounds-since-full);
* :class:`Histogram` — observations bucketed against **fixed** upper
  bounds chosen at registration (solve times, iteration counts), with a
  running sum and count so means are recoverable.

Every metric name is a *family* that fans out into **labeled series**:
``registry.counter("crowd.tasks", status="answered")`` and
``status="no_response"`` are independent series under one family. A
family's kind (and, for histograms, its bucket boundaries) is fixed by
the first registration; conflicting re-registration raises
:class:`~repro.core.errors.ConfigError` rather than silently splitting
the data.

The registry is deliberately tiny and allocation-light: the hot-path
cost of ``counter(...).inc()`` is one dict lookup and one float add,
which is what lets instrumentation stay on by default.
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import ConfigError

#: Default latency buckets (seconds): 100 µs .. 30 s, roughly log-spaced.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_.]*$")

#: A label set frozen into a hashable, canonically ordered key.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def quantile_from_cumulative(
    bounds: tuple[float, ...], cumulative: list[int] | tuple[int, ...], q: float
) -> float:
    """Interpolated quantile from fixed-bucket cumulative counts.

    ``cumulative`` has one entry per bound plus the ``+Inf`` overflow
    slot (the shape :meth:`Histogram.cumulative_counts` returns), and
    may equally be a *windowed delta* between two such snapshots — the
    SLO engine computes sliding-window percentiles exactly that way.

    Follows ``histogram_quantile`` semantics: linear interpolation
    inside the bucket the rank lands in, a lower edge of 0 for the
    first bucket of a non-negative histogram, and the highest finite
    bound for ranks in the overflow bucket. Returns ``nan`` when the
    window holds no observations.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigError(f"quantile must be in [0, 1], got {q}")
    total = cumulative[-1]
    if total <= 0:
        return float("nan")
    rank = q * total
    for i, bound in enumerate(bounds):
        if cumulative[i] >= rank:
            below = cumulative[i - 1] if i > 0 else 0
            in_bucket = cumulative[i] - below
            if in_bucket <= 0:
                return bound
            lower = bounds[i - 1] if i > 0 else min(0.0, bound)
            return lower + (bound - lower) * (rank - below) / in_bucket
    # The rank lands past every finite bound: all we know is "> max".
    return bounds[-1]


class Counter:
    """A monotonically increasing float total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A value that can move in both directions."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Observations against fixed upper-bound buckets.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``
    (non-cumulative, per-bucket); the final slot counts the overflow
    (``> bounds[-1]``, the Prometheus ``+Inf`` bucket).
    """

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        if not bounds:
            raise ConfigError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ConfigError(f"histogram bounds must strictly increase: {bounds}")
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Interpolated quantile estimate from the fixed buckets.

        Accuracy is bounded by bucket resolution (like Prometheus's
        ``histogram_quantile``); pick bucket bounds near the latency
        objectives you care about. ``nan`` when nothing was observed.
        """
        return quantile_from_cumulative(
            self.bounds, self.cumulative_counts(), q
        )

    def cumulative_counts(self) -> list[int]:
        """Prometheus-style cumulative counts, one per bound plus +Inf."""
        total = 0
        out = []
        for c in self.bucket_counts:
            total += c
            out.append(total)
        return out


@dataclass(frozen=True)
class _Family:
    """One metric name: its kind and (for histograms) bucket bounds."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    bounds: tuple[float, ...] | None = None


class MetricsRegistry:
    """All metric families and their labeled series, in one place."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._series: dict[tuple[str, LabelKey], Counter | Gauge | Histogram] = {}

    # ------------------------------------------------------------------
    # Registration / access
    # ------------------------------------------------------------------
    def _family(
        self, name: str, kind: str, bounds: tuple[float, ...] | None = None
    ) -> _Family:
        if bounds is not None and not bounds:
            raise ConfigError(
                f"histogram {name!r} needs at least one bucket bound"
            )
        family = self._families.get(name)
        if family is None:
            if not _NAME_RE.match(name):
                raise ConfigError(f"invalid metric name {name!r}")
            family = _Family(name, kind, bounds)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise ConfigError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        if kind == "histogram" and bounds is not None and family.bounds != bounds:
            raise ConfigError(
                f"histogram {name!r} already registered with buckets "
                f"{family.bounds}, not {bounds}"
            )
        return family

    def counter(self, name: str, **labels: object) -> Counter:
        self._family(name, "counter")
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = Counter()
        return series  # type: ignore[return-value]

    def gauge(self, name: str, **labels: object) -> Gauge:
        self._family(name, "gauge")
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = Gauge()
        return series  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] | None = None,
        **labels: object,
    ) -> Histogram:
        family = self._family(
            name, "histogram", tuple(buckets) if buckets is not None else None
        )
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            bounds = family.bounds or DEFAULT_BUCKETS
            series = self._series[key] = Histogram(bounds)
        return series  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def families(self) -> list[_Family]:
        return [self._families[name] for name in sorted(self._families)]

    def series(
        self, name: str
    ) -> Iterator[tuple[LabelKey, Counter | Gauge | Histogram]]:
        """All labeled series of one family, in canonical label order."""
        wanted = [
            (key[1], series)
            for key, series in self._series.items()
            if key[0] == name
        ]
        return iter(sorted(wanted, key=lambda item: item[0]))

    def snapshot(self) -> dict:
        """Everything as plain JSON-serialisable dicts.

        Shape: ``{name: {"kind": ..., "series": [{"labels": {...},
        ...values...}]}}``. Counters/gauges carry ``value``; histograms
        carry ``sum``, ``count``, ``buckets`` (bound -> cumulative
        count) and the overflow under ``"+Inf"``.
        """
        out: dict[str, dict] = {}
        for family in self.families():
            rendered = []
            for labels, series in self.series(family.name):
                entry: dict = {"labels": dict(labels)}
                if isinstance(series, Histogram):
                    cumulative = series.cumulative_counts()
                    buckets = {
                        str(bound): cumulative[i]
                        for i, bound in enumerate(series.bounds)
                    }
                    buckets["+Inf"] = cumulative[-1]
                    entry.update(
                        sum=series.sum, count=series.count, buckets=buckets
                    )
                else:
                    entry["value"] = series.value
                rendered.append(entry)
            out[family.name] = {"kind": family.kind, "series": rendered}
        return out

    def scalar_totals(self) -> dict[str, float]:
        """One scalar per series — the flight recorder's per-round
        health snapshot. Unlabeled series are keyed by their bare family
        name; labeled series by ``name{k=v,...}`` in canonical label
        order. Histograms report their observation count."""
        totals: dict[str, float] = {}
        for (name, labels), series in self._series.items():
            if labels:
                rendered = ",".join(f"{k}={v}" for k, v in labels)
                key = f"{name}{{{rendered}}}"
            else:
                key = name
            if isinstance(series, Histogram):
                totals[key] = series.count
            else:
                totals[key] = series.value
        return dict(sorted(totals.items()))
