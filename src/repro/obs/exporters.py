"""Registry exporters: Prometheus text format and JSON.

Both render a :class:`~repro.obs.registry.MetricsRegistry` snapshot for
consumption outside the process — Prometheus text for a scrape endpoint
or node-exporter textfile collector, JSON for dashboards and the BENCH
trajectory artefacts. Neither mutates the registry.
"""

from __future__ import annotations

import json

from repro.obs.registry import Histogram, MetricsRegistry


def _prom_name(name: str) -> str:
    """Dots are series separators here but illegal in Prometheus names."""
    return name.replace(".", "_").replace("-", "_")


def _escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: backslash first,
    then double quotes and line feeds."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [
        f'{_prom_name(key)}="{_escape_label_value(value)}"'
        for key, value in labels
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus exposition (text) format.

    Histograms follow the standard ``_bucket{le=...}`` / ``_sum`` /
    ``_count`` convention with cumulative bucket counts and a ``+Inf``
    bucket, so real Prometheus tooling parses the output unchanged.
    """
    lines: list[str] = []
    for family in registry.families():
        name = _prom_name(family.name)
        lines.append(f"# TYPE {name} {family.kind}")
        for labels, series in registry.series(family.name):
            if isinstance(series, Histogram):
                cumulative = series.cumulative_counts()
                for i, bound in enumerate(series.bounds):
                    le = _prom_labels(labels, f'le="{_fmt(bound)}"')
                    lines.append(f"{name}_bucket{le} {cumulative[i]}")
                inf = _prom_labels(labels, 'le="+Inf"')
                lines.append(f"{name}_bucket{inf} {cumulative[-1]}")
                lines.append(
                    f"{name}_sum{_prom_labels(labels)} {_fmt(series.sum)}"
                )
                lines.append(
                    f"{name}_count{_prom_labels(labels)} {series.count}"
                )
            else:
                lines.append(
                    f"{name}{_prom_labels(labels)} {_fmt(series.value)}"
                )
    return "\n".join(lines) + "\n"


def to_json(registry: MetricsRegistry, indent: int | None = 2) -> str:
    """The registry snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)
