"""Nested wall-clock spans with structured attributes.

A span is one timed region of the pipeline — ``trend.infer``,
``crowd.round`` — entered via context manager (or decorator through
:meth:`~repro.obs.recorder.FlightRecorder.span`). Spans nest: the tracer
keeps an explicit stack, so a span opened while another is active
records that span as its parent, and the per-round flight-recorder
summaries can attribute inner time to stages without any thread-local
machinery (the pipeline is single-threaded by design).

Finished spans accumulate until :meth:`SpanTracer.drain` collects them —
which the flight recorder does once per round — and the buffer is
bounded so an undrained tracer (a library user who never snapshots)
cannot grow without limit.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field

from repro.core.clock import Clock, get_clock


@dataclass
class Span:
    """One timed region. ``duration_s`` is set when the span closes."""

    name: str
    span_id: int
    parent_id: int | None
    start_s: float
    attrs: dict[str, object] = field(default_factory=dict)
    duration_s: float | None = None

    def set(self, **attrs: object) -> "Span":
        """Attach attributes mid-flight (e.g. iteration counts)."""
        self.attrs.update(attrs)
        return self

    @property
    def finished(self) -> bool:
        return self.duration_s is not None

    def to_event(self) -> dict:
        """The span as a flight-recorder JSONL event payload."""
        return {
            "type": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "dur_s": self.duration_s,
            "attrs": dict(self.attrs),
        }


class _ActiveSpan:
    """Context manager wrapping one tracer entry/exit pair."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "SpanTracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._pop(self._span, failed=exc_type is not None)
        return False


class SpanTracer:
    """Records nested spans into a bounded finished-span buffer.

    Durations come from an injectable monotonic :class:`Clock` (the
    process default when ``clock`` is None), so span timings are immune
    to wall-clock jumps and exactly reproducible under a
    :class:`~repro.core.clock.ManualClock` in tests.
    """

    def __init__(self, max_finished: int = 4096, clock: Clock | None = None) -> None:
        self._ids = itertools.count(1)
        self._stack: list[Span] = []
        self._finished: deque[Span] = deque(maxlen=max_finished)
        self._clock = clock
        self.total_finished = 0

    def _now(self) -> float:
        return (self._clock or get_clock()).monotonic()

    def span(self, name: str, **attrs: object) -> _ActiveSpan:
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=self._stack[-1].span_id if self._stack else None,
            start_s=self._now(),
            attrs=dict(attrs),
        )
        return _ActiveSpan(self, span)

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @property
    def depth(self) -> int:
        return len(self._stack)

    def _push(self, span: Span) -> None:
        # Re-stamp the start on entry: the span object may have been
        # created eagerly, and parentage must reflect entry-time nesting.
        span.parent_id = self._stack[-1].span_id if self._stack else None
        span.start_s = self._now()
        self._stack.append(span)

    def _pop(self, span: Span, failed: bool = False) -> None:
        span.duration_s = self._now() - span.start_s
        if failed:
            span.attrs["error"] = True
        # Tolerate exception-driven unwinding that skipped inner exits.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self._finished.append(span)
        self.total_finished += 1

    def drain(self) -> list[Span]:
        """All spans finished since the last drain (oldest first)."""
        out = list(self._finished)
        self._finished.clear()
        return out


def aggregate_spans(spans: list[Span]) -> dict[str, dict[str, float]]:
    """Collapse finished spans into per-name stage summaries.

    Returns ``{name: {"count": n, "total_s": t, "max_s": m}}`` — the
    shape the flight recorder stores per round and the report renders
    as stage-timing columns.
    """
    stages: dict[str, dict[str, float]] = {}
    for span in spans:
        if span.duration_s is None:
            continue
        stage = stages.setdefault(
            span.name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        stage["count"] += 1
        stage["total_s"] += span.duration_s
        stage["max_s"] = max(stage["max_s"], span.duration_s)
    return stages
