"""``repro.obs`` — pipeline telemetry: metrics, spans, flight recorder.

The measurement substrate for the whole reproduction. Three layers:

* :mod:`repro.obs.registry` — a zero-dependency metrics registry
  (counters, gauges, fixed-bucket histograms, labeled series);
* :mod:`repro.obs.spans` — nested wall-clock spans with structured
  attributes, drained per round;
* :mod:`repro.obs.recorder` — the :class:`FlightRecorder` that ties
  both to an append-only JSONL event log plus an in-memory ring of
  per-round snapshots, and the no-op :class:`NullRecorder` that is the
  process default.

Instrumentation is **default-on but near-free**: every hot path calls
``get_recorder()`` and the default recorder does nothing. Enable
capture either in code::

    from repro.obs import FlightRecorder, recording

    with recording(FlightRecorder(path="run.jsonl")) as rec:
        system.run_round(interval, truth, platform)
    print(rec.rounds[-1]["stages"])

or for any entry point by exporting ``REPRO_OBS_JSONL=run.jsonl``, then
render the recording with ``repro-traffic obs report run.jsonl``.

The metric-name catalogue and span hierarchy live in
``docs/OBSERVABILITY.md``.
"""

from repro.obs.dashboard import MetricsView, dashboard_file, render_dashboard
from repro.obs.exporters import to_json, to_prometheus_text
from repro.obs.recorder import (
    OBS_ENV_VAR,
    FlightRecorder,
    NullRecorder,
    configure_from_env,
    get_recorder,
    recording,
    set_recorder,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import (
    EVENT_SCHEMAS,
    load_events,
    render_report,
    report_file,
    summarize_rounds,
    verify_recording,
)
from repro.obs.slo import (
    ALERT_LEVEL,
    ALERT_STATES,
    OK,
    PAGE,
    SLO,
    SLO_ALERT_EVENT,
    WARNING,
    BurnWindow,
    CounterRatioSLI,
    HistogramThresholdSLI,
    SLOEngine,
    SLOStatus,
    default_serving_slos,
)
from repro.obs.spans import Span, SpanTracer, aggregate_spans
from repro.obs.trace import READ_TRACE_EVENT, RUNG_ORDER, ReadTracer, worst_rung

__all__ = [
    "ALERT_LEVEL",
    "ALERT_STATES",
    "OK",
    "PAGE",
    "SLO",
    "SLO_ALERT_EVENT",
    "WARNING",
    "BurnWindow",
    "CounterRatioSLI",
    "HistogramThresholdSLI",
    "MetricsView",
    "SLOEngine",
    "SLOStatus",
    "dashboard_file",
    "default_serving_slos",
    "render_dashboard",
    "READ_TRACE_EVENT",
    "RUNG_ORDER",
    "ReadTracer",
    "worst_rung",
    "OBS_ENV_VAR",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "FlightRecorder",
    "NullRecorder",
    "Span",
    "SpanTracer",
    "aggregate_spans",
    "configure_from_env",
    "get_recorder",
    "recording",
    "set_recorder",
    "to_json",
    "to_prometheus_text",
    "EVENT_SCHEMAS",
    "load_events",
    "render_report",
    "report_file",
    "summarize_rounds",
    "verify_recording",
]

# Default-on operational switch: REPRO_OBS_JSONL=<path> turns any run of
# any entry point into a flight-recorded run.
configure_from_env()
