"""Declarative SLOs with multi-window burn-rate alerting.

An SLO here is the standard SRE object: a *service level indicator*
(the fraction of events that were good), a *target* (the fraction that
must be good over time), and an *error budget* (``1 - target``) that
degraded service spends. Alerting is on **burn rate** — how many times
faster than sustainable the budget is being spent::

    burn = bad_fraction / (1 - target)

A burn of 1 spends exactly the budget; a burn of 100 on a 99% target
means every event is bad. Burn is evaluated over two sliding windows
per SLO: a *fast* window with a high threshold that pages on sudden
total breakage within minutes, and a *slow* window with a low threshold
that warns on sustained slow bleed. The alert state is the worst
verdict of the two, so a page degrades to a warning while the slow
window drains and then to ok — the ``ok → page → warning → ok`` arc
the chaos suite asserts under a sustained outage.

The :class:`SLOEngine` is driven entirely off a
:class:`~repro.obs.registry.MetricsRegistry` and the injectable
:mod:`repro.core.clock`: call :meth:`SLOEngine.tick` once per interval
(the CLI serve loop does) and it samples each SLI's cumulative
counters, computes windowed burn, exports ``slo.alert_state`` /
``slo.burn_rate`` gauges, and emits one ``slo_alert`` event per state
transition. Nothing here imports the serving layer; the default
serving SLOs are bound to it only by metric names.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass

from repro.core.clock import Clock, get_clock
from repro.core.errors import ConfigError
from repro.obs.recorder import get_recorder
from repro.obs.registry import Histogram, MetricsRegistry

#: Alert states, from best to worst.
OK = "ok"
WARNING = "warning"
PAGE = "page"

ALERT_STATES = (OK, WARNING, PAGE)

#: Numeric severity exported through the ``slo.alert_state`` gauge.
ALERT_LEVEL = {OK: 0, WARNING: 1, PAGE: 2}

#: The flight-recorder event kind an alert transition is emitted as.
SLO_ALERT_EVENT = "slo_alert"


@dataclass(frozen=True, slots=True)
class BurnWindow:
    """One sliding burn-rate window and the state it asserts.

    ``min_events`` guards against alerting on statistical noise: a
    window whose total event delta is below it reports a burn of 0.
    """

    window_s: float
    threshold: float
    state: str = PAGE
    min_events: int = 1

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ConfigError("window_s must be positive")
        if self.threshold <= 0:
            raise ConfigError("burn threshold must be positive")
        if self.state not in (WARNING, PAGE):
            raise ConfigError(
                f"a burn window asserts 'warning' or 'page', not {self.state!r}"
            )
        if self.min_events < 1:
            raise ConfigError("min_events must be >= 1")


class CounterRatioSLI:
    """good/total from one counter family, split by a label.

    ``CounterRatioSLI("serving.reads", "status", good=("fresh",
    "stale"))`` reads every labeled series of the family and counts a
    series toward ``good`` when its ``status`` label is listed. With
    ``total=None`` every series counts toward the denominator.
    """

    def __init__(
        self,
        family: str,
        label: str,
        good: tuple[str, ...],
        total: tuple[str, ...] | None = None,
    ) -> None:
        if not good:
            raise ConfigError("a ratio SLI needs at least one good label value")
        self.family = family
        self.label = label
        self.good = tuple(good)
        self.total = tuple(total) if total is not None else None

    def sample(self, registry: MetricsRegistry) -> tuple[float, float]:
        good = total = 0.0
        for labels, series in registry.series(self.family):
            if isinstance(series, Histogram):
                continue
            value = series.value
            label_value = dict(labels).get(self.label)
            if self.total is None or label_value in self.total:
                total += value
            if label_value in self.good:
                good += value
        return good, total


class HistogramThresholdSLI:
    """good = observations at or below a threshold, from a histogram.

    The threshold should sit on (or near) a bucket bound — accuracy is
    bucket-resolution-bounded, exactly like ``histogram_quantile``. All
    labeled series of the family are pooled.
    """

    def __init__(self, family: str, threshold: float) -> None:
        if threshold <= 0:
            raise ConfigError("threshold must be positive")
        self.family = family
        self.threshold = threshold

    def sample(self, registry: MetricsRegistry) -> tuple[float, float]:
        good = total = 0.0
        for _labels, series in registry.series(self.family):
            if not isinstance(series, Histogram):
                continue
            idx = bisect.bisect_right(series.bounds, self.threshold) - 1
            if idx >= 0:
                good += series.cumulative_counts()[idx]
            total += series.count
        return good, total


@dataclass(frozen=True, slots=True)
class SLO:
    """One declarative objective: an SLI, a target, two burn windows."""

    name: str
    sli: object
    target: float
    fast: BurnWindow
    slow: BurnWindow
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("an SLO needs a name")
        if not 0.0 < self.target < 1.0:
            raise ConfigError(
                f"target must be in (0, 1), got {self.target} "
                f"(an SLO of 1.0 has no error budget to burn)"
            )
        if self.fast.window_s > self.slow.window_s:
            raise ConfigError("the fast window must not outlast the slow window")

    @property
    def budget(self) -> float:
        """The error budget: the bad fraction the target tolerates."""
        return 1.0 - self.target


@dataclass(slots=True)
class SLOStatus:
    """One SLO's most recent evaluation — what ``obs top`` renders."""

    name: str
    state: str = OK
    burn_fast: float = 0.0
    burn_slow: float = 0.0
    good: float = 0.0
    total: float = 0.0
    target: float = 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "state": self.state,
            "burn_fast": self.burn_fast,
            "burn_slow": self.burn_slow,
            "good": self.good,
            "total": self.total,
            "target": self.target,
        }


class _Track:
    """Internal per-SLO state: the sample deque and the alert state."""

    __slots__ = ("samples", "status")

    def __init__(self, slo: SLO) -> None:
        # (t, cumulative good, cumulative total), oldest first.
        self.samples: deque[tuple[float, float, float]] = deque()
        self.status = SLOStatus(name=slo.name, target=slo.target)


class SLOEngine:
    """Evaluates a set of SLOs against a registry, one tick at a time.

    Ticks sample each SLI's *cumulative* counts; burn over a window is
    computed from the delta between the newest sample and the newest
    sample at or before the window's horizon, so the engine never needs
    the registry to reset anything. Tick it once per serving interval.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        slos: tuple[SLO, ...] | list[SLO],
        clock: Clock | None = None,
    ) -> None:
        if not slos:
            raise ConfigError("an SLO engine needs at least one SLO")
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate SLO names: {names}")
        self._registry = registry
        self._slos = tuple(slos)
        self._clock = clock
        self._tracks = {slo.name: _Track(slo) for slo in self._slos}

    @property
    def slos(self) -> tuple[SLO, ...]:
        return self._slos

    def state(self, name: str) -> str:
        return self._tracks[name].status.state

    def statuses(self) -> dict[str, SLOStatus]:
        return {name: track.status for name, track in self._tracks.items()}

    def worst_state(self) -> str:
        return max(
            (t.status.state for t in self._tracks.values()),
            key=ALERT_LEVEL.__getitem__,
        )

    def _now(self) -> float:
        return (self._clock or get_clock()).monotonic()

    def tick(self) -> dict[str, str]:
        """Sample every SLI, update alert states, export, return them."""
        recorder = get_recorder()
        now = self._now()
        out: dict[str, str] = {}
        for slo in self._slos:
            track = self._tracks[slo.name]
            good, total = slo.sli.sample(self._registry)
            track.samples.append((now, good, total))
            self._prune(track, now - slo.slow.window_s)
            burn_fast = self._burn(track, now, slo, slo.fast)
            burn_slow = self._burn(track, now, slo, slo.slow)
            state = OK
            if burn_slow >= slo.slow.threshold:
                state = slo.slow.state
            if burn_fast >= slo.fast.threshold and (
                ALERT_LEVEL[slo.fast.state] > ALERT_LEVEL[state]
            ):
                state = slo.fast.state
            previous = track.status.state
            track.status.state = state
            track.status.burn_fast = burn_fast
            track.status.burn_slow = burn_slow
            track.status.good = good
            track.status.total = total
            recorder.gauge("slo.alert_state", ALERT_LEVEL[state], slo=slo.name)
            recorder.gauge("slo.burn_rate", burn_fast, slo=slo.name, window="fast")
            recorder.gauge("slo.burn_rate", burn_slow, slo=slo.name, window="slow")
            if state != previous:
                recorder.count("slo.transitions", slo=slo.name, to=state)
                recorder.event(
                    SLO_ALERT_EVENT,
                    slo=slo.name,
                    previous=previous,
                    state=state,
                    burn_fast=burn_fast,
                    burn_slow=burn_slow,
                    target=slo.target,
                    fast_window_s=slo.fast.window_s,
                    slow_window_s=slo.slow.window_s,
                )
            out[slo.name] = state
        return out

    @staticmethod
    def _prune(track: _Track, horizon: float) -> None:
        # Keep the newest sample at or before the horizon: it is the
        # baseline the slow window's delta is measured against.
        samples = track.samples
        while len(samples) >= 2 and samples[1][0] <= horizon:
            samples.popleft()

    @staticmethod
    def _burn(track: _Track, now: float, slo: SLO, window: BurnWindow) -> float:
        samples = track.samples
        if len(samples) < 2:
            return 0.0
        horizon = now - window.window_s
        baseline = samples[0]
        for sample in samples:
            if sample[0] > horizon:
                break
            baseline = sample
        _t, good0, total0 = baseline
        _t, good1, total1 = samples[-1]
        events = total1 - total0
        if events < window.min_events:
            return 0.0
        bad_fraction = 1.0 - (good1 - good0) / events
        return bad_fraction / slo.budget


# ----------------------------------------------------------------------
# The serving layer's default objectives
# ----------------------------------------------------------------------
def default_serving_slos(
    interval_s: float,
    soft_after_s: float | None = None,
    latency_threshold_s: float = 0.025,
) -> tuple[SLO, ...]:
    """The four objectives the serving read path is operated against.

    ``read-availability`` counts a read as good only when it was served
    *live from a snapshot* (fresh or stale). This is deliberately
    stricter than the benchmark's "answered" fraction: the baseline
    fallback keeps readers answered, but it spends error budget — a
    sustained pipeline outage must page even though nobody got an
    exception. ``soft_after_s`` defaults to the serving stack's default
    staleness relationship (1.5 intervals) and must match the store's
    :class:`~repro.serving.store.StalenessPolicy` for the freshness SLI
    to sit on a bucket bound.
    """
    if interval_s <= 0:
        raise ConfigError("interval_s must be positive")
    soft = soft_after_s if soft_after_s is not None else 1.5 * interval_s
    fast = BurnWindow(window_s=2 * interval_s, threshold=10.0, state=PAGE)
    slow = BurnWindow(window_s=4 * interval_s, threshold=2.0, state=WARNING)
    return (
        SLO(
            name="read-availability",
            sli=CounterRatioSLI(
                "serving.reads", "status", good=("fresh", "stale")
            ),
            target=0.99,
            fast=fast,
            slow=slow,
            description="reads served live from a snapshot (fresh or stale)",
        ),
        SLO(
            name="read-freshness",
            sli=HistogramThresholdSLI("serving.freshness_seconds", soft),
            target=0.99,
            fast=fast,
            slow=slow,
            description="reads answered inside the soft staleness window",
        ),
        SLO(
            name="read-latency",
            sli=HistogramThresholdSLI("serving.read_seconds", latency_threshold_s),
            target=0.999,
            fast=fast,
            slow=slow,
            description=f"reads under {latency_threshold_s * 1000:g} ms",
        ),
        SLO(
            name="degraded-reads",
            sli=CounterRatioSLI("serving.reads", "status", good=("fresh",)),
            target=0.90,
            fast=fast,
            slow=slow,
            description="reads needing no degradation at all",
        ),
    )
