"""Request traces for the serving read path, with tail sampling.

Every :meth:`~repro.serving.store.EstimateStore.get_many` call is one
*read*: a batch of roads answered from a single consistent snapshot.
When a flight recorder is installed, each read gets a trace — trace id,
the worst ladder rung it touched (``fresh``/``stale``/``baseline``/
``shed``/``unavailable``), the snapshot version and age it was served
from, admission and breaker state, and the read's latency — emitted as
one structured ``read_trace`` event.

Recording every healthy read of a store doing thousands of reads per
interval would drown the black box in the boring case, so the tracer
**tail-samples**: a read that touched any degraded rung (anything worse
than ``fresh``), was short-circuited by the breaker, or was shed is
*always* recorded; fully healthy reads are recorded one-in-
``sample_every``. Sampling is deterministic (a shared counter, not a
RNG) so `recorded + skipped` always adds up to the number of reads —
asserted by the concurrency suite — and the accounting is exported as
``serving.traces{recorded=...}``.

The tracer allocates ids and sampling slots from :mod:`itertools`
counters, which are atomic under the GIL: concurrent readers never tear
a trace or share an id.
"""

from __future__ import annotations

import itertools

from repro.core.errors import ConfigError

#: The flight-recorder event kind a read trace is emitted as.
READ_TRACE_EVENT = "read_trace"

#: Ladder rungs from best to worst — the trace records the worst rung
#: any road of the read landed on.
RUNG_ORDER = ("fresh", "stale", "baseline", "shed", "unavailable")

_RUNG_RANK = {rung: rank for rank, rung in enumerate(RUNG_ORDER)}


def worst_rung(statuses) -> str:
    """The worst ladder rung among ``statuses`` (an iterable)."""
    worst = "fresh"
    rank = 0
    for status in statuses:
        status_rank = _RUNG_RANK.get(status, len(RUNG_ORDER))
        if status_rank > rank:
            worst, rank = status, status_rank
    return worst


class ReadTracer:
    """Tail-sampling trace policy for one store's reads.

    ``sample_every=N`` records every Nth fully-healthy read (1 records
    them all); degraded reads are always recorded regardless. The
    tracer is intentionally free of store internals: the store hands it
    the facts of one finished read and it decides whether an event is
    emitted.
    """

    def __init__(self, sample_every: int = 16) -> None:
        if sample_every < 1:
            raise ConfigError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self._sample_every = sample_every
        self._ids = itertools.count(1)
        self._healthy_slots = itertools.count(0)

    @property
    def sample_every(self) -> int:
        return self._sample_every

    def record_read(
        self,
        recorder,
        status_counts: dict[str, int],
        latency_s: float,
        snapshot_version: int | None,
        age_s: float | None,
        breaker_open: bool = False,
        inflight: int = 0,
        capacity: int = 0,
    ) -> int | None:
        """Trace one finished read; returns the trace id if recorded.

        Every read consumes a trace id (so ids double as a read
        sequence number); only sampled reads cost an event.
        """
        trace_id = next(self._ids)
        rung = worst_rung(status_counts)
        degraded = rung != "fresh" or breaker_open
        if degraded:
            sampled = "tail"
        elif next(self._healthy_slots) % self._sample_every == 0:
            sampled = "interval"
        else:
            recorder.count("serving.traces", recorded="false")
            return None
        recorder.count("serving.traces", recorded="true")
        recorder.event(
            READ_TRACE_EVENT,
            trace_id=trace_id,
            rung=rung,
            statuses=dict(status_counts),
            roads=sum(status_counts.values()),
            latency_s=latency_s,
            snapshot_version=snapshot_version,
            age_s=age_s,
            breaker_open=breaker_open,
            inflight=inflight,
            capacity=capacity,
            sampled=sampled,
        )
        return trace_id
