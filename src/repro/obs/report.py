"""Render a recorded run back into a round-by-round summary.

Reads the JSONL event log a :class:`~repro.obs.recorder.FlightRecorder`
wrote and produces the operator view: one row per estimation round with
its stage timings (seed selection, crowd round, trend inference, speed
solve) and health deltas (quarantined workers, breaker trips, seed
substitutions). This is the ``repro-traffic obs report`` backend and
the programmatic API for notebooks.

Cumulative counters in the round snapshots are converted to per-round
deltas here, so adding a counter to the instrumentation automatically
makes it reportable without touching the recorder format.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.errors import DataError

# repro.obs is imported by every instrumented layer, so this module
# must stay a leaf: it reuses nothing from evalkit and formats its own
# tables (same aligned-monospace style as evalkit.reporting).


def format_table(
    headers: list[str],
    rows: list[list[object]],
    title: str | None = None,
) -> str:
    """An aligned monospace table (obs-local, evalkit-compatible)."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in str_rows))
        if str_rows
        else len(headers[c])
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"

#: Span name -> report column for the per-round stage timing table.
STAGE_COLUMNS: tuple[tuple[str, str], ...] = (
    ("seeds.select", "seeds ms"),
    ("crowd.round", "crowd ms"),
    ("trend.infer", "trend ms"),
    ("speed.solve", "solve ms"),
)


def load_events(path: str | Path) -> list[dict]:
    """Parse one JSONL recording; raises :class:`DataError` if unusable.

    Malformed lines, a missing/empty file, or a recording with zero
    events are all hard errors — the CI gate runs exactly this.
    """
    path = Path(path)
    if not path.exists():
        raise DataError(f"recording {path} does not exist")
    events: list[dict] = []
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DataError(
                    f"{path}:{lineno}: malformed JSONL line: {exc}"
                ) from exc
            if not isinstance(event, dict) or "type" not in event:
                raise DataError(
                    f"{path}:{lineno}: event must be an object with a 'type'"
                )
            events.append(event)
    if not events:
        raise DataError(f"recording {path} is empty")
    return events


#: Required fields per structured event kind. ``obs verify`` rejects a
#: recording containing an event of an unknown kind or one missing a
#: required field — the schema contract the trace/SLO consumers
#: (``obs top``, the chaos suite, downstream tooling) rely on. New
#: emitters must register here; docs/OBSERVABILITY.md documents each.
EVENT_SCHEMAS: dict[str, tuple[str, ...]] = {
    "read_trace": (
        "trace_id", "rung", "statuses", "roads", "latency_s",
        "snapshot_version", "age_s", "breaker_open", "sampled",
    ),
    "slo_alert": (
        "slo", "previous", "state", "burn_fast", "burn_slow", "target",
    ),
    "publish_rejected": ("version", "reason"),
    "round_not_published": ("round", "interval", "outcome"),
    "snapshot_corrupt": ("file", "reason"),
    "snapshot_corruption_injected": ("file",),
}


def verify_recording(path: str | Path) -> str:
    """Validate a recording; returns a one-line summary, raises on rot.

    Beyond well-formed JSONL, every ``event`` line is checked against
    :data:`EVENT_SCHEMAS`: an unknown kind, a missing kind, or a kind
    missing one of its required fields is a hard error.
    """
    events = load_events(path)
    by_type: dict[str, int] = {}
    for lineno, event in enumerate(events, start=1):
        by_type[event["type"]] = by_type.get(event["type"], 0) + 1
        if event["type"] != "event":
            continue
        kind = event.get("kind")
        if kind is None:
            raise DataError(f"{path}: event #{lineno} has no 'kind'")
        schema = EVENT_SCHEMAS.get(kind)
        if schema is None:
            raise DataError(
                f"{path}: event #{lineno} has unknown kind {kind!r} "
                f"(known: {sorted(EVENT_SCHEMAS)})"
            )
        missing = [field for field in schema if field not in event]
        if missing:
            raise DataError(
                f"{path}: {kind!r} event #{lineno} is missing required "
                f"fields {missing}"
            )
    if by_type.get("span", 0) == 0 and by_type.get("round", 0) == 0:
        raise DataError(
            f"recording {path} has no span or round events "
            f"(types seen: {sorted(by_type)})"
        )
    summary = ", ".join(f"{n} {t}" for t, n in sorted(by_type.items()))
    return f"{path}: {len(events)} events ({summary})"


def _counter_delta(
    current: dict[str, float], previous: dict[str, float], prefix: str
) -> float:
    """Summed increase of every counter series under ``prefix``."""
    total = 0.0
    for key, value in current.items():
        if key == prefix or key.startswith(prefix + "{"):
            total += value - previous.get(key, 0.0)
    return total


def _counter_value(counters: dict[str, float], prefix: str) -> float:
    return sum(
        value
        for key, value in counters.items()
        if key == prefix or key.startswith(prefix + "{")
    )


def summarize_rounds(events: list[dict]) -> list[dict]:
    """One flat summary dict per round event, with counter deltas."""
    rows: list[dict] = []
    previous: dict[str, float] = {}
    for event in events:
        if event.get("type") != "round":
            continue
        counters = event.get("counters", {})
        stages = event.get("stages", {})
        fields = event.get("fields", {})
        row = {
            "round": event.get("round"),
            "interval": event.get("interval"),
            "wall_s": event.get("wall_s"),
            "stages": stages,
            "quarantined": _counter_value(counters, "crowd.quarantined_workers"),
            "breaker_trips": _counter_delta(
                counters, previous, "crowd.breaker.trips"
            ),
            "substitutions": _counter_delta(
                counters, previous, "pipeline.substitutions"
            ),
            "tasks_answered": _counter_delta(
                counters, previous, "crowd.tasks{status=answered}"
            ),
            "tasks_failed": sum(
                _counter_delta(counters, previous, f"crowd.tasks{{status={s}}}")
                for s in ("no_response", "dropped", "skipped_circuit_open")
            ),
            "degraded": bool(fields.get("degraded", False)),
        }
        rows.append(row)
        previous = counters
    return rows


def _stage_ms(stages: dict, span_name: str) -> str:
    stage = stages.get(span_name)
    if not stage:
        return "-"
    return fmt(stage["total_s"] * 1000.0, 2)


def render_report(events: list[dict], title: str | None = None) -> str:
    """The round-by-round operator table for one recording."""
    rounds = summarize_rounds(events)
    if not rounds:
        spans = [e for e in events if e.get("type") == "span"]
        if not spans:
            raise DataError("recording contains no round or span events")
        # Span-only recording (e.g. a plain estimate run): aggregate.
        totals: dict[str, tuple[int, float]] = {}
        for span in spans:
            count, total = totals.get(span["name"], (0, 0.0))
            totals[span["name"]] = (count + 1, total + (span.get("dur_s") or 0.0))
        rows = [
            [name, count, fmt(total * 1000.0, 2)]
            for name, (count, total) in sorted(totals.items())
        ]
        return format_table(
            ["span", "count", "total ms"],
            rows,
            title=title or "Recorded spans (no rounds)",
        )

    headers = (
        ["round", "interval", "wall ms"]
        + [column for _, column in STAGE_COLUMNS]
        + ["answered", "failed", "subst", "quarantine", "trips", "degraded"]
    )
    table_rows = []
    for row in rounds:
        table_rows.append(
            [
                row["round"],
                row["interval"] if row["interval"] is not None else "-",
                fmt(row["wall_s"] * 1000.0, 2) if row["wall_s"] else "-",
                *[_stage_ms(row["stages"], name) for name, _ in STAGE_COLUMNS],
                int(row["tasks_answered"]),
                int(row["tasks_failed"]),
                int(row["substitutions"]),
                int(row["quarantined"]),
                int(row["breaker_trips"]),
                "yes" if row["degraded"] else "",
            ]
        )
    degraded = sum(1 for r in rounds if r["degraded"])
    table = format_table(
        headers,
        table_rows,
        title=title or f"Flight recording: {len(rounds)} rounds",
    )
    footer = (
        f"\n{len(rounds)} rounds, {degraded} degraded; "
        f"totals: {int(sum(r['tasks_answered'] for r in rounds))} answered, "
        f"{int(sum(r['tasks_failed'] for r in rounds))} failed, "
        f"{int(sum(r['substitutions'] for r in rounds))} substituted, "
        f"{int(sum(r['breaker_trips'] for r in rounds))} breaker trips"
    )
    return table + footer


def report_file(path: str | Path) -> str:
    """Load + render in one call (the CLI entry point)."""
    events = load_events(path)
    return render_report(events, title=f"Flight recording: {path}")
