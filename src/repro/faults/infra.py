"""Infrastructure-level fault scenarios for the serving layer.

The scenarios in :mod:`repro.faults.scenarios` misbehave *inside* a
crowdsourcing round: workers go silent, spam, or lose tasks, and PR 1's
degradation machinery keeps the round itself alive. This module models
the faults *around* the round — the ones that take the whole pipeline
down and that the snapshot publisher/store split must absorb:

``stage_hang``
    A named pipeline stage (``collect``, ``estimate``, ``selection``,
    ``mining``) takes ``seconds`` longer than it should — a stuck RPC, a
    GC pause, a wedged worker process. Manifested by advancing the
    injected clock inside the stage, so the watchdog sees a genuine
    timeout without any real waiting.
``publisher_crash``
    The publisher process dies after producing a round's estimates but
    before publishing the snapshot. The store must keep serving the
    previous snapshot, and a restart must recover the last-known-good
    persisted snapshot.
``snapshot_corruption``
    The persisted snapshot file for the round is corrupted on disk
    (torn write, bad sector). Recovery must reject it on checksum and
    fall back to an older valid snapshot — never serve garbage.
``clock_skew``
    The clock jumps forward by ``seconds`` at the start of the round —
    the reason every duration in this package is measured on a
    *monotonic* clock. Staleness and deadlines must respond to the jump
    coherently (snapshots age, deadlines fire) rather than corrupting
    state.
``pipeline_outage``
    The round pipeline is entirely unavailable for the window (upstream
    data feed dead, scheduler wedged): the collect stage fails outright
    every attempt. Distinct from the worker-level ``outage`` scenario,
    where the platform still runs and degradation substitutes seeds —
    here no round completes at all and readers must ride on the stale
    snapshot and then the historical baseline.

Like the worker-level scenarios, windows are expressed in round indices
so a scenario replays identically anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.clock import Clock, ManualClock
from repro.core.errors import CrowdsourcingError, ServingError

#: Recognised infrastructure fault kinds.
INFRA_KINDS = (
    "stage_hang",
    "publisher_crash",
    "snapshot_corruption",
    "clock_skew",
    "pipeline_outage",
)

#: Pipeline stages a ``stage_hang`` may name.
HANGABLE_STAGES = ("mining", "selection", "collect", "estimate")


class PipelineOutageError(ServingError):
    """Injected: the round pipeline is unavailable this round."""


class PublisherCrashError(ServingError):
    """Injected: the publisher died before publishing the snapshot."""


@dataclass(frozen=True, slots=True)
class InfraFault:
    """One contiguous stretch of rounds during which a fault is active."""

    kind: str
    start_round: int
    num_rounds: int
    stage: str | None = None  # stage_hang only
    seconds: float = 0.0  # hang duration / skew magnitude

    def __post_init__(self) -> None:
        if self.kind not in INFRA_KINDS:
            raise CrowdsourcingError(
                f"unknown infrastructure fault kind {self.kind!r}; "
                f"choose from {INFRA_KINDS}"
            )
        if self.start_round < 0:
            raise CrowdsourcingError("start_round must be >= 0")
        if self.num_rounds < 1:
            raise CrowdsourcingError("num_rounds must be >= 1")
        if self.kind == "stage_hang":
            if self.stage not in HANGABLE_STAGES:
                raise CrowdsourcingError(
                    f"stage_hang needs a stage from {HANGABLE_STAGES}, "
                    f"got {self.stage!r}"
                )
            if self.seconds <= 0:
                raise CrowdsourcingError("stage_hang needs seconds > 0")
        if self.kind == "clock_skew" and self.seconds <= 0:
            raise CrowdsourcingError("clock_skew needs seconds > 0")

    def active(self, round_index: int) -> bool:
        return self.start_round <= round_index < self.start_round + self.num_rounds

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "start_round": self.start_round,
            "num_rounds": self.num_rounds,
            "stage": self.stage,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "InfraFault":
        return cls(**payload)


@dataclass(frozen=True)
class InfraScenario:
    """A named, reproducible schedule of infrastructure faults."""

    name: str
    faults: tuple[InfraFault, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise CrowdsourcingError("scenario needs a name")
        object.__setattr__(self, "faults", tuple(self.faults))

    def active_faults(self, round_index: int) -> tuple[InfraFault, ...]:
        return tuple(f for f in self.faults if f.active(round_index))

    @property
    def last_faulty_round(self) -> int:
        """Index of the last round any fault covers (-1 if none)."""
        if not self.faults:
            return -1
        return max(f.start_round + f.num_rounds - 1 for f in self.faults)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "faults": [f.to_dict() for f in self.faults],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "InfraScenario":
        return cls(
            name=payload["name"],
            faults=tuple(
                InfraFault.from_dict(f) for f in payload.get("faults", ())
            ),
            description=payload.get("description", ""),
        )


class InfraInjector:
    """Replays an :class:`InfraScenario` against a publisher.

    The publisher consults the injector at fixed points of each round
    (hang before a stage, outage inside collect, crash before publish,
    corruption after persist); the injector answers from the active
    fault windows. ``begin_round`` advances the round clock and applies
    any pending clock skew.

    Clock skew is applied by advancing a :class:`ManualClock`; against
    the production monotonic clock a forward wall jump is invisible by
    construction (that is the point of measuring on it), so skew is a
    no-op there.
    """

    def __init__(self, scenario: InfraScenario, clock: Clock) -> None:
        self._scenario = scenario
        self._clock = clock
        self._round_index = -1

    @property
    def scenario(self) -> InfraScenario:
        return self._scenario

    @property
    def round_index(self) -> int:
        """Rounds seen so far (-1 before the first ``begin_round``)."""
        return self._round_index

    def _active(self, kind: str) -> tuple[InfraFault, ...]:
        return tuple(
            f
            for f in self._scenario.active_faults(self._round_index)
            if f.kind == kind
        )

    def begin_round(self) -> None:
        self._round_index += 1
        for fault in self._active("clock_skew"):
            if isinstance(self._clock, ManualClock):
                self._clock.advance(fault.seconds)

    def hang_seconds(self, stage: str) -> float:
        """Injected extra duration for ``stage`` this round (0 if none)."""
        return sum(
            f.seconds for f in self._active("stage_hang") if f.stage == stage
        )

    def pipeline_down(self) -> bool:
        """Is the round pipeline unavailable this round?"""
        return bool(self._active("pipeline_outage"))

    def crash_before_publish(self) -> bool:
        """Does the publisher die before publishing this round?"""
        return bool(self._active("publisher_crash"))

    def corrupt_snapshot(self) -> bool:
        """Is this round's persisted snapshot corrupted on disk?"""
        return bool(self._active("snapshot_corruption"))


# ----------------------------------------------------------------------
# Bundled scenarios — the serving chaos suite drives every one of these.
# ----------------------------------------------------------------------
def bundled_infra_scenarios(interval_s: float = 900.0) -> dict[str, InfraScenario]:
    """The infrastructure scenario library (durations scale with the
    interval length, default 15 minutes)."""
    scenarios = (
        InfraScenario(
            name="stage-hang",
            description="the estimate stage hangs past the round deadline "
            "for rounds 2-3",
            faults=(
                InfraFault("stage_hang", 2, 2, stage="estimate",
                           seconds=2.0 * interval_s),
            ),
        ),
        InfraScenario(
            name="collect-hang",
            description="crowd collection stalls for half an interval in "
            "rounds 1-2 (recoverable), then a full interval in round 4",
            faults=(
                InfraFault("stage_hang", 1, 2, stage="collect",
                           seconds=0.5 * interval_s),
                InfraFault("stage_hang", 4, 1, stage="collect",
                           seconds=1.5 * interval_s),
            ),
        ),
        InfraScenario(
            name="publisher-crash",
            description="the publisher dies before publishing in rounds 2-4",
            faults=(InfraFault("publisher_crash", 2, 3),),
        ),
        InfraScenario(
            name="snapshot-corruption",
            description="rounds 2-3 persist corrupted snapshots and then "
            "crash, so recovery must skip them",
            faults=(
                InfraFault("snapshot_corruption", 2, 2),
                InfraFault("publisher_crash", 2, 2),
            ),
        ),
        InfraScenario(
            name="clock-skew",
            description="the clock jumps a full hour forward at round 2",
            faults=(InfraFault("clock_skew", 2, 1, seconds=3600.0),),
        ),
        InfraScenario(
            name="sustained-outage",
            description="the round pipeline is down for rounds 1-6 — "
            "readers must ride the stale snapshot into the baseline",
            faults=(InfraFault("pipeline_outage", 1, 6),),
        ),
        InfraScenario(
            name="flapping-outage",
            description="the pipeline flaps: short outages in rounds 1-2, "
            "5 and 8-9 with recoveries between — burn-rate alerting "
            "should warn on the sustained bleed without paging on "
            "every blip",
            faults=(
                InfraFault("pipeline_outage", 1, 2),
                InfraFault("pipeline_outage", 5, 1),
                InfraFault("pipeline_outage", 8, 2),
            ),
        ),
    )
    return {s.name: s for s in scenarios}


def get_infra_scenario(name: str, interval_s: float = 900.0) -> InfraScenario:
    """Look up a bundled infrastructure scenario by name."""
    scenarios = bundled_infra_scenarios(interval_s)
    if name not in scenarios:
        raise CrowdsourcingError(
            f"unknown infrastructure scenario {name!r}; "
            f"bundled: {sorted(scenarios)}"
        )
    return scenarios[name]
