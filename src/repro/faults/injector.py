"""Injecting fault scenarios into a worker pool.

:class:`FaultyWorkerPool` subclasses
:class:`~repro.crowd.workers.WorkerPool`, so it drops into any
:class:`~repro.crowd.platform.CrowdsourcingPlatform` unchanged. The
platform's per-round :meth:`begin_round` call advances the scenario
clock; :meth:`draw` then hands out workers wrapped so that active fault
windows manifest through the normal ``worker.answer`` path:

* **no_show / spam / stale** afflict a deterministic subset of the pool
  (fraction = window intensity, membership drawn from the scenario
  seed), so the same workers misbehave round after round — which is
  exactly what lets the health tracker quarantine them;
* **outage** silences everyone, which the platform's circuit breaker
  turns into cheap skipped tasks instead of paid retry storms;
* **task_dropout** is consulted by the platform through the
  :meth:`task_dropped` hook before any worker is drawn.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.crowd.workers import Worker, WorkerPool
from repro.faults.scenarios import FaultScenario, FaultWindow


class _FaultedWorker:
    """A worker seen through the currently active fault windows.

    Duck-types :class:`~repro.crowd.workers.Worker` for the platform's
    purposes (``worker_id`` + ``answer``).
    """

    __slots__ = ("_base", "_pool", "_no_show", "_spam", "_stale", "_outage")

    def __init__(
        self,
        base: Worker,
        pool: "FaultyWorkerPool",
        no_show: bool,
        spam: bool,
        stale: bool,
        outage: bool,
    ) -> None:
        self._base = base
        self._pool = pool
        self._no_show = no_show
        self._spam = spam
        self._stale = stale
        self._outage = outage

    @property
    def worker_id(self) -> int:
        return self._base.worker_id

    def answer(
        self, true_speed_kmh: float, rng: np.random.Generator
    ) -> float | None:
        self._pool.remember_truth(true_speed_kmh)
        if self._outage or self._no_show:
            return None
        if self._spam:
            # Consume the reliability draw the honest path would use, so
            # spam windows do not shift the rng stream for other workers.
            rng.random()
            return float(rng.uniform(1.0, 100.0))
        if self._stale:
            old = self._pool.stale_truth()
            if old is not None:
                return self._base.answer(old, rng)
        return self._base.answer(true_speed_kmh, rng)


class FaultyWorkerPool(WorkerPool):
    """A worker pool that replays a :class:`FaultScenario`."""

    def __init__(self, base: WorkerPool, scenario: FaultScenario) -> None:
        super().__init__(base.workers())
        self._scenario = scenario
        self._round_index = -1
        self._memory: deque[float] = deque(maxlen=256)
        # Stale windows replay remembered truths, so memory must accrue
        # from round 0 — wrap workers even while no window is active.
        self._needs_memory = any(w.kind == "stale" for w in scenario.windows)
        # Deterministic afflicted subsets per worker-level window.
        self._afflicted: dict[FaultWindow, frozenset[int]] = {}
        for window in scenario.windows:
            if window.kind in ("no_show", "spam", "stale"):
                wrng = np.random.default_rng(
                    (scenario.seed, window.seed_offset, window.start_round)
                )
                mask = wrng.random(self.size) < window.intensity
                self._afflicted[window] = frozenset(
                    w.worker_id
                    for w, hit in zip(self.workers(), mask)
                    if hit
                )

    @property
    def scenario(self) -> FaultScenario:
        return self._scenario

    @property
    def round_index(self) -> int:
        """Rounds seen so far (-1 before the first ``begin_round``)."""
        return self._round_index

    def afflicted_workers(self, window: FaultWindow) -> frozenset[int]:
        """The deterministic subset a worker-level window afflicts."""
        return self._afflicted.get(window, frozenset())

    # ------------------------------------------------------------------
    # Platform hooks
    # ------------------------------------------------------------------
    def begin_round(self, interval: int | None) -> None:
        self._round_index += 1

    def task_dropped(self, road_id: int) -> bool:
        """Is this round's task for ``road_id`` lost in transit?"""
        for window in self._scenario.active_windows(self._round_index):
            if window.kind != "task_dropout":
                continue
            trng = np.random.default_rng(
                (
                    self._scenario.seed,
                    window.seed_offset,
                    self._round_index,
                    road_id,
                )
            )
            if trng.random() < window.intensity:
                return True
        return False

    def draw(
        self,
        count: int,
        rng: np.random.Generator,
        exclude: frozenset[int] = frozenset(),
    ) -> list:
        workers = super().draw(count, rng, exclude=exclude)
        active = self._scenario.active_windows(self._round_index)
        if not active and not self._needs_memory:
            return workers
        outage = any(w.kind == "outage" for w in active)
        no_show_ids: set[int] = set()
        spam_ids: set[int] = set()
        stale_ids: set[int] = set()
        for window in active:
            if window.kind == "no_show":
                no_show_ids |= self._afflicted[window]
            elif window.kind == "spam":
                spam_ids |= self._afflicted[window]
            elif window.kind == "stale":
                stale_ids |= self._afflicted[window]
        return [
            _FaultedWorker(
                worker,
                self,
                no_show=worker.worker_id in no_show_ids,
                spam=worker.worker_id in spam_ids,
                stale=worker.worker_id in stale_ids,
                outage=outage,
            )
            for worker in workers
        ]

    # ------------------------------------------------------------------
    # Stale-answer memory
    # ------------------------------------------------------------------
    def remember_truth(self, true_speed_kmh: float) -> None:
        self._memory.append(true_speed_kmh)

    def stale_truth(self) -> float | None:
        """An old remembered truth, or None while memory is thin.

        Picks from the oldest quarter of the memory so the reported
        value genuinely lags the current traffic state.
        """
        if len(self._memory) < 8:
            return None
        return self._memory[len(self._memory) // 4]


def inject_faults(pool: WorkerPool, scenario: FaultScenario) -> FaultyWorkerPool:
    """Wrap ``pool`` so it replays ``scenario`` — callers keep using the
    normal :class:`~repro.crowd.platform.CrowdsourcingPlatform` API."""
    return FaultyWorkerPool(pool, scenario)
