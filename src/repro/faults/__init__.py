"""Deterministic fault injection for the crowdsourcing layer.

Fault **scenarios** (:mod:`repro.faults.scenarios`) describe *what goes
wrong when*: windows of rounds during which a deterministic subset of
workers stops responding (no-show storm), starts spamming, answers with
stale speeds, the whole platform goes dark (outage), or tasks are lost
in transit (task dropout). The **injector**
(:mod:`repro.faults.injector`) wraps any
:class:`~repro.crowd.workers.WorkerPool` so the faults manifest through
the normal platform path — no caller changes required.

    from repro.faults import get_scenario, inject_faults

    pool = WorkerPool.sample(100, seed=1)
    faulty = inject_faults(pool, get_scenario("no-show-storm"))
    platform = CrowdsourcingPlatform(faulty, workers_per_task=5)

Everything is reproducible: the affected-worker subsets derive from the
scenario seed, and per-answer randomness comes from the round rng the
platform already threads through.
"""

from repro.faults.infra import (
    HANGABLE_STAGES,
    INFRA_KINDS,
    InfraFault,
    InfraInjector,
    InfraScenario,
    PipelineOutageError,
    PublisherCrashError,
    bundled_infra_scenarios,
    get_infra_scenario,
)
from repro.faults.injector import FaultyWorkerPool, inject_faults
from repro.faults.scenarios import (
    FAULT_KINDS,
    FaultScenario,
    FaultWindow,
    bundled_scenarios,
    get_scenario,
)

__all__ = [
    "FAULT_KINDS",
    "HANGABLE_STAGES",
    "INFRA_KINDS",
    "FaultScenario",
    "FaultWindow",
    "FaultyWorkerPool",
    "InfraFault",
    "InfraInjector",
    "InfraScenario",
    "PipelineOutageError",
    "PublisherCrashError",
    "bundled_infra_scenarios",
    "bundled_scenarios",
    "get_infra_scenario",
    "get_scenario",
    "inject_faults",
]
