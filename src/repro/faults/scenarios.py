"""Fault-scenario descriptions: what goes wrong, when, how hard.

A :class:`FaultScenario` is a named, seed-reproducible schedule of
:class:`FaultWindow` entries. Windows are expressed in **round
indices** — the 0-based count of crowdsourcing rounds since injection —
so a scenario replays identically regardless of the absolute interval
numbering of the day it is run against.

Fault kinds
-----------
``no_show``
    A deterministic fraction ``intensity`` of the pool stops responding
    for the window (reliability collapses to zero for those workers).
``spam``
    A fraction ``intensity`` of the pool answers uniformly at random
    for the window.
``stale``
    A fraction ``intensity`` of the pool answers with *old* speeds —
    truths remembered from earlier rounds — instead of the current one.
``outage``
    The platform is dark: every worker is silent for the window,
    regardless of ``intensity``. This is what trips the platform
    circuit breaker.
``task_dropout``
    Each task is lost in transit with probability ``intensity`` before
    reaching any worker (expired HIT, routing failure). Loss is decided
    per ``(round, road)`` from the scenario seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import CrowdsourcingError

#: Recognised fault kinds, with their per-kind seed offsets (stable
#: across processes — never use ``hash``).
FAULT_KINDS = ("no_show", "spam", "stale", "outage", "task_dropout")
_KIND_SEED_OFFSET = {kind: i + 1 for i, kind in enumerate(FAULT_KINDS)}


@dataclass(frozen=True, slots=True)
class FaultWindow:
    """One contiguous stretch of rounds during which a fault is active."""

    kind: str
    start_round: int
    num_rounds: int
    intensity: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise CrowdsourcingError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.start_round < 0:
            raise CrowdsourcingError("start_round must be >= 0")
        if self.num_rounds < 1:
            raise CrowdsourcingError("num_rounds must be >= 1")
        if not 0.0 < self.intensity <= 1.0:
            raise CrowdsourcingError("intensity must be in (0, 1]")

    def active(self, round_index: int) -> bool:
        return self.start_round <= round_index < self.start_round + self.num_rounds

    @property
    def seed_offset(self) -> int:
        return _KIND_SEED_OFFSET[self.kind]

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "start_round": self.start_round,
            "num_rounds": self.num_rounds,
            "intensity": self.intensity,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultWindow":
        return cls(**payload)


@dataclass(frozen=True)
class FaultScenario:
    """A named, reproducible schedule of fault windows."""

    name: str
    windows: tuple[FaultWindow, ...]
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise CrowdsourcingError("scenario needs a name")
        object.__setattr__(self, "windows", tuple(self.windows))

    def active_windows(self, round_index: int) -> tuple[FaultWindow, ...]:
        return tuple(w for w in self.windows if w.active(round_index))

    @property
    def last_faulty_round(self) -> int:
        """Index of the last round any window covers (-1 if none)."""
        if not self.windows:
            return -1
        return max(w.start_round + w.num_rounds - 1 for w in self.windows)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "description": self.description,
            "windows": [w.to_dict() for w in self.windows],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultScenario":
        return cls(
            name=payload["name"],
            windows=tuple(
                FaultWindow.from_dict(w) for w in payload.get("windows", ())
            ),
            seed=int(payload.get("seed", 0)),
            description=payload.get("description", ""),
        )


# ----------------------------------------------------------------------
# Bundled scenarios — the chaos suite drives every one of these.
# ----------------------------------------------------------------------
def bundled_scenarios() -> dict[str, FaultScenario]:
    """The scenario library shipped with the package."""
    scenarios = (
        FaultScenario(
            name="no-show-storm",
            description="85% of the pool goes silent for rounds 2-5",
            windows=(FaultWindow("no_show", 2, 4, 0.85),),
            seed=101,
        ),
        FaultScenario(
            name="spam-burst",
            description="45% of the pool answers uniform noise for rounds 2-5",
            windows=(FaultWindow("spam", 2, 4, 0.45),),
            seed=202,
        ),
        FaultScenario(
            name="outage-window",
            description="total platform outage for rounds 3-5",
            windows=(FaultWindow("outage", 3, 3),),
            seed=303,
        ),
        FaultScenario(
            name="stale-answers",
            description="70% of the pool reports remembered old speeds "
            "for rounds 2-5",
            windows=(FaultWindow("stale", 2, 4, 0.7),),
            seed=404,
        ),
        FaultScenario(
            name="seed-dropout-30",
            description="every round loses ~30% of its tasks in transit",
            windows=(FaultWindow("task_dropout", 0, 10_000, 0.3),),
            seed=505,
        ),
        FaultScenario(
            name="rolling-chaos",
            description="storm, spam burst and a short outage back to back",
            windows=(
                FaultWindow("no_show", 1, 2, 0.7),
                FaultWindow("spam", 3, 2, 0.5),
                FaultWindow("outage", 6, 2),
                FaultWindow("task_dropout", 1, 8, 0.15),
            ),
            seed=606,
        ),
    )
    return {s.name: s for s in scenarios}


def get_scenario(name: str) -> FaultScenario:
    """Look up a bundled scenario by name."""
    scenarios = bundled_scenarios()
    if name not in scenarios:
        raise CrowdsourcingError(
            f"unknown fault scenario {name!r}; "
            f"bundled: {sorted(scenarios)}"
        )
    return scenarios[name]
