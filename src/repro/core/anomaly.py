"""Congestion-anomaly detection on top of the trend posterior.

Formalises what the incident-response example demonstrates: an
unexpected local slowdown leaves a fingerprint in the *shift* of the
trend posterior relative to a recent reference round, and in the gap
between estimated and historically expected speeds. The detector ranks
roads by a combined anomaly score so a dispatcher can inspect the top
of the list.

Scores combine two signals per road:

* **trend lift** — drop in P(rise) versus the reference posterior
  (how much more the model now believes the road is slowing);
* **speed gap** — the estimated deviation below the historical mean,
  as a fraction (how severe the slowdown is believed to be).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import InferenceError
from repro.core.types import SpeedEstimate
from repro.history.store import HistoricalSpeedStore


@dataclass(frozen=True, slots=True)
class AnomalyScore:
    """One road's anomaly assessment for one interval."""

    road_id: int
    interval: int
    score: float
    trend_lift: float  # increase in P(fall) vs the reference round
    speed_gap: float  # fractional shortfall vs historical mean

    def __post_init__(self) -> None:
        if self.score < 0:
            raise InferenceError("anomaly score must be non-negative")


class CongestionAnomalyDetector:
    """Ranks roads by unexpected-slowdown evidence between rounds."""

    def __init__(
        self,
        store: HistoricalSpeedStore,
        lift_weight: float = 1.0,
        gap_weight: float = 1.0,
        min_score: float = 0.02,
    ) -> None:
        if lift_weight < 0 or gap_weight < 0:
            raise InferenceError("weights must be non-negative")
        if lift_weight == 0 and gap_weight == 0:
            raise InferenceError("at least one signal weight must be positive")
        self._store = store
        self._lift_weight = lift_weight
        self._gap_weight = gap_weight
        self._min_score = min_score
        self._reference: dict[int, float] | None = None

    def update_reference(self, estimates: dict[int, SpeedEstimate]) -> None:
        """Record a round's posterior as the comparison baseline.

        In steady operation call this every round *after* scoring, so
        each round is compared to the previous one; alerts then flag
        changes rather than persistent conditions.
        """
        self._reference = {
            road: est.trend_probability for road, est in estimates.items()
        }

    @property
    def has_reference(self) -> bool:
        return self._reference is not None

    def score_round(
        self, estimates: dict[int, SpeedEstimate]
    ) -> list[AnomalyScore]:
        """Anomaly scores for one round, strongest first.

        Requires a reference (see :meth:`update_reference`); seed roads
        are scored too — a seed observing a crash is the strongest
        anomaly signal of all. Roads below ``min_score`` are omitted.
        """
        if self._reference is None:
            raise InferenceError(
                "no reference round: call update_reference first"
            )
        scores: list[AnomalyScore] = []
        for road, estimate in estimates.items():
            reference_p = self._reference.get(road)
            if reference_p is None:
                raise InferenceError(
                    f"road {road} missing from the reference round"
                )
            lift = max(0.0, reference_p - estimate.trend_probability)
            historical = self._store.historical_speed(road, estimate.interval)
            gap = max(0.0, 1.0 - estimate.speed_kmh / max(historical, 1e-9))
            score = self._lift_weight * lift + self._gap_weight * gap
            if score >= self._min_score:
                scores.append(
                    AnomalyScore(
                        road_id=road,
                        interval=estimate.interval,
                        score=score,
                        trend_lift=lift,
                        speed_gap=gap,
                    )
                )
        scores.sort(key=lambda s: (-s.score, s.road_id))
        return scores

    def top_alerts(
        self, estimates: dict[int, SpeedEstimate], limit: int = 10
    ) -> list[AnomalyScore]:
        """The ``limit`` strongest anomalies this round."""
        if limit < 1:
            raise InferenceError("limit must be >= 1")
        return self.score_round(estimates)[:limit]


def precision_at_k(
    alerts: list[AnomalyScore], truly_anomalous: set[int], k: int
) -> float:
    """Fraction of the top-k alerts that are true anomalies.

    The alerting quality metric used by the incident experiments.
    """
    if k < 1:
        raise InferenceError("k must be >= 1")
    top = alerts[:k]
    if not top:
        return 0.0
    return sum(1 for a in top if a.road_id in truly_anomalous) / len(top)
