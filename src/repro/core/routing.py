"""Routing on estimated speeds: the downstream application.

The paper motivates citywide speed estimation with navigation: a route
planner is only as good as the speeds it plans on. This module turns a
per-road speed map (from the two-step estimator, a baseline, or ground
truth) into travel times and fastest routes, so the examples and
benchmarks can measure end-user impact (ETA error, route choice)
rather than only per-road speed error.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping

from repro.core.errors import NetworkError
from repro.roadnet.network import RoadNetwork

#: Speeds below this are clamped when converting to travel time, so a
#: blocked road is "very slow" rather than an infinite wall.
MIN_PLANNING_SPEED_KMH = 2.0


def road_travel_time_s(
    network: RoadNetwork, road_id: int, speed_kmh: float
) -> float:
    """Seconds to traverse one road at ``speed_kmh`` (floored)."""
    segment = network.segment(road_id)
    speed = max(MIN_PLANNING_SPEED_KMH, speed_kmh)
    return segment.length_m / (speed / 3.6)


def route_travel_time_s(
    network: RoadNetwork,
    route: list[int],
    speeds: Mapping[int, float],
) -> float:
    """Total travel time of ``route`` under the given speed map.

    Roads missing from ``speeds`` fall back to their free-flow speed
    (the planner's assumption for unknown roads).
    """
    if not route:
        return 0.0
    total = 0.0
    node = network.segment(route[0]).start_node
    for road_id in route:
        segment = network.segment(road_id)
        if segment.start_node != node:
            raise NetworkError(
                f"route breaks at road {road_id}: starts at "
                f"{segment.start_node}, expected {node}"
            )
        node = segment.end_node
        speed = speeds.get(road_id, segment.free_flow_kmh)
        total += road_travel_time_s(network, road_id, speed)
    return total


@dataclass(frozen=True, slots=True)
class RoutePlan:
    """A planned route with its expected travel time."""

    origin_node: int
    destination_node: int
    route: tuple[int, ...]
    eta_s: float

    @property
    def eta_minutes(self) -> float:
        return self.eta_s / 60.0


class RoutePlanner:
    """Fastest-route search over a per-road speed map."""

    def __init__(self, network: RoadNetwork) -> None:
        self._network = network

    def fastest_route(
        self,
        origin_node: int,
        destination_node: int,
        speeds: Mapping[int, float],
    ) -> RoutePlan | None:
        """Dijkstra over travel times under ``speeds``.

        Returns None when the destination is unreachable. Roads missing
        from ``speeds`` are planned at free flow.
        """
        network = self._network
        if origin_node == destination_node:
            return RoutePlan(origin_node, destination_node, (), 0.0)
        network.intersection(origin_node)
        network.intersection(destination_node)

        best: dict[int, float] = {origin_node: 0.0}
        via: dict[int, int] = {}
        heap: list[tuple[float, int]] = [(0.0, origin_node)]
        while heap:
            cost, node = heapq.heappop(heap)
            if node == destination_node:
                break
            if cost > best.get(node, float("inf")):
                continue
            for segment in network.outgoing(node):
                speed = speeds.get(segment.road_id, segment.free_flow_kmh)
                new_cost = cost + road_travel_time_s(
                    network, segment.road_id, speed
                )
                if new_cost < best.get(segment.end_node, float("inf")):
                    best[segment.end_node] = new_cost
                    via[segment.end_node] = segment.road_id
                    heapq.heappush(heap, (new_cost, segment.end_node))

        if destination_node not in via:
            return None
        route: list[int] = []
        node = destination_node
        while node != origin_node:
            road_id = via[node]
            route.append(road_id)
            node = network.segment(road_id).start_node
        route.reverse()
        return RoutePlan(
            origin_node,
            destination_node,
            tuple(route),
            best[destination_node],
        )

    def eta_error_s(
        self,
        plan: RoutePlan,
        true_speeds: Mapping[int, float],
    ) -> float:
        """Signed ETA error: planned minus actual time on the same route."""
        actual = route_travel_time_s(self._network, list(plan.route), true_speeds)
        return plan.eta_s - actual
