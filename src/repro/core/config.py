"""Configuration for the end-to-end pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigError
from repro.speed.degradation import DegradationParams
from repro.speed.hlm import HlmParams

#: Seed-selection algorithms the pipeline can run, by name.
SELECTION_METHODS = ("greedy", "lazy", "partition", "random", "top-degree", "k-center")

#: Trend-inference algorithms the pipeline can run, by name.
INFERENCE_METHODS = ("propagation", "bp", "gibbs")


@dataclass(frozen=True)
class PipelineConfig:
    """All knobs of :class:`~repro.core.pipeline.SpeedEstimationSystem`.

    Defaults reproduce the paper's configuration: 15-minute intervals,
    2-hop correlation candidates with a 0.6 agreement threshold, the
    fast propagation inference, and lazy-greedy seed selection.
    """

    interval_minutes: int = 15
    correlation_max_hops: int = 2
    correlation_min_agreement: float = 0.6
    #: Support guard for mining over histories with zero (flat/missing)
    #: trends: candidate pairs whose valid intervals cover less than
    #: this fraction of the window are rejected regardless of their
    #: agreement (see mine_correlation_graph).
    correlation_min_valid_fraction: float = 0.1
    selection_method: str = "lazy"
    inference_method: str = "propagation"
    num_partitions: int = 8
    #: Use the vectorized CSR fidelity kernel (repro.history.fidelity)
    #: for propagation inference and seed selection; False selects the
    #: scalar reference paths for differential testing.
    use_fidelity_kernel: bool = True
    #: Serve Step-2 through compiled interval plans (repro.speed.plan):
    #: one matrix-vector product + vectorized blend per interval. False
    #: selects the per-road scalar reference path for differential
    #: testing, mirroring use_fidelity_kernel.
    use_interval_plan: bool = True
    #: Capacity of the interval-plan LRU (one entry per seed set x time
    #: bucket; 128 covers a full day of 15-minute buckets with room for
    #: a second seed set).
    plan_cache_size: int = 128
    #: Run partitioned seed selection across a process pool with the CSR
    #: fidelity arrays shared read-only (repro.seeds.parallel). Only
    #: meaningful with selection_method="partition"; the parallel path
    #: returns the identical seed sequence to the single-process one.
    use_parallel_partitions: bool = False
    #: Worker count for the partition pool; 0 means "one per CPU, capped
    #: at the partition count".
    num_partition_workers: int = 0
    #: Compile Step-2 interval plans per district (repro.speed.shardplan)
    #: instead of one monolithic structure: district shards are compiled
    #: independently (across the plan-compile process pool when
    #: num_partition_workers != 1), evaluated per district and stitched
    #: in district order — bitwise identical to the monolithic plan —
    #: and graph deltas recompile only the affected districts' shards.
    use_sharded_plan: bool = False
    #: District count for sharded plan compilation; 0 means "follow
    #: num_partitions".
    plan_shards: int = 0
    hlm: HlmParams = field(default_factory=HlmParams)
    degradation: DegradationParams = field(default_factory=DegradationParams)

    def __post_init__(self) -> None:
        if self.selection_method not in SELECTION_METHODS:
            raise ConfigError(
                f"unknown selection method {self.selection_method!r}; "
                f"choose from {SELECTION_METHODS}"
            )
        if self.inference_method not in INFERENCE_METHODS:
            raise ConfigError(
                f"unknown inference method {self.inference_method!r}; "
                f"choose from {INFERENCE_METHODS}"
            )
        if self.correlation_max_hops < 1:
            raise ConfigError("correlation_max_hops must be >= 1")
        if not 0.5 <= self.correlation_min_agreement <= 1.0:
            raise ConfigError("correlation_min_agreement must be in [0.5, 1]")
        if not 0.0 <= self.correlation_min_valid_fraction <= 1.0:
            raise ConfigError("correlation_min_valid_fraction must be in [0, 1]")
        if self.num_partitions < 1:
            raise ConfigError("num_partitions must be >= 1")
        if self.num_partition_workers < 0:
            raise ConfigError("num_partition_workers must be >= 0 (0 = auto)")
        if self.plan_cache_size < 1:
            raise ConfigError("plan_cache_size must be >= 1")
        if self.plan_shards < 0:
            raise ConfigError("plan_shards must be >= 0 (0 = num_partitions)")
        if self.use_sharded_plan and not self.use_interval_plan:
            raise ConfigError(
                "use_sharded_plan requires use_interval_plan (sharding "
                "compiles the interval-plan structures per district)"
            )
