"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single type at the API boundary while still getting
precise subtypes for programmatic handling.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class NetworkError(ReproError):
    """Invalid road-network structure or reference."""


class DataError(ReproError):
    """Malformed or insufficient input data (history, traces, speeds)."""


class InferenceError(ReproError):
    """A trend- or speed-inference model was misused or failed to converge."""


class SelectionError(ReproError, ValueError):
    """Invalid seed-selection request (e.g. budget larger than network).

    Also a :class:`ValueError`: a rejected budget is an invalid argument,
    and callers holding only stdlib types can catch it as one. Budget
    rejections always state the requested K and the candidate-graph
    size, and bump the ``seeds.budget_rejected`` counter.
    """


class CrowdsourcingError(ReproError):
    """Crowdsourcing platform misuse (no workers, unknown task...)."""


class ConfigError(ReproError):
    """Invalid pipeline configuration."""


class ServingError(ReproError):
    """The serving layer failed to produce or publish a snapshot.

    Raised only on the *write* path (watchdog deadlines, stage
    exhaustion, integrity failures). The read path never raises it:
    readers get degraded :class:`~repro.serving.store.ServedEstimate`
    responses instead.
    """


class SnapshotIntegrityError(ServingError):
    """A persisted snapshot failed checksum or format verification."""
