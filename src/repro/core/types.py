"""Shared value types used across the package.

These are deliberately tiny immutable value types: they cross every
module boundary (simulator → history → trend → speed → evaluation), so
keeping them dependency-free avoids import cycles. Most are frozen
dataclasses; :class:`SpeedEstimate` is tuple-backed because the serving
path materialises one instance per road per interval and frozen
dataclasses construct several times slower than tuples.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import NamedTuple


class Trend(enum.IntEnum):
    """Direction of a road's current speed relative to its historical mean.

    The paper's key observation is that correlated roads *rise* or *fall*
    together; this binary state is what the Step-1 graphical model infers.
    Values are ±1 so that products express agreement naturally.
    """

    RISE = 1
    FALL = -1

    @classmethod
    def from_speeds(cls, current_kmh: float, historical_kmh: float) -> "Trend":
        """Trend of ``current`` relative to ``historical`` mean.

        Exact equality counts as RISE by convention (ties are rare with
        continuous speeds and the choice is symmetric for the model).
        """
        return cls.RISE if current_kmh >= historical_kmh else cls.FALL

    @property
    def opposite(self) -> "Trend":
        return Trend.FALL if self is Trend.RISE else Trend.RISE


@dataclass(frozen=True, slots=True)
class SpeedObservation:
    """A single per-road speed measurement for one time interval."""

    road_id: int
    interval: int
    speed_kmh: float

    def __post_init__(self) -> None:
        if self.speed_kmh < 0:
            raise ValueError(f"negative speed {self.speed_kmh} on road {self.road_id}")


class SpeedEstimate(NamedTuple):
    """An inferred speed for one road at one interval.

    ``trend_probability`` is the Step-1 posterior probability that the
    road's trend is RISE; ``is_seed`` marks roads whose speed came from
    crowdsourcing rather than inference. ``degraded`` marks estimates
    produced under graceful degradation — the seed observation behind
    them was substituted (stale or prior), so their confidence is lower
    than the numbers alone suggest.

    Tuple-backed rather than a frozen dataclass: the estimator builds
    one instance per road per interval on the serving path, and frozen
    dataclasses pay one ``object.__setattr__`` per field (~3× slower to
    construct). Immutability is preserved; use :meth:`replace` instead
    of ``dataclasses.replace`` to derive modified copies.
    """

    road_id: int
    interval: int
    speed_kmh: float
    trend: Trend
    trend_probability: float
    is_seed: bool = False
    degraded: bool = False

    def replace(self, **changes: object) -> "SpeedEstimate":
        """A copy with ``changes`` applied (dataclasses.replace analogue).

        Routes through the class constructor rather than ``_replace``,
        whose ``_make`` path calls ``tuple.__new__`` directly and would
        skip the range check on ``trend_probability``.
        """
        fields = dict(zip(self._fields, self))
        fields.update(changes)
        return SpeedEstimate(**fields)


# typing.NamedTuple forbids overriding __new__ in the class body, so the
# validating constructor is grafted on afterwards. It mirrors the
# generated one (a single C-level tuple construction) plus the range
# check a frozen dataclass would have done in __post_init__.
def _speed_estimate_new(
    cls,
    road_id: int,
    interval: int,
    speed_kmh: float,
    trend: Trend,
    trend_probability: float,
    is_seed: bool = False,
    degraded: bool = False,
    _new=tuple.__new__,
) -> "SpeedEstimate":
    if not 0.0 <= trend_probability <= 1.0:
        raise ValueError(f"trend probability {trend_probability} outside [0, 1]")
    return _new(
        cls,
        (road_id, interval, speed_kmh, trend, trend_probability, is_seed, degraded),
    )


SpeedEstimate.__new__ = _speed_estimate_new


@dataclass(frozen=True, slots=True)
class CrowdAnswer:
    """An aggregated crowdsourced speed for a seed road."""

    road_id: int
    interval: int
    speed_kmh: float
    num_workers: int
    cost: float
