"""Shared value types used across the package.

These are deliberately tiny frozen dataclasses: they cross every module
boundary (simulator → history → trend → speed → evaluation), so keeping
them dependency-free avoids import cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Trend(enum.IntEnum):
    """Direction of a road's current speed relative to its historical mean.

    The paper's key observation is that correlated roads *rise* or *fall*
    together; this binary state is what the Step-1 graphical model infers.
    Values are ±1 so that products express agreement naturally.
    """

    RISE = 1
    FALL = -1

    @classmethod
    def from_speeds(cls, current_kmh: float, historical_kmh: float) -> "Trend":
        """Trend of ``current`` relative to ``historical`` mean.

        Exact equality counts as RISE by convention (ties are rare with
        continuous speeds and the choice is symmetric for the model).
        """
        return cls.RISE if current_kmh >= historical_kmh else cls.FALL

    @property
    def opposite(self) -> "Trend":
        return Trend.FALL if self is Trend.RISE else Trend.RISE


@dataclass(frozen=True, slots=True)
class SpeedObservation:
    """A single per-road speed measurement for one time interval."""

    road_id: int
    interval: int
    speed_kmh: float

    def __post_init__(self) -> None:
        if self.speed_kmh < 0:
            raise ValueError(f"negative speed {self.speed_kmh} on road {self.road_id}")


@dataclass(frozen=True, slots=True)
class SpeedEstimate:
    """An inferred speed for one road at one interval.

    ``trend_probability`` is the Step-1 posterior probability that the
    road's trend is RISE; ``is_seed`` marks roads whose speed came from
    crowdsourcing rather than inference. ``degraded`` marks estimates
    produced under graceful degradation — the seed observation behind
    them was substituted (stale or prior), so their confidence is lower
    than the numbers alone suggest.
    """

    road_id: int
    interval: int
    speed_kmh: float
    trend: Trend
    trend_probability: float
    is_seed: bool = False
    degraded: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.trend_probability <= 1.0:
            raise ValueError(
                f"trend probability {self.trend_probability} outside [0, 1]"
            )


@dataclass(frozen=True, slots=True)
class CrowdAnswer:
    """An aggregated crowdsourced speed for a seed road."""

    road_id: int
    interval: int
    speed_kmh: float
    num_workers: int
    cost: float
