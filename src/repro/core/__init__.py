"""Core types, errors, configuration and the end-to-end pipeline."""

from repro.core.breaker import BreakerState, CircuitBreaker
from repro.core.clock import (
    Clock,
    ManualClock,
    MonotonicClock,
    get_clock,
    set_clock,
    use_clock,
)
from repro.core.errors import (
    ConfigError,
    CrowdsourcingError,
    DataError,
    InferenceError,
    NetworkError,
    ReproError,
    SelectionError,
    ServingError,
    SnapshotIntegrityError,
)
from repro.core.anomaly import (
    AnomalyScore,
    CongestionAnomalyDetector,
    precision_at_k,
)
from repro.core.routing import RoutePlan, RoutePlanner, route_travel_time_s
from repro.core.types import CrowdAnswer, SpeedEstimate, SpeedObservation, Trend

__all__ = [
    "AnomalyScore",
    "BreakerState",
    "CircuitBreaker",
    "Clock",
    "CongestionAnomalyDetector",
    "ConfigError",
    "CrowdAnswer",
    "CrowdsourcingError",
    "DataError",
    "InferenceError",
    "ManualClock",
    "MonotonicClock",
    "NetworkError",
    "ReproError",
    "RoutePlan",
    "RoutePlanner",
    "route_travel_time_s",
    "precision_at_k",
    "SelectionError",
    "ServingError",
    "SnapshotIntegrityError",
    "SpeedEstimate",
    "SpeedObservation",
    "Trend",
    "get_clock",
    "set_clock",
    "use_clock",
]
