"""Core types, errors, configuration and the end-to-end pipeline."""

from repro.core.errors import (
    ConfigError,
    CrowdsourcingError,
    DataError,
    InferenceError,
    NetworkError,
    ReproError,
    SelectionError,
)
from repro.core.anomaly import (
    AnomalyScore,
    CongestionAnomalyDetector,
    precision_at_k,
)
from repro.core.routing import RoutePlan, RoutePlanner, route_travel_time_s
from repro.core.types import CrowdAnswer, SpeedEstimate, SpeedObservation, Trend

__all__ = [
    "AnomalyScore",
    "CongestionAnomalyDetector",
    "ConfigError",
    "CrowdAnswer",
    "CrowdsourcingError",
    "DataError",
    "InferenceError",
    "NetworkError",
    "ReproError",
    "RoutePlan",
    "RoutePlanner",
    "route_travel_time_s",
    "precision_at_k",
    "SelectionError",
    "SpeedEstimate",
    "SpeedObservation",
    "Trend",
]
