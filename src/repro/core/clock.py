"""Injectable monotonic time for every duration measurement.

Durations in this package — span timings, watchdog deadlines, snapshot
staleness — must never be derived from the wall clock: NTP steps and
manual clock changes would make a stage look hung (or a snapshot look
fresh) when it is neither. Everything times itself against a
:class:`Clock`, an object with ``monotonic()`` and ``sleep()``:

* :class:`MonotonicClock` — the production clock, backed by
  :func:`time.monotonic` (immune to wall-clock jumps by construction);
* :class:`ManualClock` — a test clock that only moves when told to,
  which makes watchdog timeouts, staleness thresholds and span
  durations exactly reproducible. ``sleep`` advances it, so
  backoff-retry loops run instantly in tests while still recording the
  time they *would* have spent.

Call sites that cannot take a constructor argument (free functions like
the seed-selection algorithms) read the process default through
:func:`get_clock`; tests swap it with :func:`use_clock`.
"""

from __future__ import annotations

import contextlib
import time
from typing import Iterator, Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """What every timed component depends on."""

    def monotonic(self) -> float:
        """Seconds on a monotonically non-decreasing clock."""
        ...

    def sleep(self, seconds: float) -> None:
        """Block (or simulate blocking) for ``seconds``."""
        ...


class MonotonicClock:
    """The production clock: :func:`time.monotonic` + :func:`time.sleep`."""

    __slots__ = ()

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class ManualClock:
    """A clock that moves only when advanced — deterministic tests.

    ``sleep`` advances the clock by the requested amount, so code under
    test that backs off between retries completes instantly while the
    elapsed time it observed stays faithful. ``advance`` models time
    passing *around* the code under test (e.g. an interval boundary, or
    an injected clock-skew fault).
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def monotonic(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> float:
        """Move time forward; negative steps are rejected (monotonic)."""
        if seconds < 0:
            raise ValueError(f"clock cannot move backwards ({seconds} s)")
        self._now += float(seconds)
        return self._now


_clock: Clock = MonotonicClock()


def get_clock() -> Clock:
    """The process-default clock used by free-function call sites."""
    return _clock


def set_clock(clock: Clock) -> Clock:
    """Install ``clock`` as the process default; returns the previous."""
    global _clock
    previous = _clock
    _clock = clock
    return previous


@contextlib.contextmanager
def use_clock(clock: Clock) -> Iterator[Clock]:
    """Scoped clock override: install for the block, restore on exit."""
    previous = set_clock(clock)
    try:
        yield clock
    finally:
        set_clock(previous)
