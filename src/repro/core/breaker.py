"""A consecutive-failure circuit breaker, shared across subsystems.

Born in the crowdsourcing platform (PR 1) to stop a round from burning
its full retry budget on every task of a platform-wide outage, the
breaker is equally the right shape for the serving side: after
``failure_threshold`` consecutive failures it *opens* and callers stop
paying for work that keeps failing; each new round (or probe window) it
goes *half-open* and grants exactly one probe, whose outcome decides
whether it closes again or re-opens.

The three verdicts callers report:

* :meth:`CircuitBreaker.record_success` — the protected operation
  worked; the breaker closes.
* :meth:`CircuitBreaker.record_failure` — it failed; enough of these in
  a row open the breaker (a half-open probe failing re-opens it
  immediately).
* :meth:`CircuitBreaker.record_inconclusive` — the operation yielded
  evidence of neither recovery nor outage (e.g. a task dropped in
  transit before any worker saw it); a half-open probe it consumed is
  re-armed so the breaker cannot wedge.

``repro.crowd.health`` re-exports these names for backward
compatibility; new code should import from :mod:`repro.core.breaker`.
"""

from __future__ import annotations

import enum

from repro.core.errors import ConfigError


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker over whole protected operations."""

    def __init__(self, failure_threshold: int = 3) -> None:
        if failure_threshold < 1:
            raise ConfigError("failure_threshold must be >= 1")
        self._threshold = failure_threshold
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._probe_spent = False
        self.times_tripped = 0

    @property
    def state(self) -> BreakerState:
        return self._state

    def begin_round(self) -> None:
        """A new round starts: an open breaker becomes half-open and
        grants exactly one probe.

        A breaker still HALF_OPEN from the previous round gets a fresh
        probe too: its probe can be consumed by an operation that yields
        neither success nor failure (dropped in transit), and without
        re-arming the breaker would wedge half-open and skip every
        operation of every future round.
        """
        if self._state in (BreakerState.OPEN, BreakerState.HALF_OPEN):
            self._state = BreakerState.HALF_OPEN
            self._probe_spent = False

    def allow(self) -> bool:
        """May the next operation proceed?"""
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.HALF_OPEN and not self._probe_spent:
            self._probe_spent = True
            return True
        return False

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._state = BreakerState.CLOSED

    def record_inconclusive(self) -> None:
        """The operation vanished before yielding a verdict: evidence of
        neither recovery nor outage, so a half-open probe it consumed is
        re-armed for the next operation."""
        if self._state is BreakerState.HALF_OPEN:
            self._probe_spent = False

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if (
            self._state is BreakerState.HALF_OPEN
            or self._consecutive_failures >= self._threshold
        ):
            if self._state is not BreakerState.OPEN:
                self.times_tripped += 1
            self._state = BreakerState.OPEN
