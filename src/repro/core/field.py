"""The dense per-road per-interval speed container.

:class:`SpeedField` is the lingua franca between the traffic simulator
(which produces it as ground truth), the GPS speed-extraction pipeline
(which produces a sparse variant), the historical store (which aggregates
training fields) and the evaluation harness (which scores estimates
against it). It lives in ``core`` because all of those packages depend
on it and on nothing else shared.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.errors import DataError
from repro.core.types import SpeedObservation


class SpeedField:
    """A dense matrix of speeds: intervals × roads.

    Columns follow ``road_ids`` (ascending road id); rows are consecutive
    global intervals starting at ``first_interval``.
    """

    def __init__(
        self, speeds: np.ndarray, road_ids: list[int], first_interval: int
    ) -> None:
        if speeds.ndim != 2:
            raise DataError(f"speed matrix must be 2-D, got shape {speeds.shape}")
        if speeds.shape[1] != len(road_ids):
            raise DataError(
                f"speed matrix has {speeds.shape[1]} columns "
                f"but {len(road_ids)} road ids were given"
            )
        if first_interval < 0:
            raise DataError(f"negative first interval {first_interval}")
        self._speeds = speeds
        self._road_ids = list(road_ids)
        self._road_index = {road: i for i, road in enumerate(road_ids)}
        self._first_interval = first_interval

    @property
    def road_ids(self) -> list[int]:
        return list(self._road_ids)

    @property
    def intervals(self) -> range:
        return range(
            self._first_interval, self._first_interval + self._speeds.shape[0]
        )

    @property
    def matrix(self) -> np.ndarray:
        """The raw (intervals × roads) array. Treat as read-only."""
        return self._speeds

    def road_column(self, road_id: int) -> int:
        try:
            return self._road_index[road_id]
        except KeyError:
            raise DataError(f"road {road_id} not in this speed field") from None

    def speed(self, road_id: int, interval: int) -> float:
        """Speed of one road at one interval, km/h."""
        row = self._row(interval)
        return float(self._speeds[row, self.road_column(road_id)])

    def speeds_at(self, interval: int) -> dict[int, float]:
        """road id -> speed for every road at ``interval``."""
        row = self._speeds[self._row(interval)]
        return {road: float(row[i]) for i, road in enumerate(self._road_ids)}

    def series(self, road_id: int) -> np.ndarray:
        """The full speed time series of one road."""
        return self._speeds[:, self.road_column(road_id)].copy()

    def observations_at(self, interval: int) -> list[SpeedObservation]:
        """All speeds at ``interval`` as observation records."""
        row = self._speeds[self._row(interval)]
        return [
            SpeedObservation(road, interval, float(row[i]))
            for i, road in enumerate(self._road_ids)
        ]

    def iter_observations(self) -> Iterator[SpeedObservation]:
        """Every (road, interval, speed) triple in the field."""
        for interval in self.intervals:
            yield from self.observations_at(interval)

    def _row(self, interval: int) -> int:
        row = interval - self._first_interval
        if not 0 <= row < self._speeds.shape[0]:
            raise DataError(
                f"interval {interval} outside field range {self.intervals}"
            )
        return row

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"SpeedField(roads={len(self._road_ids)}, "
            f"intervals={self.intervals.start}..{self.intervals.stop - 1})"
        )
