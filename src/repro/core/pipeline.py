"""The end-to-end speed-estimation system — the package's front door.

:class:`SpeedEstimationSystem` composes everything the paper describes:

1. **fit** — from a road network and historical speed data, build the
   historical store, mine the correlation graph, and fit the two-step
   model (trend MRF + hierarchical linear model);
2. **select_seeds(K)** — choose the budgeted crowdsourcing roads with
   the configured selection algorithm;
3. **estimate(interval, seed_speeds)** — turn one round of crowdsourced
   seed speeds into a speed estimate for every road.

A convenience :meth:`run_round` drives a whole crowdsourcing round
against a simulated truth field and worker pool, which is what the
examples and the live-monitoring style deployments do.

Typical use::

    system = SpeedEstimationSystem.fit(network, grid, [history_field])
    seeds = system.select_seeds(budget=50)
    estimates = system.estimate(interval, crowd_speeds_for(seeds))
"""

from __future__ import annotations

import os
from collections.abc import Mapping
from typing import Iterator, Sequence

from repro.core.config import PipelineConfig
from repro.core.errors import ConfigError, SelectionError
from repro.core.field import SpeedField
from repro.core.types import SpeedEstimate
from repro.crowd.platform import CrowdsourcingPlatform, SpeedQueryTask
from repro.crowd.report import RoundReport
from repro.history.correlation import CorrelationGraph, mine_correlation_graph
from repro.history.fidelity import FidelityCacheService
from repro.history.store import HistoricalSpeedStore
from repro.history.timebuckets import TimeGrid
from repro.obs import get_recorder
from repro.roadnet.network import RoadNetwork
from repro.seeds.baselines import k_center_select, random_select, top_degree_select
from repro.seeds.greedy import SelectionResult, greedy_select
from repro.seeds.lazy import lazy_greedy_select
from repro.seeds.objective import SeedSelectionObjective
from repro.seeds.partition import partition_greedy_select
from repro.speed.degradation import DegradationParams, DegradationPolicy
from repro.speed.estimator import TwoStepEstimator
from repro.speed.plan import IntervalPlanCache
from repro.trend.bp import LoopyBeliefPropagation
from repro.trend.gibbs import GibbsSamplingInference
from repro.trend.propagation import TrendPropagationInference


class RoundOutcome(Mapping):
    """Everything one :meth:`SpeedEstimationSystem.run_round` produced.

    Behaves as a road id -> :class:`~repro.core.types.SpeedEstimate`
    mapping for drop-in compatibility with the previous return type,
    and additionally carries the crowdsourcing
    :class:`~repro.crowd.report.RoundReport`, the real observations the
    crowd delivered, and the seeds whose observations had to be
    substituted (road id -> ``"stale"`` | ``"prior"``).
    """

    def __init__(
        self,
        estimates: dict[int, SpeedEstimate],
        report: RoundReport,
        observed: dict[int, float],
        substituted: dict[int, str],
    ) -> None:
        self._estimates = estimates
        self.report = report
        self.observed = dict(observed)
        self.substituted = dict(substituted)

    @property
    def estimates(self) -> dict[int, SpeedEstimate]:
        return dict(self._estimates)

    @property
    def degraded(self) -> bool:
        """True when the round was partial in any way."""
        return bool(self.substituted) or self.report.is_degraded

    def __getitem__(self, road_id: int) -> SpeedEstimate:
        return self._estimates[road_id]

    def __iter__(self) -> Iterator[int]:
        return iter(self._estimates)

    def __len__(self) -> int:
        return len(self._estimates)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"RoundOutcome(roads={len(self)}, degraded={self.degraded}, "
            f"substituted={len(self.substituted)})"
        )


class SpeedEstimationSystem:
    """The fitted system. Construct with :meth:`fit` or :meth:`from_parts`."""

    def __init__(
        self,
        network: RoadNetwork,
        store: HistoricalSpeedStore,
        graph: CorrelationGraph,
        config: PipelineConfig,
    ) -> None:
        if config.use_parallel_partitions and not config.use_fidelity_kernel:
            raise ConfigError(
                "use_parallel_partitions requires use_fidelity_kernel "
                "(district workers run the CSR kernel)"
            )
        self._network = network
        self._store = store
        self._graph = graph
        self._config = config
        # One influence cache for the whole system: Step-1 inference,
        # seed selection and Step-2 regression all share fidelity rows.
        self._fidelity = FidelityCacheService(
            use_kernel=config.use_fidelity_kernel
        )
        # Compiled Step-2 serving plans live next to the fidelity cache
        # and are invalidated with it.
        self._plan_cache = IntervalPlanCache(
            maxsize=config.plan_cache_size
        ).attach(self._fidelity)
        self._inference = self._build_inference(config, self._fidelity)
        self._estimator = TwoStepEstimator(
            network,
            store,
            graph,
            trend_inference=self._inference,
            hlm_params=config.hlm,
            fidelity_service=self._fidelity,
            plan_cache=self._plan_cache,
            use_plan=config.use_interval_plan,
            planner_factory=(
                self._make_sharded_planner if config.use_sharded_plan else None
            ),
        )
        self._objective = SeedSelectionObjective(
            graph,
            min_fidelity=config.hlm.min_fidelity,
            fidelity_service=self._fidelity,
            use_kernel=config.use_fidelity_kernel,
        )
        self._seeds: list[int] = []
        self._selection: SelectionResult | None = None
        self._degradation = DegradationPolicy(store, config.degradation)
        # Lazy: the district process pool (shared CSR arrays + workers),
        # the plan-compile pool and the warm-started incremental
        # re-selector.
        self._district_pool = None
        self._plan_pool = None
        self._reselector = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        network: RoadNetwork,
        grid: TimeGrid,
        history: Sequence[SpeedField],
        config: PipelineConfig | None = None,
    ) -> "SpeedEstimationSystem":
        """Build the full system from raw historical speed fields."""
        config = config or PipelineConfig()
        if grid.interval_minutes != config.interval_minutes:
            raise ConfigError(
                f"grid interval {grid.interval_minutes} does not match "
                f"config interval {config.interval_minutes}"
            )
        with get_recorder().span(
            "pipeline.fit", roads=network.num_segments, days=len(history)
        ):
            store = HistoricalSpeedStore.from_fields(grid, list(history))
            graph = mine_correlation_graph(
                network,
                store,
                max_hops=config.correlation_max_hops,
                min_agreement=config.correlation_min_agreement,
                min_valid_fraction=config.correlation_min_valid_fraction,
            )
            return cls(network, store, graph, config)

    @classmethod
    def from_parts(
        cls,
        network: RoadNetwork,
        store: HistoricalSpeedStore,
        graph: CorrelationGraph,
        config: PipelineConfig | None = None,
    ) -> "SpeedEstimationSystem":
        """Build from pre-computed store and correlation graph."""
        return cls(network, store, graph, config or PipelineConfig())

    @staticmethod
    def _build_inference(config: PipelineConfig, fidelity: FidelityCacheService):
        if config.inference_method == "propagation":
            return TrendPropagationInference(
                min_fidelity=config.hlm.min_fidelity,
                fidelity_service=fidelity,
                use_kernel=config.use_fidelity_kernel,
            )
        if config.inference_method == "bp":
            return LoopyBeliefPropagation()
        return GibbsSamplingInference()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def network(self) -> RoadNetwork:
        return self._network

    @property
    def store(self) -> HistoricalSpeedStore:
        return self._store

    @property
    def graph(self) -> CorrelationGraph:
        return self._graph

    @property
    def config(self) -> PipelineConfig:
        return self._config

    @property
    def estimator(self) -> TwoStepEstimator:
        return self._estimator

    @property
    def fidelity_service(self) -> FidelityCacheService:
        """The influence cache shared by every stage of this system."""
        return self._fidelity

    @property
    def plan_cache(self) -> IntervalPlanCache:
        """The compiled interval plans serving Step-2 estimation."""
        return self._plan_cache

    @property
    def objective(self) -> SeedSelectionObjective:
        return self._objective

    @property
    def seeds(self) -> list[int]:
        """The currently selected seed roads (empty before selection)."""
        return list(self._seeds)

    @property
    def selection(self) -> SelectionResult | None:
        return self._selection

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def select_seeds(
        self, budget: int, method: str | None = None, random_seed: int = 0
    ) -> list[int]:
        """Select and remember the budget-K crowdsourcing seed roads."""
        recorder = get_recorder()
        num_roads = len(self._graph.road_ids)
        if budget < 1:
            recorder.count("seeds.budget_rejected", reason="non_positive")
            raise SelectionError(
                f"seed budget must be >= 1, got K={budget} (correlation "
                f"graph has {num_roads} roads)"
            )
        if budget > num_roads:
            recorder.count("seeds.budget_rejected", reason="exceeds_graph")
            raise SelectionError(
                f"seed budget K={budget} exceeds the {num_roads} roads "
                "in the correlation graph; lower the budget or mine a "
                "larger correlation graph"
            )
        method = method or self._config.selection_method
        with recorder.span("seeds.select", method=method, budget=budget) as span:
            if method == "greedy":
                result = greedy_select(self._objective, budget)
            elif method == "lazy":
                result = lazy_greedy_select(self._objective, budget)
            elif method == "partition":
                if self._config.use_parallel_partitions:
                    result = self.district_pool().select(budget)
                else:
                    result = partition_greedy_select(
                        self._objective,
                        budget,
                        num_partitions=self._config.num_partitions,
                    )
            elif method == "random":
                result = random_select(self._objective, budget, seed=random_seed)
            elif method == "top-degree":
                result = top_degree_select(self._objective, budget)
            elif method == "k-center":
                result = k_center_select(self._objective, budget, self._network)
            else:
                recorder.count("seeds.budget_rejected", reason="unknown_method")
                raise SelectionError(f"unknown selection method {method!r}")
            span.set(
                evaluations=result.evaluations,
                objective=round(result.final_value, 3),
            )
        self._selection = result
        self._seeds = list(result.seeds)
        return self.seeds

    def district_pool(self):
        """The lazily created district process pool (parallel configs).

        Created on first use and reused for every subsequent selection
        and Step-1 round; call :meth:`close` (or use the system as a
        context manager) to release the workers and the shared-memory
        segments.
        """
        if not self._config.use_parallel_partitions:
            raise ConfigError(
                "district_pool requires use_parallel_partitions=True"
            )
        if self._district_pool is None:
            from repro.seeds.parallel import DistrictPool

            self._district_pool = DistrictPool(
                self._objective,
                num_partitions=self._config.num_partitions,
                num_workers=self._config.num_partition_workers,
            )
            if isinstance(self._inference, TrendPropagationInference):
                self._inference.set_vote_accumulator(
                    self._district_pool.vote_accumulator
                )
        return self._district_pool

    def _make_sharded_planner(self, store, network, hlm, road_ids):
        """Planner factory for ``use_sharded_plan`` (estimator calls it).

        Districts come from the same deterministic
        :func:`~repro.seeds.partition.partition_graph` the selection
        path uses (``plan_shards`` districts, defaulting to
        ``num_partitions``). With ``num_partition_workers != 1`` the
        district compiles run across a :class:`~repro.speed.shardplan.
        PlanCompilePool` owned by this system; exactly one worker keeps
        compilation in-process through the identical sharded code path.
        """
        from repro.seeds.partition import partition_graph
        from repro.speed.shardplan import PlanCompilePool, ShardedIntervalPlanner

        shards = self._config.plan_shards or self._config.num_partitions
        partitions = partition_graph(self._objective, shards)
        workers = self._config.num_partition_workers or (os.cpu_count() or 1)
        if workers != 1 and self._plan_pool is None:
            self._plan_pool = PlanCompilePool(hlm, store, num_workers=workers)
        return ShardedIntervalPlanner(
            store, network, hlm, road_ids, partitions, pool=self._plan_pool
        )

    def reselect_seeds(self, budget: int) -> list[int]:
        """Re-select seeds with the warm-started incremental CELF.

        The first call pays a full empty-set scan (identical cost to
        ``select_seeds(method="lazy")``); later calls re-evaluate only
        candidates whose fidelity rows were invalidated since — zero on
        a stable network. The returned sequence is always identical to
        a cold lazy selection, so switching a system to incremental
        re-selection never changes its seeds.
        """
        if self._reselector is None:
            from repro.seeds.reselect import IncrementalCelfSelector

            self._reselector = IncrementalCelfSelector(self._objective)
        result = self._reselector.select(budget)
        self._selection = result
        self._seeds = list(result.seeds)
        return self.seeds

    def apply_graph_delta(self, delta) -> tuple[int, ...]:
        """Refresh caches selectively after an in-place graph change.

        Call right after a :class:`~repro.history.incremental.GraphDelta`
        was applied to this system's correlation graph (the streaming
        path — :meth:`bind_rolling` wires it automatically). The
        fidelity service drops only provably affected influence rows
        (see :meth:`~repro.history.fidelity.FidelityCacheService.
        apply_graph_delta`), which cascades through the registered row
        listeners: compiled plans over dropped seeds, influence
        indexes, CELF gains and objective memos. Everything else keeps
        serving warm. Returns the dropped source roads.
        """
        if delta.is_empty:
            return ()
        dropped = self._fidelity.apply_graph_delta(self._graph, delta)
        if self._district_pool is not None:
            # The district pool's shared-memory CSR arrays bake in the
            # old edge weights; release it and rebuild lazily on next
            # use. The plan-compile pool survives: its shared arrays are
            # the centred *history* matrix, which a graph delta never
            # touches — only the influence maps fed per compile change.
            self._close_district_pool()
        return dropped

    def bind_rolling(self, rolling) -> "SpeedEstimationSystem":
        """Wire a :class:`~repro.history.online.RollingHistory` to this
        system: every incremental re-mine flows its delta into
        :meth:`apply_graph_delta`.

        The rolling history must serve the **same graph object** this
        system was built from (build via ``from_parts(network,
        rolling.store, rolling.graph)``); deltas for other graphs are
        ignored.
        """
        def _on_delta(graph, delta):
            if graph is self._graph:
                self.apply_graph_delta(delta)

        rolling.add_delta_listener(_on_delta)
        return self

    def _close_district_pool(self) -> None:
        if self._district_pool is not None:
            if isinstance(self._inference, TrendPropagationInference):
                self._inference.set_vote_accumulator(None)
            self._district_pool.close()
            self._district_pool = None

    def close(self) -> None:
        """Release round-serving resources (district + plan pools)."""
        self._close_district_pool()
        if self._plan_pool is not None:
            self._plan_pool.close()
            self._plan_pool = None

    def __enter__(self) -> "SpeedEstimationSystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def estimate(
        self, interval: int, seed_speeds: dict[int, float]
    ) -> dict[int, SpeedEstimate]:
        """One estimation round from crowdsourced seed speeds."""
        return self._estimator.estimate_interval(interval, seed_speeds)

    @property
    def degradation(self) -> DegradationPolicy:
        """The seed-substitution policy state shared across rounds."""
        return self._degradation

    def run_round(
        self,
        interval: int,
        truth: SpeedField,
        platform: CrowdsourcingPlatform,
        crowd_seed: int = 0,
    ) -> RoundOutcome:
        """Full round: crowdsource the selected seeds, then estimate.

        Requires :meth:`select_seeds` to have been called. The platform
        perturbs the truth with worker noise before estimation, so this
        is the realistic end-to-end path. The round degrades gracefully:
        tasks the crowd failed to answer are substituted with decayed
        last-known observations or historical-prior pseudo-observations,
        estimation always completes, and the substituted seeds' estimates
        come back flagged ``degraded``.
        """
        if not self._seeds:
            raise SelectionError("call select_seeds before run_round")
        recorder = get_recorder()
        recorder.round_begin(interval)
        tasks = [
            SpeedQueryTask(road, interval, truth.speed(road, interval))
            for road in self._seeds
        ]
        crowd_round = platform.collect(tasks, seed=crowd_seed)
        observed = crowd_round.speeds()
        filled, substituted = self._degradation.fill_missing(
            interval, observed, self._seeds
        )
        for reason in substituted.values():
            recorder.count("pipeline.substitutions", reason=reason)
        estimates = self.estimate(interval, filled)
        for road in substituted:
            estimates[road] = estimates[road].replace(degraded=True)
        if substituted:
            recorder.count("speed.degraded_estimates", len(substituted))
        self._degradation.observe(interval, observed)
        outcome = RoundOutcome(
            estimates=estimates,
            report=crowd_round.report,
            observed=observed,
            substituted=substituted,
        )
        recorder.round_end(
            interval,
            seeds=len(self._seeds),
            answered=len(observed),
            failed=len(crowd_round.report.failed_roads),
            substituted=len(substituted),
            degraded=outcome.degraded,
            cost=crowd_round.report.total_cost,
        )
        return outcome
