"""Historical speed database: time buckets, columnar store, correlation mining."""

from repro.history.correlation import (
    CorrelationEdge,
    CorrelationGraph,
    mine_correlation_graph,
)
from repro.history.fidelity import (
    CSRFidelityGraph,
    FidelityCacheService,
    best_fidelity_row,
    best_fidelity_rows,
    edge_fidelity,
    get_fidelity_service,
    propagate_fidelity_scalar,
    set_fidelity_service,
)
from repro.history.incremental import (
    GraphDelta,
    IncrementalCoTrendStats,
    diff_edges,
)
from repro.history.online import RollingHistory
from repro.history.persistence import (
    load_field,
    load_graph,
    load_store,
    save_field,
    save_graph,
    save_store,
)
from repro.history.store import HistoricalSpeedStore
from repro.history.timebuckets import MINUTES_PER_DAY, TimeGrid

__all__ = [
    "CSRFidelityGraph",
    "CorrelationEdge",
    "CorrelationGraph",
    "FidelityCacheService",
    "GraphDelta",
    "HistoricalSpeedStore",
    "IncrementalCoTrendStats",
    "MINUTES_PER_DAY",
    "RollingHistory",
    "TimeGrid",
    "best_fidelity_row",
    "best_fidelity_rows",
    "edge_fidelity",
    "get_fidelity_service",
    "propagate_fidelity_scalar",
    "set_fidelity_service",
    "load_field",
    "load_graph",
    "load_store",
    "mine_correlation_graph",
    "save_field",
    "save_graph",
    "save_store",
]
