"""Shared best-fidelity influence subsystem: CSR kernel + cross-stage cache.

Both halves of the paper's fast path are built on the same spatial
structure: the **best-path fidelity** from a road to every other road
over the correlation graph. Step-1 propagation inference turns those
fidelities into log-odds votes; the seed-selection objective turns them
into coverage probabilities; the Step-2 regression weights seed
observations by them. Historically each consumer recomputed and cached
the maps independently — three uncoordinated dict caches and three
pure-Python Dijkstra loops on the hot path.

This module makes the structure first-class:

* :class:`CSRFidelityGraph` — a frozen CSR (``indptr``/``indices``/
  ``data``) export of a :class:`~repro.history.correlation.
  CorrelationGraph` with cached integer road indexing.  ``data`` holds
  *edge fidelities* ``q = max(0, 2p - 1)``, not raw agreements.
* :func:`best_fidelity_row` — a vectorized multi-source-ready kernel:
  frontier-synchronous max-product relaxation over the CSR arrays,
  pruned at ``min_fidelity`` and (optionally) ``max_hops``, returning a
  dense per-seed fidelity row.  After ``h`` frontier rounds the row is
  exactly the optimum over all paths of at most ``h`` hops, which is
  the *sound* ``max_hops`` semantics (a weaker-but-shorter path is
  never shadowed by a stronger-but-longer one, unlike single-label
  Dijkstra pruning).
* :func:`propagate_fidelity_scalar` — the dict/heap scalar reference
  the kernel is differentially tested against (and the implementation
  behind :func:`repro.trend.propagation.propagate_fidelity`).
* :class:`FidelityCacheService` — the single shared cache keyed by
  graph identity (weakly), fidelity floor, hop budget and transform.
  :class:`~repro.trend.propagation.TrendPropagationInference`,
  :class:`~repro.seeds.objective.SeedSelectionObjective` (including
  clones and partitioned selection) and
  :class:`~repro.speed.estimator.TwoStepEstimator` all draw from one
  service, so a fidelity row computed by any stage is a cache hit for
  every other stage.  Returned rows are read-only numpy views and
  returned maps are :class:`types.MappingProxyType` views, so callers
  cannot poison the cache by mutating results.

Cache hits and misses flow into the existing :mod:`repro.obs` metrics
as ``fidelity.cache`` counts (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import heapq
import math
import weakref
from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

import numpy as np

from repro.core.errors import InferenceError
from repro.history.correlation import CorrelationGraph
from repro.obs import get_recorder

#: Transforms a cached fidelity row can be served under.
#:
#: * ``"fidelity"`` — the raw best-path fidelity ``q``;
#: * ``"variance"`` — variance explained ``sin^2(pi q / 2)`` (the
#:   seed-selection calibration, see :mod:`repro.seeds.objective`);
#: * ``"logodds"`` — the propagation vote magnitude
#:   ``log((1 + q)/(1 - q))`` with the source entry zeroed (a seed
#:   never votes on itself).
ROW_TRANSFORMS = ("fidelity", "variance", "logodds")

#: Clamp applied to ``q`` before the log-odds vote, matching the
#: scalar inference path exactly.
_LOGODDS_CLAMP = 1.0 - 1e-9


def edge_fidelity(agreement: float) -> float:
    """Channel fidelity of a correlation edge: ``2p - 1``.

    Agreement at or below 0.5 carries no information and maps to 0.
    """
    return max(0.0, 2.0 * agreement - 1.0)


def _validate(min_fidelity: float) -> None:
    if not 0.0 < min_fidelity < 1.0:
        raise InferenceError(f"min_fidelity {min_fidelity} must be in (0, 1)")


# ----------------------------------------------------------------------
# CSR export
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CSRFidelityGraph:
    """CSR adjacency of a correlation graph with edge *fidelities*.

    ``indices[indptr[i]:indptr[i + 1]]`` are the neighbour positions of
    the road at position ``i`` (positions follow ``road_ids``, which is
    the graph's sorted road-id order) and ``data`` carries the matching
    edge fidelities. All arrays are read-only.
    """

    road_ids: tuple[int, ...]
    index: dict[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    @property
    def num_roads(self) -> int:
        return len(self.road_ids)

    @classmethod
    def from_graph(cls, graph: CorrelationGraph) -> "CSRFidelityGraph":
        road_ids = tuple(graph.road_ids)
        index = {road: i for i, road in enumerate(road_ids)}
        n = len(road_ids)
        us: list[int] = []
        vs: list[int] = []
        qs: list[float] = []
        for edge in graph.edges():
            q = edge_fidelity(edge.agreement)
            iu, iv = index[edge.road_u], index[edge.road_v]
            us.append(iu)
            vs.append(iv)
            qs.append(q)
            us.append(iv)
            vs.append(iu)
            qs.append(q)
        u = np.asarray(us, dtype=np.int64)
        v = np.asarray(vs, dtype=np.int64)
        q_arr = np.asarray(qs, dtype=np.float64)
        order = np.lexsort((v, u)) if u.size else np.empty(0, dtype=np.int64)
        indices = v[order]
        data = q_arr[order]
        counts = np.bincount(u, minlength=n) if u.size else np.zeros(n, np.int64)
        indptr = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
        )
        for arr in (indptr, indices, data):
            arr.setflags(write=False)
        return cls(
            road_ids=road_ids,
            index=index,
            indptr=indptr,
            indices=indices,
            data=data,
        )


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------
def best_fidelity_row(
    csr: CSRFidelityGraph,
    source: int,
    min_fidelity: float = 0.05,
    max_hops: int | None = None,
) -> np.ndarray:
    """Dense best-path fidelity row from CSR position ``source``.

    Frontier-synchronous max-product relaxation: after round ``h`` the
    row holds the optimum over all paths of at most ``h`` hops whose
    running product never drops below ``min_fidelity`` (products only
    shrink along a path, so prefix pruning is exact). Entries below the
    floor are 0; the source is 1.
    """
    _validate(min_fidelity)
    n = csr.num_roads
    if not 0 <= source < n:
        raise InferenceError(f"source position {source} out of range [0, {n})")
    best = np.zeros(n, dtype=np.float64)
    best[source] = 1.0
    indptr, indices, data = csr.indptr, csr.indices, csr.data
    frontier = np.array([source], dtype=np.int64)
    scratch = np.zeros(n, dtype=np.float64)
    hop = 0
    while frontier.size and (max_hops is None or hop < max_hops):
        starts = indptr[frontier]
        ends = indptr[frontier + 1]
        counts = ends - starts
        busy = counts > 0
        if not busy.all():
            frontier = frontier[busy]
            starts = starts[busy]
            ends = ends[busy]
            counts = counts[busy]
        total = int(counts.sum())
        if total == 0:
            break
        # Concatenated per-frontier edge ranges, without a Python loop:
        # cumsum over unit steps with range-boundary jumps patched in.
        steps = np.ones(total, dtype=np.int64)
        steps[0] = starts[0]
        boundaries = np.cumsum(counts)
        steps[boundaries[:-1]] = starts[1:] - ends[:-1] + 1
        edge_idx = np.cumsum(steps)
        candidate = np.repeat(best[frontier], counts) * data[edge_idx]
        destination = indices[edge_idx]
        keep = candidate >= min_fidelity
        if not keep.any():
            break
        scratch.fill(0.0)
        np.maximum.at(scratch, destination[keep], candidate[keep])
        improved = scratch > best
        if not improved.any():
            break
        best[improved] = scratch[improved]
        frontier = np.flatnonzero(improved)
        hop += 1
    return best


def best_fidelity_rows(
    csr: CSRFidelityGraph,
    sources: list[int],
    min_fidelity: float = 0.05,
    max_hops: int | None = None,
) -> np.ndarray:
    """Stacked :func:`best_fidelity_row` for several sources: ``(S, N)``."""
    if not sources:
        return np.zeros((0, csr.num_roads), dtype=np.float64)
    return np.stack(
        [best_fidelity_row(csr, s, min_fidelity, max_hops) for s in sources]
    )


def propagate_fidelity_scalar(
    graph: CorrelationGraph,
    source: int,
    min_fidelity: float = 0.05,
    max_hops: int | None = None,
) -> dict[int, float]:
    """Scalar (dict/heap) reference for best-path fidelity propagation.

    Semantically identical to :func:`best_fidelity_row` (and kept for
    differential testing): without a hop budget it is a pruned
    max-product Dijkstra; with one it is the same frontier-synchronous
    relaxation in dict form, because single-label Dijkstra cannot bound
    hops soundly — a weaker-but-shorter path must survive alongside a
    stronger-but-longer one.
    """
    if not graph.has_road(source):
        raise InferenceError(f"source road {source} not in correlation graph")
    _validate(min_fidelity)
    if max_hops is not None:
        return _scalar_bounded(graph, source, min_fidelity, max_hops)

    best: dict[int, float] = {source: 1.0}
    # Max-heap via negated fidelity.
    heap: list[tuple[float, int]] = [(-1.0, source)]
    while heap:
        neg_fid, road = heapq.heappop(heap)
        fidelity = -neg_fid
        if fidelity < best.get(road, 0.0):
            continue
        for edge in graph.neighbours(road):
            other = edge.other(road)
            candidate = fidelity * edge_fidelity(edge.agreement)
            if candidate < min_fidelity:
                continue
            if candidate > best.get(other, 0.0):
                best[other] = candidate
                heapq.heappush(heap, (-candidate, other))
    return best


def _scalar_bounded(
    graph: CorrelationGraph, source: int, min_fidelity: float, max_hops: int
) -> dict[int, float]:
    """Hop-bounded best fidelity: synchronous layered relaxation.

    After layer ``h``, ``best`` is the optimum over paths of <= ``h``
    hops — the candidate path's own hop count is what gets bounded, so
    a road reachable only through a short weak path is never dropped
    because a longer strong path reached it first.
    """
    best: dict[int, float] = {source: 1.0}
    frontier: dict[int, float] = {source: 1.0}
    for _ in range(max_hops):
        improved: dict[int, float] = {}
        for road, fidelity in frontier.items():
            for edge in graph.neighbours(road):
                other = edge.other(road)
                candidate = fidelity * edge_fidelity(edge.agreement)
                if candidate < min_fidelity:
                    continue
                if candidate > best.get(other, 0.0) and candidate > improved.get(
                    other, 0.0
                ):
                    improved[other] = candidate
        if not improved:
            break
        best.update(improved)
        frontier = improved
    return best


def _transform_row(
    row: np.ndarray, source: int, transform: str, support: np.ndarray
) -> np.ndarray:
    """Apply a row transform entry-by-entry on the support.

    The per-entry math intentionally uses :mod:`math` so transformed
    values are bitwise identical to the scalar reference paths, keeping
    the kernel/scalar differential byte-exact per entry.
    """
    if transform == "fidelity":
        return row
    out = np.zeros_like(row)
    if transform == "variance":
        for i in support:
            out[i] = math.sin(math.pi * row[i] / 2.0) ** 2
        return out
    if transform == "logodds":
        for i in support:
            q = min(row[i], _LOGODDS_CLAMP)
            out[i] = math.log((1.0 + q) / (1.0 - q))
        out[source] = 0.0
        return out
    raise InferenceError(
        f"unknown fidelity transform {transform!r}; choose from {ROW_TRANSFORMS}"
    )


# ----------------------------------------------------------------------
# The shared cache service
# ----------------------------------------------------------------------
class WeakRowListener:
    """A row-invalidation listener that does not pin its owner.

    The process-default service outlives any one consumer; registering
    a bound method directly would keep every consumer ever built alive
    through the listener list. Dead wrappers become no-ops.
    """

    def __init__(self, method) -> None:
        self._ref = weakref.WeakMethod(method)

    def __call__(self, graph, roads) -> None:
        method = self._ref()
        if method is not None:
            method(graph, roads)


@dataclass(frozen=True)
class CacheStats:
    """Cumulative row/map cache accounting of a service."""

    hits: int
    misses: int

    @property
    def total(self) -> int:
        return self.hits + self.misses


class _GraphEntry:
    """Everything cached for one correlation graph."""

    __slots__ = ("csr", "rows", "maps", "stacked")

    def __init__(self) -> None:
        self.csr: CSRFidelityGraph | None = None
        # (min_fidelity, max_hops, transform) -> {road -> read-only row}
        self.rows: dict[tuple, dict[int, np.ndarray]] = {}
        # same key -> {road -> MappingProxyType}
        self.maps: dict[tuple, dict[int, Mapping[int, float]]] = {}
        # (key, roads tuple) -> read-only (S, N) matrix
        self.stacked: dict[tuple, np.ndarray] = {}


class FidelityCacheService:
    """The single cross-stage cache of best-fidelity influence rows.

    Caches are keyed by graph *identity* (weakly, so dropped graphs
    free their rows), fidelity floor, hop budget and transform — mining
    a new correlation graph or changing a floor can never serve stale
    rows. ``use_kernel=False`` computes rows with the scalar reference
    instead of the CSR kernel (identical results; used for differential
    benchmarking) while still sharing this cache's bookkeeping.
    """

    def __init__(self, use_kernel: bool = True) -> None:
        self.use_kernel = use_kernel
        self._graphs: "weakref.WeakKeyDictionary[CorrelationGraph, _GraphEntry]" = (
            weakref.WeakKeyDictionary()
        )
        self._hits = 0
        self._misses = 0
        self._listeners: list = []
        self._row_listeners: list = []

    # -- bookkeeping ----------------------------------------------------
    def _entry(self, graph: CorrelationGraph) -> _GraphEntry:
        entry = self._graphs.get(graph)
        if entry is None:
            entry = _GraphEntry()
            self._graphs[graph] = entry
        return entry

    @staticmethod
    def _key(
        min_fidelity: float, max_hops: int | None, transform: str
    ) -> tuple:
        if transform not in ROW_TRANSFORMS:
            raise InferenceError(
                f"unknown fidelity transform {transform!r}; "
                f"choose from {ROW_TRANSFORMS}"
            )
        return (float(min_fidelity), max_hops, transform)

    def stats(self) -> CacheStats:
        return CacheStats(hits=self._hits, misses=self._misses)

    def add_invalidation_listener(self, listener) -> None:
        """Call ``listener(graph)`` whenever this service invalidates.

        Dependent caches (e.g. compiled interval plans, which bake
        fidelity-derived regressions into their coefficient blocks)
        register here so they can never outlive the rows they derive
        from.
        """
        self._listeners.append(listener)

    def add_row_invalidation_listener(self, listener) -> None:
        """Call ``listener(graph, roads)`` on row-level invalidations.

        ``roads`` is the sorted tuple of source roads whose cached
        influence rows were dropped, or ``None`` for a whole-graph
        invalidation (which also fires these listeners — a coarse
        invalidation must never look *narrower* than a fine one).
        Incremental CELF re-selection registers here to learn which
        candidates' cached gains are dirty.
        """
        self._row_listeners.append(listener)

    def invalidate(self, graph: CorrelationGraph | None = None) -> None:
        """Drop cached rows for ``graph`` (or everything)."""
        if graph is None:
            self._graphs = weakref.WeakKeyDictionary()
        else:
            self._graphs.pop(graph, None)
        get_recorder().count("fidelity.invalidations", scope="graph")
        for listener in list(self._listeners):
            listener(graph)
        for listener in list(self._row_listeners):
            listener(graph, None)

    def invalidate_rows(self, graph: CorrelationGraph, roads) -> None:
        """Drop the cached influence rows of specific source roads.

        Narrower than :meth:`invalidate`: only the dense rows, sparse
        maps and stacked matrices derived from the given source roads
        are dropped; every other road's cache survives. Row listeners
        receive the sorted road tuple so dependents (incremental CELF)
        can mark exactly those candidates dirty. Roads with nothing
        cached are fine to name — invalidation is idempotent.
        """
        dropped = tuple(sorted(set(roads)))
        if not dropped:
            return
        entry = self._graphs.get(graph)
        if entry is not None:
            road_set = set(dropped)
            for per_key in entry.rows.values():
                for road in dropped:
                    per_key.pop(road, None)
            for per_key in entry.maps.values():
                for road in dropped:
                    per_key.pop(road, None)
            stale = [
                stacked_key
                for stacked_key in entry.stacked
                if road_set.intersection(stacked_key[1])
            ]
            for stacked_key in stale:
                del entry.stacked[stacked_key]
        get_recorder().count("fidelity.invalidations", len(dropped), scope="rows")
        for listener in list(self._row_listeners):
            listener(graph, dropped)

    def apply_graph_delta(self, graph: CorrelationGraph, delta) -> tuple[int, ...]:
        """Selective invalidation after ``delta`` was applied to ``graph``.

        Call right after :meth:`~repro.history.correlation.
        CorrelationGraph.apply_delta` mutated ``graph`` in place. A
        cached best-fidelity row can only change if some changed edge
        lies on one of its (new or old) best paths, and any such path's
        prefix up to the *first* changed edge is an all-old-edges path
        whose running product — never below the row's floor — makes the
        old row nonzero at that edge's endpoint. So rows (and maps)
        with zero support on every touched endpoint are provably
        unaffected and survive; the rest are dropped through
        :meth:`invalidate_rows`, which also tells row listeners
        (compiled plans, CELF gains, influence memos) exactly which
        sources went stale. Touched endpoints are always dropped — their
        own incident edges changed. Returns the sorted dropped sources.
        """
        touched = set(delta.touched_roads())
        if not touched:
            return ()
        affected = set(touched)
        entry = self._graphs.get(graph)
        if entry is not None:
            # CSR row positions follow the graph's sorted road-id order;
            # recompute directly so a previously dropped CSR (entry.csr
            # is None after an earlier delta) never forces a full flush.
            order = {road: i for i, road in enumerate(graph.road_ids)}
            positions = np.array(
                sorted(order[r] for r in touched if r in order), dtype=np.int64
            )
            for per_key in entry.rows.values():
                for source, row in per_key.items():
                    if source in affected:
                        continue
                    if positions.size and bool(np.any(row[positions] != 0.0)):
                        affected.add(source)
            for per_key in entry.maps.values():
                for source, mapping in per_key.items():
                    if source in affected:
                        continue
                    if any(road in mapping for road in touched):
                        affected.add(source)
            # The CSR arrays bake in the old edge weights; rebuild lazily.
            entry.csr = None
        dropped = tuple(sorted(affected))
        self.invalidate_rows(graph, dropped)
        return dropped

    def csr(self, graph: CorrelationGraph) -> CSRFidelityGraph:
        """The (cached) CSR export of ``graph``."""
        entry = self._entry(graph)
        if entry.csr is None:
            entry.csr = CSRFidelityGraph.from_graph(graph)
        return entry.csr

    # -- rows -----------------------------------------------------------
    def row(
        self,
        graph: CorrelationGraph,
        road: int,
        min_fidelity: float = 0.05,
        max_hops: int | None = None,
        transform: str = "fidelity",
    ) -> np.ndarray:
        """Dense influence row for ``road`` (read-only, CSR-ordered)."""
        key = self._key(min_fidelity, max_hops, transform)
        entry = self._entry(graph)
        per_key = entry.rows.get(key)
        if per_key is None:
            per_key = entry.rows[key] = {}
        cached = per_key.get(road)
        if cached is not None:
            self._hits += 1
            get_recorder().count("fidelity.cache", hit="true")
            return cached
        computed = self._compute_row(graph, entry, road, key)
        per_key[road] = computed
        self._misses += 1
        get_recorder().count("fidelity.cache", hit="false")
        return computed

    def rows(
        self,
        graph: CorrelationGraph,
        roads: list[int],
        min_fidelity: float = 0.05,
        max_hops: int | None = None,
        transform: str = "fidelity",
    ) -> np.ndarray:
        """Stacked ``(S, N)`` influence rows (read-only, cached per set)."""
        key = self._key(min_fidelity, max_hops, transform)
        entry = self._entry(graph)
        stacked_key = (key, tuple(roads))
        cached = entry.stacked.get(stacked_key)
        if cached is not None:
            self._hits += len(roads)
            get_recorder().count("fidelity.cache", len(roads), hit="true")
            return cached
        if not roads:
            matrix = np.zeros((0, self.csr(graph).num_roads), dtype=np.float64)
        else:
            matrix = np.stack(
                [
                    self.row(graph, r, min_fidelity, max_hops, transform)
                    for r in roads
                ]
            )
        matrix.setflags(write=False)
        entry.stacked[stacked_key] = matrix
        return matrix

    def fidelity_map(
        self,
        graph: CorrelationGraph,
        road: int,
        min_fidelity: float = 0.05,
        max_hops: int | None = None,
        transform: str = "fidelity",
    ) -> Mapping[int, float]:
        """Sparse ``{road id -> influence}`` view (read-only, cached).

        The dict form of :meth:`row`, for scalar consumers: only roads
        at or above the fidelity floor appear (the source always does,
        except under the ``"logodds"`` transform, which zeroes it).
        """
        key = self._key(min_fidelity, max_hops, transform)
        entry = self._entry(graph)
        per_key = entry.maps.get(key)
        if per_key is None:
            per_key = entry.maps[key] = {}
        cached = per_key.get(road)
        if cached is not None:
            return cached
        row = self.row(graph, road, min_fidelity, max_hops, transform)
        road_ids = self.csr(graph).road_ids
        proxy = MappingProxyType(
            {road_ids[i]: float(row[i]) for i in np.flatnonzero(row)}
        )
        per_key[road] = proxy
        return proxy

    # -- computation ----------------------------------------------------
    def _compute_row(
        self,
        graph: CorrelationGraph,
        entry: _GraphEntry,
        road: int,
        key: tuple,
    ) -> np.ndarray:
        min_fidelity, max_hops, transform = key
        # Every transform of the same (graph, floor, hops) derives from
        # one cached raw propagation; the raw fetch below does not touch
        # the hit/miss stats, so one cold transformed row counts as
        # exactly one miss.
        raw = self._raw_row(graph, entry, road, min_fidelity, max_hops)
        if transform == "fidelity":
            return raw
        csr = self.csr(graph)
        out = _transform_row(raw, csr.index[road], transform, np.flatnonzero(raw))
        out.setflags(write=False)
        return out

    def _raw_row(
        self,
        graph: CorrelationGraph,
        entry: _GraphEntry,
        road: int,
        min_fidelity: float,
        max_hops: int | None,
    ) -> np.ndarray:
        key = (float(min_fidelity), max_hops, "fidelity")
        per_key = entry.rows.setdefault(key, {})
        cached = per_key.get(road)
        if cached is not None:
            return cached
        csr = self.csr(graph)
        source = csr.index.get(road)
        if source is None:
            raise InferenceError(f"source road {road} not in correlation graph")
        if self.use_kernel:
            row = best_fidelity_row(csr, source, min_fidelity, max_hops)
        else:
            scalar = propagate_fidelity_scalar(graph, road, min_fidelity, max_hops)
            row = np.zeros(csr.num_roads, dtype=np.float64)
            for other, fidelity in scalar.items():
                row[csr.index[other]] = fidelity
        row.setflags(write=False)
        per_key[road] = row
        return row


_default_service = FidelityCacheService()


def get_fidelity_service() -> FidelityCacheService:
    """The process-default shared cache service."""
    return _default_service


def set_fidelity_service(service: FidelityCacheService) -> FidelityCacheService:
    """Replace the process-default service; returns the previous one."""
    global _default_service
    previous = _default_service
    _default_service = service
    return previous
