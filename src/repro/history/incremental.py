"""Incremental sliding-window correlation mining.

:func:`~repro.history.correlation.mine_correlation_graph` is a batch
operation: every re-mine re-reads the whole trend matrix for every
candidate pair. A deployed system slides its history window one day at
a time, and almost all of that work is redundant — the counts behind a
pair's agreement change only by the day that left, the day that
arrived, and the retained intervals whose trend *flipped* because the
window's bucket means drifted. This module maintains those counts
directly:

* :class:`IncrementalCoTrendStats` — per candidate pair (the exact pair
  set batch mining enumerates), the running number of **valid**
  intervals (both trends nonzero) and **same-sign** intervals over the
  current window. :meth:`IncrementalCoTrendStats.advance` updates them
  by subtracting evicted rows, re-scoring only trend-flipped retained
  rows, and adding the new day's rows.
* :meth:`IncrementalCoTrendStats.mine_edges` — turns the counts into
  the kept edge list using **the same float expressions, in the same
  order, on the same integer inputs** as batch mining, so the result is
  bit-for-bit the edge set ``mine_correlation_graph`` would produce on
  the current window. That is the differential guarantee
  :meth:`repro.history.online.RollingHistory.verify_incremental`
  asserts.
* :class:`GraphDelta` / :func:`diff_edges` — the edge-level difference
  between a live :class:`~repro.history.correlation.CorrelationGraph`
  and a freshly mined edge list: edges added, removed, and re-weighted
  beyond a tolerance. Applying it with
  :meth:`~repro.history.correlation.CorrelationGraph.apply_delta`
  mutates the graph in place, which is what lets identity-keyed caches
  (the fidelity service and everything attached to it) survive a
  re-mine and evict selectively — see
  :meth:`repro.history.fidelity.FidelityCacheService.apply_graph_delta`.

Why exactness holds: batch mining's fast path computes agreements as
``(1 + (Σ t_u·t_v) / n) / 2`` where the matmul over ±1 trends is an
exactly-representable integer, and its masked path computes
``same / max(valid, 1)`` from integer counts. Both are reproduced here
from the maintained integer counts (``Σ t_u·t_v = 2·same − n`` when no
zeros are present), using identical float64 operations — so equal
counts give bitwise-equal agreements, and the threshold comparisons
keep identical edge sets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import DataError
from repro.history.correlation import CorrelationEdge, CorrelationGraph
from repro.roadnet.network import RoadNetwork

__all__ = ["GraphDelta", "IncrementalCoTrendStats", "diff_edges"]

#: Pair-axis chunk budget for the count updates: rows × pairs int8
#: blocks stay a few MB regardless of window or city size.
_CELL_BUDGET = 4_000_000


@dataclass(frozen=True)
class GraphDelta:
    """Edge-level difference between two minings of one road set.

    ``added`` and ``reweighted`` carry full
    :class:`~repro.history.correlation.CorrelationEdge` objects (with
    ``road_u < road_v``); ``removed`` carries ``(road_u, road_v)`` key
    pairs. A delta is what flows from
    :meth:`~repro.history.online.RollingHistory.ingest_day` through the
    cache stack: only roads it touches lose cached fidelity rows and
    compiled plans.
    """

    added: tuple[CorrelationEdge, ...]
    removed: tuple[tuple[int, int], ...]
    reweighted: tuple[CorrelationEdge, ...]

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.reweighted)

    @property
    def num_changes(self) -> int:
        return len(self.added) + len(self.removed) + len(self.reweighted)

    def touched_roads(self) -> tuple[int, ...]:
        """Sorted road ids that are an endpoint of any changed edge."""
        roads: set[int] = set()
        for edge in self.added:
            roads.update((edge.road_u, edge.road_v))
        for key in self.removed:
            roads.update(key)
        for edge in self.reweighted:
            roads.update((edge.road_u, edge.road_v))
        return tuple(sorted(roads))

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"GraphDelta(added={len(self.added)}, removed={len(self.removed)}, "
            f"reweighted={len(self.reweighted)})"
        )


#: The delta of a re-mine that changed nothing.
EMPTY_DELTA = GraphDelta(added=(), removed=(), reweighted=())


def diff_edges(
    graph: CorrelationGraph,
    edges: list[CorrelationEdge],
    tolerance: float = 0.0,
) -> GraphDelta:
    """The :class:`GraphDelta` turning ``graph`` into the mined ``edges``.

    ``tolerance`` bounds weight churn: a surviving edge whose new
    agreement differs from the current one by at most ``tolerance``
    keeps its **current** weight (it does not appear in the delta), so
    downstream caches are not evicted for sub-tolerance drift. The
    default 0.0 reports every weight change, which is what makes the
    applied graph exactly equal to a batch re-mine.
    """
    if tolerance < 0.0:
        raise DataError(f"delta tolerance must be >= 0, got {tolerance}")
    old = {(e.road_u, e.road_v): e.agreement for e in graph.edges()}
    new: dict[tuple[int, int], float] = {}
    for edge in edges:
        key = (
            (edge.road_u, edge.road_v)
            if edge.road_u < edge.road_v
            else (edge.road_v, edge.road_u)
        )
        new[key] = edge.agreement
    added = tuple(
        CorrelationEdge(u, v, p)
        for (u, v), p in sorted(new.items())
        if (u, v) not in old
    )
    removed = tuple(key for key in sorted(old) if key not in new)
    reweighted = tuple(
        CorrelationEdge(u, v, new[(u, v)])
        for (u, v) in sorted(new.keys() & old.keys())
        if abs(new[(u, v)] - old[(u, v)]) > tolerance
    )
    return GraphDelta(added=added, removed=removed, reweighted=reweighted)


class IncrementalCoTrendStats:
    """Sliding-window per-pair agreement and valid-interval counts.

    Pairs are enumerated exactly as batch mining does — every
    ``(u, v)`` with ``v`` within ``max_hops`` of ``u`` in road
    adjacency and ``v > u`` — and the window's trend matrix is retained
    so an :meth:`advance` can subtract exactly the rows that left or
    flipped. The road set is fixed at construction (a rolling window
    never changes its roads mid-flight; build a new instance for a new
    network).
    """

    def __init__(
        self,
        network: RoadNetwork,
        road_ids: list[int],
        max_hops: int = 2,
    ) -> None:
        if max_hops < 1:
            raise DataError(f"max_hops must be >= 1, got {max_hops}")
        self._road_ids = list(road_ids)
        self._max_hops = max_hops
        column = {road: i for i, road in enumerate(self._road_ids)}
        pair_u: list[int] = []
        pair_v: list[int] = []
        for road_id in self._road_ids:
            for other, hops in network.roads_within_hops(road_id, max_hops).items():
                if other > road_id and other in column and hops >= 1:
                    pair_u.append(column[road_id])
                    pair_v.append(column[other])
        self._pair_u = np.asarray(pair_u, dtype=np.int64)
        self._pair_v = np.asarray(pair_v, dtype=np.int64)
        self._same = np.zeros(len(pair_u), dtype=np.int64)
        self._valid = np.zeros(len(pair_u), dtype=np.int64)
        self._trends: np.ndarray | None = None

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def num_pairs(self) -> int:
        return self._pair_u.size

    @property
    def num_intervals(self) -> int:
        return 0 if self._trends is None else int(self._trends.shape[0])

    @property
    def road_ids(self) -> list[int]:
        return list(self._road_ids)

    # ------------------------------------------------------------------
    # Window updates
    # ------------------------------------------------------------------
    def reset(self, trends: np.ndarray) -> None:
        """Rebuild the counts from scratch for a full window matrix."""
        trends = self._check(trends)
        self._same[:] = 0
        self._valid[:] = 0
        self._accumulate(trends, +1)
        self._trends = trends.copy()

    def advance(self, trends: np.ndarray, evicted_rows: int) -> int:
        """Slide the window to the new full trend matrix ``trends``.

        ``evicted_rows`` is how many leading rows of the *previous*
        matrix fell out of the window; the remaining old rows align
        with the leading rows of ``trends`` (same intervals), and any
        trailing rows of ``trends`` are newly ingested. Besides the
        strict add/subtract, retained rows whose trend entries flipped
        (bucket means drift as the window slides) are re-scored — that
        is what keeps the counts equal to a from-scratch rebuild.
        Returns the number of flipped retained rows (observability).
        """
        if self._trends is None:
            self.reset(trends)
            return 0
        trends = self._check(trends)
        old = self._trends
        if not 0 <= evicted_rows <= old.shape[0]:
            raise DataError(
                f"evicted_rows {evicted_rows} outside [0, {old.shape[0]}]"
            )
        retained = old[evicted_rows:]
        if retained.shape[0] > trends.shape[0]:
            raise DataError(
                f"window shrank: {retained.shape[0]} retained rows but only "
                f"{trends.shape[0]} in the new matrix"
            )
        if evicted_rows:
            self._accumulate(old[:evicted_rows], -1)
        aligned = trends[: retained.shape[0]]
        flipped = np.flatnonzero(np.any(retained != aligned, axis=1))
        if flipped.size:
            self._accumulate(retained[flipped], -1)
            self._accumulate(aligned[flipped], +1)
        if trends.shape[0] > retained.shape[0]:
            self._accumulate(trends[retained.shape[0] :], +1)
        self._trends = trends.copy()
        return int(flipped.size)

    # ------------------------------------------------------------------
    # Mining
    # ------------------------------------------------------------------
    def mine_edges(
        self, min_agreement: float = 0.6, min_valid_fraction: float = 0.1
    ) -> list[CorrelationEdge]:
        """The kept edges for the current window — bitwise equal to what
        :func:`~repro.history.correlation.mine_correlation_graph` keeps.

        The two agreement formulas below are the batch miner's own,
        selected by the same window-global ``has_zeros`` flag and fed
        the same integers, so the float results (and therefore the
        threshold decisions) are identical.
        """
        if self._trends is None:
            raise DataError("no window ingested yet")
        if not 0.5 <= min_agreement <= 1.0:
            raise DataError(
                f"min_agreement should be in [0.5, 1], got {min_agreement}"
            )
        if not 0.0 <= min_valid_fraction <= 1.0:
            raise DataError(
                f"min_valid_fraction should be in [0, 1], got {min_valid_fraction}"
            )
        num_intervals = self._trends.shape[0]
        has_zeros = bool(np.any(self._trends == 0))
        if not has_zeros:
            products = (2 * self._same - num_intervals).astype(np.float64)
            agreements = (1.0 + products / num_intervals) / 2.0
            keep = agreements >= min_agreement
        else:
            agreements = self._same / np.maximum(self._valid, 1)
            keep = (agreements >= min_agreement) & (
                self._valid >= min_valid_fraction * num_intervals
            )
        edges: list[CorrelationEdge] = []
        for k in np.flatnonzero(keep):
            edges.append(
                CorrelationEdge(
                    self._road_ids[self._pair_u[k]],
                    self._road_ids[self._pair_v[k]],
                    float(agreements[k]),
                )
            )
        return edges

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check(self, trends: np.ndarray) -> np.ndarray:
        trends = np.asarray(trends)
        if trends.ndim != 2 or trends.shape[1] != len(self._road_ids):
            raise DataError(
                f"trend matrix shape {trends.shape} does not cover the "
                f"{len(self._road_ids)} tracked roads"
            )
        return trends

    def _accumulate(self, rows: np.ndarray, sign: int) -> None:
        """Add (``sign=+1``) or subtract (``-1``) a block of trend rows."""
        if rows.shape[0] == 0 or self._pair_u.size == 0:
            return
        chunk = max(1, _CELL_BUDGET // rows.shape[0])
        for start in range(0, self._pair_u.size, chunk):
            end = min(start + chunk, self._pair_u.size)
            products = (
                rows[:, self._pair_u[start:end]] * rows[:, self._pair_v[start:end]]
            )
            self._valid[start:end] += sign * np.count_nonzero(products, axis=0)
            self._same[start:end] += sign * (products > 0).sum(axis=0)
