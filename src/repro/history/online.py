"""Rolling-window historical store for online deployments.

A deployed system does not train once: every midnight it ingests the
finished day's speeds, retires the oldest day beyond its window, and
refreshes the statistics the estimators read. :class:`RollingHistory`
manages that loop — day validation, window eviction, store rebuilds,
and (optionally rate-limited) correlation re-mining.

Rebuilding the columnar store from a ≤30-day window takes well under a
second at city scale (see F8), so the implementation favours the simple
rebuild over incremental statistics, which are notoriously easy to get
subtly wrong under eviction.
"""

from __future__ import annotations

from collections import deque

from repro.core.errors import DataError
from repro.core.field import SpeedField
from repro.history.correlation import CorrelationGraph, mine_correlation_graph
from repro.history.store import HistoricalSpeedStore
from repro.history.timebuckets import TimeGrid
from repro.roadnet.network import RoadNetwork


class RollingHistory:
    """A bounded window of daily speed fields with derived artefacts."""

    def __init__(
        self,
        network: RoadNetwork,
        grid: TimeGrid,
        window_days: int = 21,
        remine_every_days: int = 7,
        max_hops: int = 2,
        min_agreement: float = 0.6,
    ) -> None:
        if window_days < 1:
            raise DataError("window must hold at least one day")
        if remine_every_days < 1:
            raise DataError("remine_every_days must be >= 1")
        self._network = network
        self._grid = grid
        self._window_days = window_days
        self._remine_every = remine_every_days
        self._max_hops = max_hops
        self._min_agreement = min_agreement
        self._days: deque[SpeedField] = deque()
        self._store: HistoricalSpeedStore | None = None
        self._graph: CorrelationGraph | None = None
        self._days_since_mining = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest_day(self, field: SpeedField) -> None:
        """Add one finished day; evicts beyond the window and refreshes.

        The field must cover exactly one whole day and follow the last
        ingested day contiguously (gaps would silently skew bucket
        statistics, so they are rejected).
        """
        per_day = self._grid.intervals_per_day
        if len(field.intervals) != per_day:
            raise DataError(
                f"expected exactly one day ({per_day} intervals), got "
                f"{len(field.intervals)}"
            )
        if field.intervals.start % per_day != 0:
            raise DataError("day field must start at a midnight interval")
        if self._days:
            expected = self._days[-1].intervals.stop
            if field.intervals.start != expected:
                raise DataError(
                    f"non-contiguous ingest: expected day starting at "
                    f"{expected}, got {field.intervals.start}"
                )
            if field.road_ids != self._days[-1].road_ids:
                raise DataError("ingested day covers different roads")

        self._days.append(field)
        while len(self._days) > self._window_days:
            self._days.popleft()
        self._store = HistoricalSpeedStore.from_fields(
            self._grid, list(self._days)
        )
        self._days_since_mining += 1
        if self._graph is None or self._days_since_mining >= self._remine_every:
            self._graph = mine_correlation_graph(
                self._network,
                self._store,
                max_hops=self._max_hops,
                min_agreement=self._min_agreement,
            )
            self._days_since_mining = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def num_days(self) -> int:
        return len(self._days)

    @property
    def is_full(self) -> bool:
        return len(self._days) == self._window_days

    @property
    def window_days(self) -> int:
        return self._window_days

    @property
    def newest_day(self) -> int | None:
        if not self._days:
            return None
        return self._days[-1].intervals.start // self._grid.intervals_per_day

    @property
    def oldest_day(self) -> int | None:
        if not self._days:
            return None
        return self._days[0].intervals.start // self._grid.intervals_per_day

    @property
    def store(self) -> HistoricalSpeedStore:
        """The current statistics; raises before any ingest."""
        if self._store is None:
            raise DataError("no history ingested yet")
        return self._store

    @property
    def graph(self) -> CorrelationGraph:
        """The current correlation graph; raises before any ingest."""
        if self._graph is None:
            raise DataError("no history ingested yet")
        return self._graph

    def force_remine(self) -> CorrelationGraph:
        """Re-mine the correlation graph immediately (e.g. after a
        network change) regardless of the rate limit."""
        self._graph = mine_correlation_graph(
            self._network,
            self.store,
            max_hops=self._max_hops,
            min_agreement=self._min_agreement,
        )
        self._days_since_mining = 0
        return self._graph
