"""Rolling-window historical store for online deployments.

A deployed system does not train once: every midnight it ingests the
finished day's speeds, retires the oldest day beyond its window, and
refreshes the statistics the estimators read. :class:`RollingHistory`
manages that loop — day validation, window eviction, store rebuilds,
and (optionally rate-limited) correlation re-mining.

The columnar store itself is rebuilt per ingest (well under a second at
city scale for a ≤30-day window, see F8). Correlation mining is the
part that used to be a batch event: a fresh graph object every re-mine,
which invalidated the identity-keyed fidelity cache — and every
compiled serving plan — wholesale. With ``incremental=True`` (the
default) mining instead maintains sliding-window co-trend counts
(:class:`~repro.history.incremental.IncrementalCoTrendStats`), each
re-mine produces a :class:`~repro.history.incremental.GraphDelta`, and
the **same graph object** is patched in place. Delta listeners (wire
:meth:`~repro.core.pipeline.SpeedEstimationSystem.apply_graph_delta`
via :meth:`add_delta_listener`) then evict only the cached rows and
plans the changed edges can actually affect. The incremental graph is
always exactly equal to a from-scratch
:func:`~repro.history.correlation.mine_correlation_graph` on the
current window (up to ``delta_tolerance`` on surviving edge weights);
:meth:`verify_incremental` asserts it.

Re-mine activity is observable: each re-mine runs in a
``history.remine`` span and reports per-kind ``mining.delta_edges``
counts (see ``docs/STREAMING.md``).
"""

from __future__ import annotations

from collections import deque

from repro.core.errors import DataError
from repro.core.field import SpeedField
from repro.history.correlation import CorrelationGraph, mine_correlation_graph
from repro.history.incremental import (
    GraphDelta,
    IncrementalCoTrendStats,
    diff_edges,
)
from repro.history.store import HistoricalSpeedStore
from repro.history.timebuckets import TimeGrid
from repro.obs import get_recorder
from repro.roadnet.network import RoadNetwork


class RollingHistory:
    """A bounded window of daily speed fields with derived artefacts."""

    def __init__(
        self,
        network: RoadNetwork,
        grid: TimeGrid,
        window_days: int = 21,
        remine_every_days: int = 7,
        max_hops: int = 2,
        min_agreement: float = 0.6,
        min_valid_fraction: float = 0.1,
        incremental: bool = True,
        delta_tolerance: float = 0.0,
    ) -> None:
        if window_days < 1:
            raise DataError("window must hold at least one day")
        if remine_every_days < 1:
            raise DataError("remine_every_days must be >= 1")
        if delta_tolerance < 0.0:
            raise DataError(
                f"delta_tolerance must be >= 0, got {delta_tolerance}"
            )
        self._network = network
        self._grid = grid
        self._window_days = window_days
        self._remine_every = remine_every_days
        self._max_hops = max_hops
        self._min_agreement = min_agreement
        self._min_valid_fraction = min_valid_fraction
        self._incremental = incremental
        self._delta_tolerance = delta_tolerance
        self._days: deque[SpeedField] = deque()
        self._store: HistoricalSpeedStore | None = None
        self._graph: CorrelationGraph | None = None
        self._stats: IncrementalCoTrendStats | None = None
        self._days_since_mining = 0
        self._mining_epoch = 0
        self._last_delta: GraphDelta | None = None
        self._delta_listeners: list = []

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest_day(self, field: SpeedField) -> None:
        """Add one finished day; evicts beyond the window and refreshes.

        The field must cover exactly one whole day and follow the last
        ingested day contiguously (gaps would silently skew bucket
        statistics, so they are rejected). The first day is checked
        against the network's road ids — every later day must then
        cover the same roads.
        """
        per_day = self._grid.intervals_per_day
        if len(field.intervals) != per_day:
            raise DataError(
                f"expected exactly one day ({per_day} intervals), got "
                f"{len(field.intervals)}"
            )
        if field.intervals.start % per_day != 0:
            raise DataError("day field must start at a midnight interval")
        if self._days:
            expected = self._days[-1].intervals.stop
            if field.intervals.start != expected:
                raise DataError(
                    f"non-contiguous ingest: expected day starting at "
                    f"{expected}, got {field.intervals.start}"
                )
            if field.road_ids != self._days[-1].road_ids:
                raise DataError("ingested day covers different roads")
        else:
            known = set(self._network.road_ids())
            unknown = sorted(set(field.road_ids) - known)
            if unknown:
                raise DataError(
                    f"ingested day covers {len(unknown)} roads not in the "
                    f"network (first {min(len(unknown), 5)} shown): "
                    f"{unknown[:5]}"
                )

        self._days.append(field)
        evicted_days = 0
        while len(self._days) > self._window_days:
            self._days.popleft()
            evicted_days += 1
        self._store = HistoricalSpeedStore.from_fields(
            self._grid, list(self._days)
        )
        if self._incremental:
            if self._stats is None:
                self._stats = IncrementalCoTrendStats(
                    self._network, self._store.road_ids, self._max_hops
                )
                self._stats.reset(self._store.trend_matrix())
            else:
                flipped = self._stats.advance(
                    self._store.trend_matrix(), evicted_days * per_day
                )
                get_recorder().count(
                    "mining.rows_rescored", flipped + evicted_days * per_day
                )
        self._days_since_mining += 1
        if self._graph is None or self._days_since_mining >= self._remine_every:
            self._remine()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def num_days(self) -> int:
        return len(self._days)

    @property
    def is_full(self) -> bool:
        return len(self._days) == self._window_days

    @property
    def window_days(self) -> int:
        return self._window_days

    @property
    def newest_day(self) -> int | None:
        if not self._days:
            return None
        return self._days[-1].intervals.start // self._grid.intervals_per_day

    @property
    def oldest_day(self) -> int | None:
        if not self._days:
            return None
        return self._days[0].intervals.start // self._grid.intervals_per_day

    @property
    def store(self) -> HistoricalSpeedStore:
        """The current statistics; raises before any ingest."""
        if self._store is None:
            raise DataError("no history ingested yet")
        return self._store

    @property
    def graph(self) -> CorrelationGraph:
        """The current correlation graph; raises before any ingest.

        Under incremental mining this is **one long-lived object**,
        patched in place at every re-mine — watch :attr:`mining_epoch`
        (or register a delta listener) to observe refreshes.
        """
        if self._graph is None:
            raise DataError("no history ingested yet")
        return self._graph

    @property
    def mining_epoch(self) -> int:
        """How many re-mines have run (0 before the first ingest)."""
        return self._mining_epoch

    @property
    def last_delta(self) -> GraphDelta | None:
        """The delta of the latest incremental re-mine.

        ``None`` before the second re-mine and always ``None`` in batch
        mode (a fresh graph has no delta).
        """
        return self._last_delta

    def add_delta_listener(self, listener) -> None:
        """Call ``listener(graph, delta)`` after each incremental re-mine.

        Fires after the delta has been applied to the (shared) graph
        object, including when the delta is empty — listeners may rely
        on being told about every re-mine round. Initial graph builds
        and batch-mode re-mines do not fire (there is no delta; batch
        consumers key caches by graph identity instead).
        """
        self._delta_listeners.append(listener)

    def force_remine(self) -> CorrelationGraph:
        """Re-mine the correlation graph immediately (e.g. after a
        network change) regardless of the rate limit."""
        self.store  # raises before any ingest
        self._remine()
        return self._graph

    def verify_incremental(self) -> None:
        """Assert the live graph equals a from-scratch batch re-mine.

        The differential guarantee behind incremental mining: edge sets
        must match exactly, and surviving edge weights must agree
        within ``delta_tolerance`` (exactly, with the default 0.0).
        Raises :class:`~repro.core.errors.DataError` on any mismatch —
        cheap insurance for tests, CI soaks and canary deployments.
        """
        expected = mine_correlation_graph(
            self._network,
            self.store,
            max_hops=self._max_hops,
            min_agreement=self._min_agreement,
            min_valid_fraction=self._min_valid_fraction,
        )
        actual = self.graph
        if expected.road_ids != actual.road_ids:
            raise DataError("incremental graph drifted: road sets differ")
        want = {(e.road_u, e.road_v): e.agreement for e in expected.edges()}
        have = {(e.road_u, e.road_v): e.agreement for e in actual.edges()}
        missing = sorted(set(want) - set(have))
        extra = sorted(set(have) - set(want))
        if missing or extra:
            raise DataError(
                f"incremental graph drifted: {len(missing)} edges missing "
                f"(first {missing[:3]}), {len(extra)} spurious "
                f"(first {extra[:3]})"
            )
        moved = [
            key
            for key, p in want.items()
            if abs(p - have[key]) > self._delta_tolerance
        ]
        if moved:
            raise DataError(
                f"incremental graph drifted: {len(moved)} edge weights "
                f"beyond tolerance {self._delta_tolerance} "
                f"(first {sorted(moved)[:3]})"
            )

    # ------------------------------------------------------------------
    # Mining
    # ------------------------------------------------------------------
    def _remine(self) -> None:
        recorder = get_recorder()
        if not self._incremental:
            mode = "batch"
        elif self._graph is None:
            mode = "bootstrap"
        else:
            mode = "incremental"
        with recorder.span(
            "history.remine", mode=mode, days=len(self._days)
        ) as span:
            if not self._incremental:
                self._graph = mine_correlation_graph(
                    self._network,
                    self._store,
                    max_hops=self._max_hops,
                    min_agreement=self._min_agreement,
                    min_valid_fraction=self._min_valid_fraction,
                )
                self._last_delta = None
            else:
                edges = self._stats.mine_edges(
                    self._min_agreement, self._min_valid_fraction
                )
                if self._graph is None:
                    self._graph = CorrelationGraph(
                        self._store.road_ids, edges
                    )
                    self._last_delta = None
                else:
                    delta = diff_edges(
                        self._graph, edges, tolerance=self._delta_tolerance
                    )
                    self._graph.apply_delta(delta)
                    self._last_delta = delta
                    recorder.count(
                        "mining.delta_edges", len(delta.added), kind="added"
                    )
                    recorder.count(
                        "mining.delta_edges", len(delta.removed), kind="removed"
                    )
                    recorder.count(
                        "mining.delta_edges",
                        len(delta.reweighted),
                        kind="reweighted",
                    )
                    span.set(delta_edges=delta.num_changes)
                    for listener in list(self._delta_listeners):
                        listener(self._graph, delta)
            self._mining_epoch += 1
            self._days_since_mining = 0
            span.set(edges=self._graph.num_edges)
