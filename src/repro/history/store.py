"""Columnar historical speed statistics.

The :class:`HistoricalSpeedStore` aggregates training-period speed
fields into per-``(road, bucket)`` statistics — mean, standard
deviation, observation count, and the historical *rise frequency* (how
often the road ran at or above its bucket mean). Everything downstream
is defined relative to these statistics:

* a road's **trend** at an interval is its current speed vs. its bucket
  mean (:meth:`trend_of`);
* its **deviation ratio** is current speed / bucket mean, the quantity
  the Step-2 hierarchical linear model regresses;
* the **trend priors** seed the Step-1 graphical model's node potentials.

Storage is columnar numpy — one ``(num_buckets × num_roads)`` matrix per
statistic — which keeps correlation mining and model fitting vectorised.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.errors import DataError
from repro.core.types import Trend
from repro.history.timebuckets import TimeGrid
from repro.core.field import SpeedField


class HistoricalSpeedStore:
    """Per-(road, bucket) historical statistics plus the raw training data.

    Build with :meth:`from_fields`. The raw concatenated training matrix
    is retained because correlation mining and hierarchical-model
    fitting both need interval-level history, not just aggregates.
    """

    def __init__(
        self,
        grid: TimeGrid,
        road_ids: list[int],
        speeds: np.ndarray,
        intervals: np.ndarray,
    ) -> None:
        if speeds.shape != (len(intervals), len(road_ids)):
            raise DataError(
                f"speed matrix shape {speeds.shape} does not match "
                f"{len(intervals)} intervals x {len(road_ids)} roads"
            )
        if len(intervals) == 0:
            raise DataError("historical store needs at least one interval")
        self._grid = grid
        self._road_ids = list(road_ids)
        self._road_index = {road: i for i, road in enumerate(road_ids)}
        self._speeds = speeds
        self._intervals = intervals
        self._buckets = np.array([grid.bucket_of(int(t)) for t in intervals])
        self._compute_statistics()

    @classmethod
    def from_fields(
        cls, grid: TimeGrid, fields: Sequence[SpeedField]
    ) -> "HistoricalSpeedStore":
        """Build a store from one or more training speed fields.

        All fields must cover the same roads; their interval ranges must
        not overlap.
        """
        if not fields:
            raise DataError("need at least one speed field of history")
        road_ids = fields[0].road_ids
        for field in fields[1:]:
            if field.road_ids != road_ids:
                raise DataError("all history fields must cover the same roads")
        seen: set[int] = set()
        for field in fields:
            overlap = seen.intersection(field.intervals)
            if overlap:
                raise DataError(f"history fields overlap at intervals {sorted(overlap)[:5]}")
            seen.update(field.intervals)
        speeds = np.concatenate([f.matrix for f in fields], axis=0)
        intervals = np.concatenate([np.array(list(f.intervals)) for f in fields])
        order = np.argsort(intervals)
        return cls(grid, road_ids, speeds[order], intervals[order])

    def _compute_statistics(self) -> None:
        num_buckets = self._grid.num_buckets
        num_roads = len(self._road_ids)
        sums = np.zeros((num_buckets, num_roads))
        sumsq = np.zeros((num_buckets, num_roads))
        counts = np.zeros(num_buckets, dtype=np.int64)
        for bucket in range(num_buckets):
            rows = self._buckets == bucket
            counts[bucket] = int(rows.sum())
            if counts[bucket]:
                block = self._speeds[rows]
                sums[bucket] = block.sum(axis=0)
                sumsq[bucket] = (block * block).sum(axis=0)

        self._counts = counts
        with np.errstate(invalid="ignore", divide="ignore"):
            means = sums / counts[:, None]
        # Buckets never observed fall back to the road's overall mean.
        overall = self._speeds.mean(axis=0)
        empty = counts == 0
        means[empty] = overall[None, :]
        self._means = means
        with np.errstate(invalid="ignore", divide="ignore"):
            variances = sumsq / counts[:, None] - means * means
        variances[empty] = 0.0
        self._stds = np.sqrt(np.maximum(variances, 0.0))

        # Rise frequency per (bucket, road): P(speed >= bucket mean).
        rises = np.zeros((num_buckets, num_roads))
        for bucket in range(num_buckets):
            rows = self._buckets == bucket
            if rows.any():
                rises[bucket] = (self._speeds[rows] >= means[bucket]).mean(axis=0)
            else:
                rises[bucket] = 0.5
        self._rise_frequency = rises

    # ------------------------------------------------------------------
    # Identity / shape
    # ------------------------------------------------------------------
    @property
    def grid(self) -> TimeGrid:
        return self._grid

    @property
    def road_ids(self) -> list[int]:
        return list(self._road_ids)

    @property
    def num_roads(self) -> int:
        return len(self._road_ids)

    @property
    def num_training_intervals(self) -> int:
        return len(self._intervals)

    @property
    def training_intervals(self) -> np.ndarray:
        return self._intervals.copy()

    def road_column(self, road_id: int) -> int:
        try:
            return self._road_index[road_id]
        except KeyError:
            raise DataError(f"road {road_id} not in historical store") from None

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    def mean(self, road_id: int, bucket: int) -> float:
        """Historical mean speed of ``road_id`` in ``bucket``, km/h."""
        return float(self._means[bucket, self.road_column(road_id)])

    def std(self, road_id: int, bucket: int) -> float:
        """Historical speed standard deviation in ``bucket``."""
        return float(self._stds[bucket, self.road_column(road_id)])

    def bucket_count(self, bucket: int) -> int:
        """Number of training intervals observed for ``bucket``."""
        return int(self._counts[bucket])

    def historical_speed(self, road_id: int, interval: int) -> float:
        """The bucket-mean speed for ``road_id`` at ``interval``."""
        return self.mean(road_id, self._grid.bucket_of(interval))

    def mean_row(self, interval: int) -> np.ndarray:
        """Bucket-mean speeds of every road at ``interval`` (store order)."""
        return self._means[self._grid.bucket_of(interval)].copy()

    def bucket_mean_row(self, bucket: int) -> np.ndarray:
        """Historical mean speeds of every road in ``bucket`` (store order)."""
        if not 0 <= bucket < self._grid.num_buckets:
            raise DataError(
                f"bucket {bucket} outside 0..{self._grid.num_buckets - 1}"
            )
        return self._means[bucket].copy()

    def rise_prior(self, road_id: int, bucket: int) -> float:
        """Historical P(trend == RISE) for the road in this bucket.

        Clipped away from 0/1 so graphical-model potentials stay proper.
        """
        raw = float(self._rise_frequency[bucket, self.road_column(road_id)])
        return min(0.95, max(0.05, raw))

    # ------------------------------------------------------------------
    # Derived per-interval quantities
    # ------------------------------------------------------------------
    def trend_of(self, road_id: int, interval: int, current_kmh: float) -> Trend:
        """The trend of a current speed relative to history."""
        return Trend.from_speeds(current_kmh, self.historical_speed(road_id, interval))

    def deviation_ratio(self, road_id: int, interval: int, current_kmh: float) -> float:
        """current speed / historical bucket mean (1.0 = typical)."""
        historical = self.historical_speed(road_id, interval)
        if historical <= 0:
            raise DataError(f"road {road_id} has non-positive historical mean")
        return current_kmh / historical

    def trend_matrix(self) -> np.ndarray:
        """±1 trends of the whole training history (intervals × roads).

        Row order matches :attr:`training_intervals`. This is the input
        to correlation mining.
        """
        means = self._means[self._buckets]
        return np.where(self._speeds >= means, 1, -1).astype(np.int8)

    def deviation_matrix(self) -> np.ndarray:
        """Deviation ratios of the training history (intervals × roads)."""
        means = self._means[self._buckets]
        if np.any(means <= 0):
            raise DataError("historical means must be positive")
        return self._speeds / means

    def bucket_rows(self, bucket: int) -> np.ndarray:
        """Boolean mask of training rows belonging to ``bucket``."""
        return self._buckets == bucket

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"HistoricalSpeedStore(roads={self.num_roads}, "
            f"intervals={self.num_training_intervals}, "
            f"buckets={self._grid.num_buckets})"
        )
