"""Binary persistence for speed fields, stores and correlation graphs.

A deployment does not resimulate or re-mine at every restart: the speed
archive, the aggregated store and the mined correlation graph are saved
as compact ``.npz`` files and reloaded in milliseconds. Formats are
versioned; loading a mismatched version fails loudly rather than
misinterpreting arrays.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.errors import DataError
from repro.core.field import SpeedField
from repro.history.correlation import CorrelationEdge, CorrelationGraph
from repro.history.store import HistoricalSpeedStore
from repro.history.timebuckets import TimeGrid

FIELD_FORMAT = 1
STORE_FORMAT = 1
GRAPH_FORMAT = 1


# ----------------------------------------------------------------------
# SpeedField
# ----------------------------------------------------------------------
def save_field(field: SpeedField, path: str | Path) -> None:
    """Write a speed field to ``path`` (npz)."""
    np.savez_compressed(
        path,
        format=np.array([FIELD_FORMAT]),
        speeds=field.matrix,
        road_ids=np.array(field.road_ids, dtype=np.int64),
        first_interval=np.array([field.intervals.start], dtype=np.int64),
    )


def load_field(path: str | Path) -> SpeedField:
    """Load a speed field written by :func:`save_field`."""
    data = _open(path, expected_format=FIELD_FORMAT, kind="speed field")
    return SpeedField(
        data["speeds"],
        [int(r) for r in data["road_ids"]],
        int(data["first_interval"][0]),
    )


# ----------------------------------------------------------------------
# HistoricalSpeedStore
# ----------------------------------------------------------------------
def save_store(store: HistoricalSpeedStore, path: str | Path) -> None:
    """Write a historical store (raw training matrix + grid) to npz.

    The raw matrix is kept because correlation mining and model fitting
    need interval-level history; aggregates are recomputed on load,
    which guarantees they can never drift from the data.
    """
    np.savez_compressed(
        path,
        format=np.array([STORE_FORMAT]),
        interval_minutes=np.array([store.grid.interval_minutes]),
        distinguish_weekend=np.array(
            [1 if store.grid.distinguish_weekend else 0]
        ),
        road_ids=np.array(store.road_ids, dtype=np.int64),
        speeds=store._speeds,  # noqa: SLF001 - persistence is a friend
        intervals=store.training_intervals,
    )


def load_store(path: str | Path) -> HistoricalSpeedStore:
    """Load a store written by :func:`save_store`."""
    data = _open(path, expected_format=STORE_FORMAT, kind="historical store")
    grid = TimeGrid(
        int(data["interval_minutes"][0]),
        distinguish_weekend=bool(int(data["distinguish_weekend"][0])),
    )
    return HistoricalSpeedStore(
        grid,
        [int(r) for r in data["road_ids"]],
        data["speeds"],
        data["intervals"],
    )


# ----------------------------------------------------------------------
# CorrelationGraph
# ----------------------------------------------------------------------
def save_graph(graph: CorrelationGraph, path: str | Path) -> None:
    """Write a correlation graph to npz (edge arrays + road ids)."""
    edges = list(graph.edges())
    np.savez_compressed(
        path,
        format=np.array([GRAPH_FORMAT]),
        road_ids=np.array(graph.road_ids, dtype=np.int64),
        edge_u=np.array([e.road_u for e in edges], dtype=np.int64),
        edge_v=np.array([e.road_v for e in edges], dtype=np.int64),
        agreement=np.array([e.agreement for e in edges]),
    )


def load_graph(path: str | Path) -> CorrelationGraph:
    """Load a graph written by :func:`save_graph`."""
    data = _open(path, expected_format=GRAPH_FORMAT, kind="correlation graph")
    edges = [
        CorrelationEdge(int(u), int(v), float(p))
        for u, v, p in zip(data["edge_u"], data["edge_v"], data["agreement"])
    ]
    return CorrelationGraph([int(r) for r in data["road_ids"]], edges)


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _open(path: str | Path, expected_format: int, kind: str):
    path = Path(path)
    if not path.exists():
        raise DataError(f"no such {kind} file: {path}")
    try:
        data = np.load(path)
    except (OSError, ValueError) as exc:
        raise DataError(f"cannot read {kind} from {path}: {exc}") from exc
    if "format" not in data:
        raise DataError(f"{path} is not a {kind} file (no format marker)")
    version = int(data["format"][0])
    if version != expected_format:
        raise DataError(
            f"{kind} format {version} unsupported (expected {expected_format})"
        )
    return data
