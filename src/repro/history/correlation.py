"""Trend-correlation mining: from history to the correlation graph.

The paper's central observation is that *correlated roads share trends*:
when one runs faster than usual, its correlated neighbours usually do
too. This module measures that from training history and materialises a
**correlation graph** — the structure over which the Step-1 graphical
model and the seed-selection objective are both defined.

Two roads are candidate-correlated when within ``max_hops`` of each
other in road adjacency (correlation in traffic is local). For each
candidate pair we compute the **trend agreement probability**::

    p(u, v) = #{intervals where trend_u == trend_v} / #intervals

over the training history, and keep edges with ``p >= min_agreement``.
Agreement below 0.5 would mean *anti*-correlation; the default threshold
0.6 keeps only usefully informative edges. When trends carry zeros
(flat/missing intervals), agreement is computed over the *valid*
intervals only, and ``min_valid_fraction`` additionally rejects pairs
whose evidence covers too little of the window — a pair sharing one
valid interval would otherwise score a perfect 1.0 from a single
coin-flip of evidence.

For deployments that re-mine continuously, see
:mod:`repro.history.incremental`: :meth:`CorrelationGraph.apply_delta`
applies an edge-level diff in place, so long-lived caches keyed by
graph identity survive a re-mine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.errors import DataError
from repro.history.store import HistoricalSpeedStore
from repro.roadnet.network import RoadNetwork


@dataclass(frozen=True, slots=True)
class CorrelationEdge:
    """An undirected correlation edge with agreement probability."""

    road_u: int
    road_v: int
    agreement: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.agreement <= 1.0:
            raise DataError(f"agreement {self.agreement} outside [0, 1]")
        if self.road_u == self.road_v:
            raise DataError(f"self-correlation on road {self.road_u}")

    def other(self, road_id: int) -> int:
        """The endpoint that is not ``road_id``."""
        if road_id == self.road_u:
            return self.road_v
        if road_id == self.road_v:
            return self.road_u
        raise DataError(f"road {road_id} is not an endpoint of this edge")


class CorrelationGraph:
    """Undirected weighted graph of trend-correlated roads.

    Nodes are road ids; edge weights are trend-agreement probabilities in
    ``[0.5, 1]`` (after thresholding). Adjacency is precomputed for the
    inference and selection hot paths.
    """

    def __init__(self, road_ids: list[int], edges: list[CorrelationEdge]) -> None:
        self._road_ids = sorted(set(road_ids))
        road_set = set(self._road_ids)
        self._adjacency: dict[int, list[CorrelationEdge]] = {
            road: [] for road in self._road_ids
        }
        self._weights: dict[tuple[int, int], float] = {}
        for edge in edges:
            if edge.road_u not in road_set or edge.road_v not in road_set:
                raise DataError(
                    f"edge ({edge.road_u}, {edge.road_v}) references unknown road"
                )
            key = self._key(edge.road_u, edge.road_v)
            if key in self._weights:
                raise DataError(f"duplicate correlation edge {key}")
            self._weights[key] = edge.agreement
            self._adjacency[edge.road_u].append(edge)
            self._adjacency[edge.road_v].append(edge)
        for road in self._road_ids:
            self._adjacency[road].sort(key=lambda e: (-e.agreement, e.road_u, e.road_v))

    @staticmethod
    def _key(u: int, v: int) -> tuple[int, int]:
        return (u, v) if u < v else (v, u)

    @property
    def road_ids(self) -> list[int]:
        return list(self._road_ids)

    @property
    def num_roads(self) -> int:
        return len(self._road_ids)

    @property
    def num_edges(self) -> int:
        return len(self._weights)

    def has_road(self, road_id: int) -> bool:
        return road_id in self._adjacency

    def neighbours(self, road_id: int) -> list[CorrelationEdge]:
        """Edges incident to ``road_id``, strongest agreement first."""
        try:
            return list(self._adjacency[road_id])
        except KeyError:
            raise DataError(f"road {road_id} not in correlation graph") from None

    def neighbour_ids(self, road_id: int) -> list[int]:
        return [edge.other(road_id) for edge in self.neighbours(road_id)]

    def degree(self, road_id: int) -> int:
        return len(self._adjacency[road_id])

    def agreement(self, road_u: int, road_v: int) -> float | None:
        """The agreement probability of an edge, or None if absent."""
        return self._weights.get(self._key(road_u, road_v))

    def edges(self) -> Iterator[CorrelationEdge]:
        """All edges, each reported once, in (u, v) key order."""
        for (u, v), p in sorted(self._weights.items()):
            yield CorrelationEdge(u, v, p)

    def average_degree(self) -> float:
        if not self._road_ids:
            return 0.0
        return 2.0 * self.num_edges / len(self._road_ids)

    def connected_components(self) -> list[list[int]]:
        """Connected components as sorted road-id lists, largest first."""
        seen: set[int] = set()
        components: list[list[int]] = []
        for start in self._road_ids:
            if start in seen:
                continue
            component = []
            stack = [start]
            seen.add(start)
            while stack:
                road = stack.pop()
                component.append(road)
                for edge in self._adjacency[road]:
                    other = edge.other(road)
                    if other not in seen:
                        seen.add(other)
                        stack.append(other)
            components.append(sorted(component))
        components.sort(key=len, reverse=True)
        return components

    def apply_delta(self, delta) -> None:
        """Apply an edge-level diff **in place**, preserving identity.

        ``delta`` is a :class:`repro.history.incremental.GraphDelta`
        (duck-typed: ``added`` / ``reweighted`` iterate
        :class:`CorrelationEdge`, ``removed`` iterates road-id pairs).
        Mutating the existing object — rather than building a fresh
        graph — is what lets weakref-keyed caches (the fidelity
        service, and everything attached to it) keep every row that no
        changed edge touches. The road set never changes: deltas only
        add, drop or re-weight edges between known roads.
        """
        touched: set[int] = set()
        for road_u, road_v in delta.removed:
            key = self._key(road_u, road_v)
            if key not in self._weights:
                raise DataError(f"cannot remove absent correlation edge {key}")
            del self._weights[key]
            for road in key:
                self._adjacency[road] = [
                    e
                    for e in self._adjacency[road]
                    if self._key(e.road_u, e.road_v) != key
                ]
            touched.update(key)
        for edge in delta.added:
            if edge.road_u not in self._adjacency or edge.road_v not in self._adjacency:
                raise DataError(
                    f"edge ({edge.road_u}, {edge.road_v}) references unknown road"
                )
            key = self._key(edge.road_u, edge.road_v)
            if key in self._weights:
                raise DataError(f"cannot add duplicate correlation edge {key}")
            self._weights[key] = edge.agreement
            self._adjacency[edge.road_u].append(edge)
            self._adjacency[edge.road_v].append(edge)
            touched.update(key)
        for edge in delta.reweighted:
            key = self._key(edge.road_u, edge.road_v)
            if key not in self._weights:
                raise DataError(f"cannot reweight absent correlation edge {key}")
            self._weights[key] = edge.agreement
            for road in key:
                self._adjacency[road] = [
                    edge if self._key(e.road_u, e.road_v) == key else e
                    for e in self._adjacency[road]
                ]
            touched.update(key)
        for road in touched:
            self._adjacency[road].sort(key=lambda e: (-e.agreement, e.road_u, e.road_v))

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"CorrelationGraph(roads={self.num_roads}, edges={self.num_edges})"


def mine_correlation_graph(
    network: RoadNetwork,
    store: HistoricalSpeedStore,
    max_hops: int = 2,
    min_agreement: float = 0.6,
    min_valid_fraction: float = 0.1,
) -> CorrelationGraph:
    """Mine the correlation graph from history.

    ``max_hops`` bounds the candidate neighbourhood in road adjacency;
    ``min_agreement`` is the edge-keeping threshold on trend-agreement
    probability. When the history carries zero (flat/missing) trends,
    ``min_valid_fraction`` is the support guard: a pair whose valid
    (both-nonzero) intervals cover less than that fraction of the
    window is rejected outright — with one shared valid interval a pair
    scores agreement 0 or 1, so sparse histories would otherwise grow
    spurious perfect edges. Complexity is O(roads × candidates ×
    intervals) with the inner product vectorised.
    """
    if max_hops < 1:
        raise DataError(f"max_hops must be >= 1, got {max_hops}")
    if not 0.5 <= min_agreement <= 1.0:
        raise DataError(
            f"min_agreement should be in [0.5, 1], got {min_agreement}"
        )
    if not 0.0 <= min_valid_fraction <= 1.0:
        raise DataError(
            f"min_valid_fraction should be in [0, 1], got {min_valid_fraction}"
        )
    road_ids = store.road_ids
    trends = store.trend_matrix().astype(np.float64)
    num_intervals = trends.shape[0]
    column = {road: i for i, road in enumerate(road_ids)}
    # The matmul identity P(t_u == t_v) = (1 + E[t_u * t_v]) / 2 holds
    # only for strictly ±1 trends: a 0 (flat/missing) entry contributes
    # 0 to the product and silently counts as *half* an agreement. When
    # any zeros are present, fall back to per-pair masking: an interval
    # is valid only when both trends are nonzero, and agreement is the
    # fraction of valid intervals with the same sign.
    has_zeros = bool(np.any(trends == 0.0))
    nonzero = None if not has_zeros else (trends != 0.0)

    edges: list[CorrelationEdge] = []
    for road_id in road_ids:
        candidates = [
            other
            for other, hops in network.roads_within_hops(road_id, max_hops).items()
            if other > road_id and other in column and hops >= 1
        ]
        if not candidates:
            continue
        cols = np.array([column[c] for c in candidates])
        if not has_zeros:
            # agreement = P(t_u == t_v) = (1 + E[t_u * t_v]) / 2 for ±1 trends.
            products = trends[:, cols].T @ trends[:, column[road_id]]
            agreements = (1.0 + products / num_intervals) / 2.0
            supported = np.ones(len(candidates), dtype=bool)
        else:
            u_col = trends[:, column[road_id]]
            valid = nonzero[:, cols] & nonzero[:, column[road_id]][:, None]
            valid_counts = valid.sum(axis=0)
            same_sign = ((trends[:, cols] == u_col[:, None]) & valid).sum(axis=0)
            # A pair with no valid interval has no evidence: agreement 0,
            # which min_agreement >= 0.5 always rejects.
            agreements = same_sign / np.maximum(valid_counts, 1)
            supported = valid_counts >= min_valid_fraction * num_intervals
        for candidate, agreement, has_support in zip(
            candidates, agreements, supported
        ):
            if has_support and agreement >= min_agreement:
                edges.append(CorrelationEdge(road_id, candidate, float(agreement)))
    return CorrelationGraph(road_ids, edges)
