"""Time discretisation shared by the simulator, history store and models.

Time is a sequence of fixed-length **intervals** (default 15 minutes),
numbered globally from 0 at midnight of day 0. Historical statistics are
aggregated per **bucket**: the time-of-day slot, optionally split into
weekday/weekend variants, because urban speed patterns repeat daily with
a weekday/weekend distinction. Day 0 is a Monday by convention.
"""

from __future__ import annotations

from dataclasses import dataclass

MINUTES_PER_DAY = 24 * 60


@dataclass(frozen=True, slots=True)
class TimeGrid:
    """Mapping between global interval ids, days, and history buckets."""

    interval_minutes: int = 15
    distinguish_weekend: bool = False

    def __post_init__(self) -> None:
        if self.interval_minutes <= 0:
            raise ValueError(f"interval length must be positive: {self.interval_minutes}")
        if MINUTES_PER_DAY % self.interval_minutes != 0:
            raise ValueError(
                f"interval length {self.interval_minutes} must divide a day evenly"
            )

    @property
    def intervals_per_day(self) -> int:
        return MINUTES_PER_DAY // self.interval_minutes

    @property
    def num_buckets(self) -> int:
        """Total distinct history buckets."""
        return self.intervals_per_day * (2 if self.distinguish_weekend else 1)

    def day_of(self, interval: int) -> int:
        """The day index (0-based) containing ``interval``."""
        self._check(interval)
        return interval // self.intervals_per_day

    def slot_of(self, interval: int) -> int:
        """The within-day slot (0 .. intervals_per_day-1)."""
        self._check(interval)
        return interval % self.intervals_per_day

    def is_weekend(self, interval: int) -> bool:
        """Whether the interval falls on a Saturday or Sunday (day 0 = Monday)."""
        return self.day_of(interval) % 7 >= 5

    def bucket_of(self, interval: int) -> int:
        """The history bucket for ``interval``.

        Weekday and weekend slots map to disjoint bucket ranges when
        ``distinguish_weekend`` is on.
        """
        slot = self.slot_of(interval)
        if self.distinguish_weekend and self.is_weekend(interval):
            return slot + self.intervals_per_day
        return slot

    def hour_of(self, interval: int) -> float:
        """Time of day in fractional hours (0.0 .. <24.0)."""
        return self.slot_of(interval) * self.interval_minutes / 60.0

    def interval_at(self, day: int, hour: float) -> int:
        """The interval id for ``hour`` (fractional) on ``day``."""
        if day < 0:
            raise ValueError(f"negative day {day}")
        if not 0.0 <= hour < 24.0:
            raise ValueError(f"hour {hour} outside [0, 24)")
        slot = int(hour * 60 // self.interval_minutes)
        return day * self.intervals_per_day + slot

    def day_range(self, day: int) -> range:
        """All interval ids belonging to ``day``."""
        if day < 0:
            raise ValueError(f"negative day {day}")
        start = day * self.intervals_per_day
        return range(start, start + self.intervals_per_day)

    def days_range(self, first_day: int, num_days: int) -> range:
        """All interval ids in ``num_days`` consecutive days from ``first_day``."""
        if num_days < 0:
            raise ValueError(f"negative day count {num_days}")
        start = first_day * self.intervals_per_day
        return range(start, start + num_days * self.intervals_per_day)

    @staticmethod
    def _check(interval: int) -> None:
        if interval < 0:
            raise ValueError(f"negative interval id {interval}")
