"""Probability calibration of the trend posterior.

The Step-1 posterior is used both for MAP trends and as a *confidence*
(the HLM weighs seeds by it; the incident example ranks alerts by it),
so it matters whether "P(rise) = 0.8" really means 80%. This module
computes the standard calibration diagnostics — reliability bins,
expected calibration error (ECE) and the Brier score — for a stream of
(P(rise), actual trend) pairs. Experiment X1 reports them for each
inference algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import DataError
from repro.core.types import Trend


@dataclass(frozen=True, slots=True)
class ReliabilityBin:
    """One probability bin of the reliability diagram."""

    lower: float
    upper: float
    mean_predicted: float
    observed_rise_rate: float
    count: int

    @property
    def gap(self) -> float:
        """|predicted − observed|: this bin's miscalibration."""
        return abs(self.mean_predicted - self.observed_rise_rate)


@dataclass(frozen=True)
class CalibrationReport:
    """Reliability bins plus scalar summaries."""

    bins: tuple[ReliabilityBin, ...]
    expected_calibration_error: float
    brier_score: float
    count: int


def calibration_report(
    p_rise: list[float], actual: list[Trend], num_bins: int = 10
) -> CalibrationReport:
    """Build the calibration report for paired predictions and outcomes.

    ECE is the count-weighted mean of per-bin |predicted − observed|;
    the Brier score is the mean squared error of the probability against
    the binary outcome (lower is better for both; a perfectly calibrated
    fair-coin predictor has ECE 0 and Brier 0.25).
    """
    if len(p_rise) != len(actual):
        raise DataError(
            f"{len(p_rise)} probabilities vs {len(actual)} outcomes"
        )
    if not p_rise:
        raise DataError("cannot calibrate zero predictions")
    if num_bins < 1:
        raise DataError("need at least one bin")
    probs = np.asarray(p_rise, dtype=np.float64)
    if np.any(probs < 0.0) or np.any(probs > 1.0):
        raise DataError("probabilities must lie in [0, 1]")
    outcomes = np.array([1.0 if t is Trend.RISE else 0.0 for t in actual])

    edges = np.linspace(0.0, 1.0, num_bins + 1)
    # Bin membership: [edge_i, edge_{i+1}), last bin closed at 1.0.
    indices = np.clip(np.digitize(probs, edges[1:-1], right=False), 0, num_bins - 1)

    bins: list[ReliabilityBin] = []
    ece = 0.0
    for b in range(num_bins):
        mask = indices == b
        count = int(mask.sum())
        if count == 0:
            continue
        mean_predicted = float(probs[mask].mean())
        observed = float(outcomes[mask].mean())
        bins.append(
            ReliabilityBin(
                lower=float(edges[b]),
                upper=float(edges[b + 1]),
                mean_predicted=mean_predicted,
                observed_rise_rate=observed,
                count=count,
            )
        )
        ece += (count / len(probs)) * abs(mean_predicted - observed)

    brier = float(np.mean((probs - outcomes) ** 2))
    return CalibrationReport(
        bins=tuple(bins),
        expected_calibration_error=float(ece),
        brier_score=brier,
        count=len(p_rise),
    )
