"""ASCII rendering of per-road values over the city.

A terminal-friendly "heat map": road midpoints are rasterised onto a
character grid and coloured by a density ramp, so a monitoring console
can glance at where the city is slow (deviation ratios), where the
estimator is unsure (band widths), or where alerts cluster (anomaly
scores) without a plotting stack. Used by the examples and the CLI.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.errors import DataError
from repro.roadnet.network import RoadNetwork

#: Low-to-high character ramp (space = no road in the cell).
DEFAULT_RAMP = " .:-=+*#%@"


def render_road_values(
    network: RoadNetwork,
    values: Mapping[int, float],
    width: int = 60,
    ramp: str = DEFAULT_RAMP,
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """Render ``road id -> value`` as an ASCII heat map.

    Cells covered by several roads show their mean value. ``lo``/``hi``
    pin the colour scale (default: the data range); values outside are
    clamped. Rows are emitted north-up (max y first).
    """
    if width < 4:
        raise DataError("map width must be at least 4 characters")
    if len(ramp) < 2:
        raise DataError("ramp needs at least 2 characters")
    if not values:
        raise DataError("no road values to render")
    for road in values:
        if not network.has_segment(road):
            raise DataError(f"unknown road id {road}")

    bbox = network.bounding_box(margin=1.0)
    # Terminal cells are ~2x taller than wide; halve the row count.
    cell_w = bbox.width / width
    height = max(2, int(bbox.height / (2.0 * cell_w)) + 1)
    cell_h = bbox.height / height

    sums = [[0.0] * width for _ in range(height)]
    counts = [[0] * width for _ in range(height)]
    for road, value in values.items():
        mid = network.segment_midpoint(road)
        col = min(width - 1, int((mid.x - bbox.min_x) / cell_w))
        row = min(height - 1, int((mid.y - bbox.min_y) / cell_h))
        sums[row][col] += float(value)
        counts[row][col] += 1

    cell_values = [
        [sums[r][c] / counts[r][c] if counts[r][c] else None for c in range(width)]
        for r in range(height)
    ]
    present = [v for row in cell_values for v in row if v is not None]
    scale_lo = min(present) if lo is None else lo
    scale_hi = max(present) if hi is None else hi
    if scale_hi <= scale_lo:
        scale_hi = scale_lo + 1e-9

    lines = []
    for r in range(height - 1, -1, -1):  # north-up
        chars = []
        for c in range(width):
            v = cell_values[r][c]
            if v is None:
                chars.append(ramp[0] if ramp[0] == " " else " ")
            else:
                t = (v - scale_lo) / (scale_hi - scale_lo)
                t = min(1.0, max(0.0, t))
                chars.append(ramp[min(len(ramp) - 1, int(t * len(ramp)))])
        lines.append("".join(chars))
    return "\n".join(lines)


def render_deviation_map(
    network: RoadNetwork,
    speeds: Mapping[int, float],
    historical: Mapping[int, float],
    width: int = 60,
) -> str:
    """Congestion view: 1 − speed/historical, clamped to [0, 0.6].

    Dense characters mark roads running far below their usual speed.
    """
    missing = set(speeds) - set(historical)
    if missing:
        raise DataError(f"no historical speed for roads {sorted(missing)[:3]}")
    deviations = {
        road: max(0.0, 1.0 - speeds[road] / max(historical[road], 1e-9))
        for road in speeds
    }
    return render_road_values(
        network, deviations, width=width, lo=0.0, hi=0.6
    )
