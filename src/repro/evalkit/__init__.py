"""Evaluation kit: metrics, harness, reporting."""

from repro.evalkit.ascii_map import (
    DEFAULT_RAMP,
    render_deviation_map,
    render_road_values,
)
from repro.evalkit.breakdown import errors_by_road_class, worst_roads
from repro.evalkit.calibration import (
    CalibrationReport,
    ReliabilityBin,
    calibration_report,
)
from repro.evalkit.harness import (
    Evaluation,
    EvaluationResult,
    TwoStepMethod,
    intervals_for_day,
)
from repro.evalkit.metrics import (
    SpeedErrors,
    TrendMetrics,
    improvement_percent,
    speed_errors,
    trend_metrics,
)
from repro.evalkit.reporting import fmt, fmt_pct, fmt_speedup, format_table

__all__ = [
    "CalibrationReport",
    "DEFAULT_RAMP",
    "render_deviation_map",
    "render_road_values",
    "errors_by_road_class",
    "worst_roads",
    "Evaluation",
    "ReliabilityBin",
    "calibration_report",
    "EvaluationResult",
    "SpeedErrors",
    "TrendMetrics",
    "TwoStepMethod",
    "fmt",
    "fmt_pct",
    "fmt_speedup",
    "format_table",
    "improvement_percent",
    "intervals_for_day",
    "speed_errors",
    "trend_metrics",
]
