"""Error breakdowns by road attribute.

Aggregate MAE hides structure: a method that nails arterials but
butchers local streets has a different failure mode from one that is
uniformly mediocre. These helpers slice paired (estimate, truth) values
by road class — the axis the hierarchy and profiles are organised
around — for reporting and for the class-level regression tests.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.errors import DataError
from repro.evalkit.metrics import SpeedErrors, speed_errors
from repro.roadnet.network import RoadNetwork


def errors_by_road_class(
    network: RoadNetwork,
    estimates: Mapping[int, float],
    truths: Mapping[int, float],
    exclude: set[int] | None = None,
) -> dict[str, SpeedErrors]:
    """Per-road-class error metrics over paired estimate/truth maps.

    Roads present in ``estimates`` but missing from ``truths`` (or vice
    versa) are an error — partial scoring silently biases comparisons.
    ``exclude`` (typically the seed set) is removed before pairing.
    """
    exclude = exclude or set()
    scored = [r for r in estimates if r not in exclude]
    missing = [r for r in scored if r not in truths]
    if missing:
        raise DataError(f"no truth for roads {sorted(missing)[:3]}")

    by_class: dict[str, tuple[list[float], list[float]]] = {}
    for road in scored:
        road_class = network.segment(road).road_class
        est_list, tru_list = by_class.setdefault(road_class, ([], []))
        est_list.append(float(estimates[road]))
        tru_list.append(float(truths[road]))
    if not by_class:
        raise DataError("no roads to score after exclusions")
    return {
        road_class: speed_errors(est_list, tru_list)
        for road_class, (est_list, tru_list) in sorted(by_class.items())
    }


def worst_roads(
    estimates: Mapping[int, float],
    truths: Mapping[int, float],
    limit: int = 10,
    exclude: set[int] | None = None,
) -> list[tuple[int, float]]:
    """The ``limit`` roads with the largest absolute error, descending.

    The triage view: where should an operator add seeds or suspect a
    data problem?
    """
    if limit < 1:
        raise DataError("limit must be >= 1")
    exclude = exclude or set()
    pairs = []
    for road, estimate in estimates.items():
        if road in exclude:
            continue
        truth = truths.get(road)
        if truth is None:
            raise DataError(f"no truth for road {road}")
        pairs.append((road, abs(float(estimate) - float(truth))))
    pairs.sort(key=lambda p: (-p[1], p[0]))
    return pairs[:limit]
