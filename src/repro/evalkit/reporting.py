"""Plain-text result tables, the output format of every benchmark.

The benchmarks print the same kind of rows the paper's tables and
figures report; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import DataError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """An aligned monospace table.

    Cells are stringified with ``str``; floats should be pre-formatted
    by the caller so each experiment controls its own precision.
    """
    if not headers:
        raise DataError("table needs headers")
    str_rows = [[str(cell) for cell in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise DataError(
                f"row {i} has {len(row)} cells for {len(headers)} headers"
            )
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in str_rows)) if str_rows else len(headers[c])
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def fmt(value: float, digits: int = 2) -> str:
    """Fixed-point float formatting for table cells."""
    return f"{value:.{digits}f}"


def fmt_pct(value: float, digits: int = 1) -> str:
    """Percentage formatting (input already in percent)."""
    return f"{value:.{digits}f}%"


def fmt_speedup(factor: float) -> str:
    """Speed-up factor formatting, e.g. '113.2x'."""
    return f"{factor:.1f}x"
