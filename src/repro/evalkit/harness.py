"""The experiment harness: run any method over test intervals and score it.

Every benchmark drives this one code path, so methods are compared on
identical seeds, identical intervals and identical scoring. A "method"
is anything with ``estimate_interval(interval, seed_speeds) ->
dict[road, float]`` — all baselines natively, and the two-step estimator
through :class:`TwoStepMethod`, which also exposes its trend posteriors
for trend scoring.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.clock import get_clock
from repro.core.errors import DataError
from repro.core.field import SpeedField
from repro.core.types import Trend
from repro.evalkit.metrics import SpeedErrors, TrendMetrics, speed_errors, trend_metrics
from repro.obs import get_recorder
from repro.history.store import HistoricalSpeedStore
from repro.speed.estimator import TwoStepEstimator


class TwoStepMethod:
    """Adapter giving :class:`TwoStepEstimator` the baseline interface."""

    name = "two-step"

    def __init__(self, estimator: TwoStepEstimator, name: str = "two-step") -> None:
        self._estimator = estimator
        self.name = name
        self.last_trends: dict[int, Trend] = {}

    def estimate_interval(
        self, interval: int, seed_speeds: dict[int, float]
    ) -> dict[int, float]:
        estimates = self._estimator.estimate_interval(interval, seed_speeds)
        self.last_trends = {
            road: est.trend for road, est in estimates.items() if not est.is_seed
        }
        return {road: est.speed_kmh for road, est in estimates.items()}


@dataclass(frozen=True)
class EvaluationResult:
    """Scores of one method over one run of test intervals."""

    method: str
    speed: SpeedErrors
    trend: TrendMetrics | None
    wall_time_s: float
    num_intervals: int

    @property
    def mae(self) -> float:
        return self.speed.mae


@dataclass
class Evaluation:
    """One evaluation setting, reusable across methods.

    Scoring covers **non-seed roads only** (seeds are observed, not
    estimated) across every interval in ``intervals``. An optional crowd
    platform perturbs the seed observations; without one the methods see
    true seed speeds (the noiseless protocol most of the paper's
    experiments use).
    """

    truth: SpeedField
    store: HistoricalSpeedStore
    seeds: list[int]
    intervals: list[int]
    crowd_platform: object | None = None
    crowd_seed: int = 0
    scored_roads: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.seeds:
            raise DataError("evaluation needs a non-empty seed set")
        if not self.intervals:
            raise DataError("evaluation needs test intervals")
        truth_roads = set(self.truth.road_ids)
        for seed in self.seeds:
            if seed not in truth_roads:
                raise DataError(f"seed road {seed} not in the truth field")
        if not self.scored_roads:
            seed_set = set(self.seeds)
            self.scored_roads = [
                road for road in self.truth.road_ids if road not in seed_set
            ]

    def seed_speeds_at(self, interval: int) -> dict[int, float]:
        """What the method sees: true or crowd-perturbed seed speeds."""
        true_speeds = {
            road: self.truth.speed(road, interval) for road in self.seeds
        }
        if self.crowd_platform is None:
            return true_speeds
        return self.crowd_platform.collect_speeds(
            interval, true_speeds, seed=self.crowd_seed + interval
        )

    def run(self, method) -> EvaluationResult:
        """Evaluate one method over all intervals."""
        all_estimates: list[float] = []
        all_truths: list[float] = []
        predicted_trends: list[Trend] = []
        actual_trends: list[Trend] = []
        collects_trends = isinstance(method, TwoStepMethod)

        clock = get_clock()
        start = clock.monotonic()
        with get_recorder().span(
            "evalkit.run",
            method=method.name,
            intervals=len(self.intervals),
            seeds=len(self.seeds),
        ):
            for interval in self.intervals:
                seed_speeds = self.seed_speeds_at(interval)
                estimates = method.estimate_interval(interval, seed_speeds)
                for road in self.scored_roads:
                    estimate = estimates.get(road)
                    if estimate is None:
                        raise DataError(
                            f"{method.name} produced no estimate for road {road}"
                        )
                    true_speed = self.truth.speed(road, interval)
                    all_estimates.append(estimate)
                    all_truths.append(true_speed)
                    actual = self.store.trend_of(road, interval, true_speed)
                    actual_trends.append(actual)
                    if collects_trends:
                        predicted_trends.append(method.last_trends[road])
                    else:
                        predicted_trends.append(
                            self.store.trend_of(road, interval, estimate)
                        )
        elapsed = clock.monotonic() - start
        get_recorder().observe(
            "evalkit.run_seconds", elapsed, method=method.name
        )

        return EvaluationResult(
            method=method.name,
            speed=speed_errors(all_estimates, all_truths),
            trend=trend_metrics(predicted_trends, actual_trends),
            wall_time_s=elapsed,
            num_intervals=len(self.intervals),
        )

    def run_all(self, methods: list) -> list[EvaluationResult]:
        """Evaluate several methods under identical conditions."""
        return [self.run(method) for method in methods]


def intervals_for_day(
    truth: SpeedField, grid, day: int, stride: int = 1
) -> list[int]:
    """Every ``stride``-th interval of ``day`` present in the truth field."""
    wanted = [t for t in grid.day_range(day) if t in truth.intervals]
    if not wanted:
        raise DataError(f"day {day} not covered by the truth field")
    return wanted[::stride]
