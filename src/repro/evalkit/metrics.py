"""Accuracy metrics for speed estimates and trend predictions."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import DataError
from repro.core.types import Trend


@dataclass(frozen=True, slots=True)
class SpeedErrors:
    """Aggregate error metrics over a set of (estimate, truth) pairs."""

    mae: float
    rmse: float
    mape: float
    count: int

    def __str__(self) -> str:
        return (
            f"MAE {self.mae:.2f} km/h, RMSE {self.rmse:.2f} km/h, "
            f"MAPE {self.mape * 100:.1f}% (n={self.count})"
        )


def speed_errors(estimates: list[float], truths: list[float]) -> SpeedErrors:
    """MAE / RMSE / MAPE of paired estimates against truth.

    MAPE guards against near-zero truths by flooring the denominator at
    1 km/h, the standard practice for traffic speeds.
    """
    if len(estimates) != len(truths):
        raise DataError(
            f"{len(estimates)} estimates vs {len(truths)} truths"
        )
    if not estimates:
        raise DataError("cannot score zero pairs")
    est = np.asarray(estimates, dtype=np.float64)
    tru = np.asarray(truths, dtype=np.float64)
    errors = est - tru
    return SpeedErrors(
        mae=float(np.abs(errors).mean()),
        rmse=float(np.sqrt((errors * errors).mean())),
        mape=float((np.abs(errors) / np.maximum(np.abs(tru), 1.0)).mean()),
        count=len(estimates),
    )


@dataclass(frozen=True, slots=True)
class TrendMetrics:
    """Trend-classification quality (FALL = congestion = positive class)."""

    accuracy: float
    fall_precision: float
    fall_recall: float
    fall_f1: float
    count: int

    def __str__(self) -> str:
        return (
            f"trend acc {self.accuracy:.3f}, FALL P/R/F1 "
            f"{self.fall_precision:.3f}/{self.fall_recall:.3f}/"
            f"{self.fall_f1:.3f} (n={self.count})"
        )


def trend_metrics(predicted: list[Trend], actual: list[Trend]) -> TrendMetrics:
    """Accuracy plus precision/recall/F1 for detecting FALL trends.

    FALL (slower than usual) is the operationally interesting class —
    missing congestion is worse than a false alarm — so it is scored as
    the positive class.
    """
    if len(predicted) != len(actual):
        raise DataError(f"{len(predicted)} predictions vs {len(actual)} actuals")
    if not predicted:
        raise DataError("cannot score zero trend pairs")
    pred = np.array([int(t) for t in predicted])
    act = np.array([int(t) for t in actual])
    accuracy = float((pred == act).mean())
    tp = int(((pred == -1) & (act == -1)).sum())
    fp = int(((pred == -1) & (act == 1)).sum())
    fn = int(((pred == 1) & (act == -1)).sum())
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return TrendMetrics(
        accuracy=accuracy,
        fall_precision=precision,
        fall_recall=recall,
        fall_f1=f1,
        count=len(predicted),
    )


def improvement_percent(method_error: float, baseline_error: float) -> float:
    """Relative improvement of ``method`` over ``baseline``, in percent.

    Positive means the method is better (lower error).
    """
    if baseline_error <= 0:
        raise DataError("baseline error must be positive")
    return 100.0 * (1.0 - method_error / baseline_error)
