"""Temporal trend filtering and rotating seed schedules.

Consecutive intervals are strongly autocorrelated, which real-time
systems can exploit in two coupled ways:

* :class:`TemporalTrendFilter` — a forward (HMM-style) filter over the
  trend posterior: each interval's node priors are the *previous
  posterior relaxed toward the bucket prior* by a two-state Markov
  transition with ``stay_probability``, so evidence persists across
  rounds instead of being rediscovered.
* :class:`RotatingSeedSchedule` — splits the seed budget into groups
  queried round-robin. Alone this loses accuracy (each round sees fewer
  seeds); combined with the filter, the memory integrates the rotating
  groups' evidence, recovering most of the full-budget accuracy at a
  fraction of the per-round crowdsourcing cost (experiment X5).

Note that memory only pays when rounds carry *different* information
(rotating groups, moving probes). Feeding the filter the same seed set
every round merely double-counts stale evidence — measured, not
assumed: see X5's "fixed seeds + memory" row.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InferenceError
from repro.core.types import Trend
from repro.trend.model import TrendInstance, TrendModel, TrendPosterior


class TemporalTrendFilter:
    """Forward filtering of trend posteriors across intervals."""

    def __init__(
        self,
        model: TrendModel,
        inference,
        stay_probability: float = 0.75,
        prior_clip: float = 0.02,
    ) -> None:
        if not 0.0 < stay_probability < 1.0:
            raise InferenceError("stay_probability must be in (0, 1)")
        if not 0.0 < prior_clip < 0.5:
            raise InferenceError("prior_clip must be in (0, 0.5)")
        self._model = model
        self._inference = inference
        self._stay = stay_probability
        self._clip = prior_clip
        self._last_interval: int | None = None
        self._last_posterior: np.ndarray | None = None

    @property
    def stay_probability(self) -> float:
        return self._stay

    def reset(self) -> None:
        """Forget all memory (e.g. at a day boundary)."""
        self._last_interval = None
        self._last_posterior = None

    def infer_at(
        self, interval: int, seed_trends: dict[int, Trend]
    ) -> TrendPosterior:
        """Filtered posterior for ``interval`` given this round's seeds.

        Intervals must be queried in increasing order; gaps are handled
        by applying the relaxation step once per skipped interval, so a
        long gap decays the memory back to the bucket prior.
        """
        if self._last_interval is not None and interval <= self._last_interval:
            raise InferenceError(
                f"intervals must increase: got {interval} after "
                f"{self._last_interval}"
            )
        instance = self._model.instance(interval, seed_trends)
        if self._last_posterior is not None:
            gap = interval - self._last_interval
            # Two-state Markov predict, iterated over the gap: the
            # memory relaxes geometrically toward the bucket prior.
            effective_stay = self._stay ** gap
            predicted = (
                effective_stay * self._last_posterior
                + (1.0 - effective_stay) * instance.prior_rise
            )
            predicted = np.clip(predicted, self._clip, 1.0 - self._clip)
            instance = TrendInstance(
                road_ids=instance.road_ids,
                prior_rise=predicted,
                edges=instance.edges,
                evidence=instance.evidence,
                graph=instance.graph,
            )
        posterior = self._inference.infer(instance)
        self._last_interval = interval
        self._last_posterior = posterior.as_array()
        return posterior


class RotatingSeedSchedule:
    """Round-robin split of a seed set into query groups.

    Groups are interleaved (``seeds[i::num_groups]``) so every group
    inherits the spatial spread of the full greedy selection rather
    than a contiguous chunk of it.
    """

    def __init__(self, seeds: list[int], num_groups: int = 2) -> None:
        if not seeds:
            raise InferenceError("schedule needs a non-empty seed set")
        if num_groups < 1 or num_groups > len(seeds):
            raise InferenceError(
                f"num_groups must be in [1, {len(seeds)}], got {num_groups}"
            )
        self._seeds = tuple(seeds)
        self._groups = tuple(
            tuple(seeds[i::num_groups]) for i in range(num_groups)
        )

    @property
    def num_groups(self) -> int:
        return len(self._groups)

    @property
    def all_seeds(self) -> tuple[int, ...]:
        return self._seeds

    def group(self, round_index: int) -> tuple[int, ...]:
        """The seeds to query on the ``round_index``-th round."""
        if round_index < 0:
            raise InferenceError("round_index must be >= 0")
        return self._groups[round_index % len(self._groups)]

    def per_round_cost_fraction(self) -> float:
        """Average per-round queries relative to the full budget."""
        total = sum(len(g) for g in self._groups)
        return total / (len(self._groups) * len(self._seeds))
