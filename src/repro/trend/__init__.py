"""Step-1 trend inference: the graphical model and its inference algorithms."""

from repro.trend.bp import LoopyBeliefPropagation
from repro.trend.exact import (
    MAX_FREE_VARIABLES,
    ExactEnumerationInference,
    exact_map_assignment,
)
from repro.trend.gibbs import GibbsSamplingInference
from repro.trend.mapcut import GraphCutMapInference
from repro.trend.maxflow import MaxFlowNetwork
from repro.trend.model import TrendInstance, TrendModel, TrendPosterior
from repro.trend.temporal import RotatingSeedSchedule, TemporalTrendFilter
from repro.trend.propagation import (
    TrendPropagationInference,
    edge_fidelity,
    instance_graph,
    propagate_fidelity,
)

__all__ = [
    "ExactEnumerationInference",
    "GibbsSamplingInference",
    "GraphCutMapInference",
    "MaxFlowNetwork",
    "LoopyBeliefPropagation",
    "MAX_FREE_VARIABLES",
    "TrendInstance",
    "TrendModel",
    "TrendPosterior",
    "TrendPropagationInference",
    "RotatingSeedSchedule",
    "TemporalTrendFilter",
    "edge_fidelity",
    "exact_map_assignment",
    "instance_graph",
    "propagate_fidelity",
]
