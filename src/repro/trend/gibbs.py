"""Gibbs-sampling inference for the trend MRF.

A straightforward single-site Gibbs sampler. It serves two roles: an
independent asymptotically-exact check on loopy BP and the propagation
method (used in tests and experiment F2), and a representative of the
"accurate but slow" baseline family for the efficiency comparison (F3).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.errors import InferenceError
from repro.obs import get_recorder
from repro.trend.model import TrendInstance, TrendPosterior


def _sigmoid(log_odds: float) -> float:
    """Numerically stable logistic function.

    The naive ``1 / (1 + exp(-x))`` overflows ``exp`` for strongly
    negative ``x`` (near-zero edge potentials on long chains push the
    conditional log-odds past ±709). Branching on the sign keeps the
    exponent non-positive, so the result underflows gracefully to 0.0
    or 1.0 instead of raising overflow warnings.
    """
    if log_odds >= 0.0:
        return 1.0 / (1.0 + math.exp(-log_odds))
    e = math.exp(log_odds)
    return e / (1.0 + e)


class GibbsSamplingInference:
    """Single-site Gibbs sampler with burn-in, deterministic per seed."""

    def __init__(
        self,
        num_samples: int = 2000,
        burn_in: int = 500,
        seed: int = 0,
    ) -> None:
        if num_samples < 1:
            raise InferenceError("num_samples must be >= 1")
        if burn_in < 0:
            raise InferenceError("burn_in must be >= 0")
        self._num_samples = num_samples
        self._burn_in = burn_in
        self._seed = seed

    def infer(self, instance: TrendInstance) -> TrendPosterior:
        with get_recorder().span(
            "trend.gibbs", roads=instance.num_roads
        ) as span:
            posterior = self._infer(instance, span)
            return posterior

    def _infer(self, instance: TrendInstance, span) -> TrendPosterior:
        rng = np.random.default_rng(self._seed)
        n = instance.num_roads
        evidence = instance.evidence_indices()
        free = np.array(
            [i for i in range(n) if i not in evidence], dtype=np.int64
        )

        adjacency = instance.adjacency()
        # Per-node neighbour indices and signed log-potential differences:
        # a neighbour in state s contributes s * log(p/(1-p)) to the
        # rise-vs-fall log-odds of this node.
        neighbour_idx = [
            np.array([j for j, _ in adjacency[i]], dtype=np.int64) for i in range(n)
        ]
        log_odds_edge = [
            np.array([np.log(p / (1.0 - p)) for _, p in adjacency[i]])
            for i in range(n)
        ]
        prior_log_odds = np.log(instance.prior_rise / (1.0 - instance.prior_rise))

        state = np.where(rng.random(n) < instance.prior_rise, 1, -1).astype(np.int8)
        for i, trend in evidence.items():
            state[i] = int(trend)

        rise_counts = np.zeros(n, dtype=np.int64)
        total_sweeps = self._burn_in + self._num_samples
        uniforms = rng.random((total_sweeps, len(free)))
        for sweep in range(total_sweeps):
            for k, i in enumerate(free):
                log_odds = prior_log_odds[i] + float(
                    (state[neighbour_idx[i]] * log_odds_edge[i]).sum()
                )
                p_rise = _sigmoid(log_odds)
                state[i] = 1 if uniforms[sweep, k] < p_rise else -1
            if sweep >= self._burn_in:
                rise_counts[state == 1] += 1

        p_rise = rise_counts / self._num_samples
        for i, trend in evidence.items():
            p_rise[i] = 1.0 if int(trend) == 1 else 0.0
        site_updates = total_sweeps * len(free)
        span.set(sweeps=total_sweeps, free=len(free))
        recorder = get_recorder()
        recorder.count("trend.gibbs.sweeps", total_sweeps)
        recorder.count("trend.gibbs.site_updates", site_updates)
        return TrendPosterior(instance.road_ids, p_rise)
