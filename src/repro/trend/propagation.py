"""Fast trend inference by seed-evidence propagation.

This is the reproduction of the paper's *efficient* inference algorithm —
the one behind the "2 orders of magnitude in efficiency" claim. Instead
of iterating message passing over the whole graph, evidence flows
outward from each seed along **best-fidelity paths**:

* An edge with trend-agreement ``p`` behaves like a binary symmetric
  channel: it transmits a trend correctly with probability ``p``, so its
  *fidelity* is ``q = 2p - 1 ∈ (0, 1)`` (the correlation of the two
  endpoint trends).
* Fidelity composes multiplicatively along a path (channel chaining),
  so the influence of seed ``s`` on road ``r`` is the maximum over paths
  of the product of edge fidelities — computed by the shared
  :mod:`repro.history.fidelity` kernel, pruned once fidelity drops
  below ``min_fidelity``.
* Each seed's evidence then contributes an independent log-likelihood-
  ratio vote of magnitude ``log((1+q)/(1-q))``, signed by the seed's
  observed trend, added to the road's prior log-odds.

Because propagation is pruned at a fidelity floor, per-seed work is a
small constant neighbourhood, making inference near-linear in the number
of seeds and independent of total network size — which is exactly the
scaling experiment F3 demonstrates.

The hot path is fully vectorized: per-seed vote rows are served as
dense ``log((1+q)/(1-q))`` arrays by the shared
:class:`~repro.history.fidelity.FidelityCacheService` (one cache across
inference, seed selection and Step-2 regression), and one interval's
inference collapses to ``log_odds += signs @ vote_rows``. The original
dict/heap implementation stays available as the scalar reference
(``use_kernel=False``) for differential testing — experiment F3 asserts
the kernel path matches it to 1e-9 while being several times faster.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.errors import InferenceError
from repro.history.correlation import CorrelationEdge, CorrelationGraph
from repro.history.fidelity import (
    FidelityCacheService,
    edge_fidelity,
    get_fidelity_service,
    propagate_fidelity_scalar,
)
from repro.obs import get_recorder
from repro.trend.model import TrendInstance, TrendPosterior

__all__ = [
    "TrendPropagationInference",
    "edge_fidelity",
    "instance_graph",
    "propagate_fidelity",
]


def propagate_fidelity(
    graph: CorrelationGraph,
    source: int,
    min_fidelity: float = 0.05,
    max_hops: int | None = None,
) -> dict[int, float]:
    """Best-path fidelity from ``source`` to every reachable road.

    The scalar reference implementation (dict/heap) of the shared
    :mod:`repro.history.fidelity` kernel: expansion stops once the path
    fidelity falls below ``min_fidelity``, and ``max_hops`` bounds the
    *candidate path's own* hop count — a road reachable only through a
    short weak path is kept even when a longer, stronger path found it
    first. The source itself has fidelity 1. Returns only roads whose
    fidelity is at least the floor.
    """
    return propagate_fidelity_scalar(graph, source, min_fidelity, max_hops)


def instance_graph(instance: TrendInstance) -> CorrelationGraph:
    """The correlation graph an instance was built from.

    Instances produced by :class:`~repro.trend.model.TrendModel` carry a
    reference to their source graph; hand-built instances (tests) get a
    graph reconstructed from their edge list.
    """
    if instance.graph is not None:
        return instance.graph
    roads = list(instance.road_ids)
    edges = [CorrelationEdge(roads[i], roads[j], p) for i, j, p in instance.edges]
    return CorrelationGraph(roads, edges)


class TrendPropagationInference:
    """The fast Step-1 inference: independent seed votes in log-odds space.

    ``fidelity_service`` is the shared cross-stage influence cache
    (defaults to the process-wide service); ``use_kernel=False`` selects
    the scalar per-seed vote loop over the vectorized accumulation, for
    differential testing. Evidence on roads absent from the instance's
    index or the correlation graph is skipped consistently in both the
    vote and the clamp stage.
    """

    def __init__(
        self,
        min_fidelity: float = 0.05,
        max_hops: int | None = None,
        prior_weight: float = 1.0,
        fidelity_service: FidelityCacheService | None = None,
        use_kernel: bool = True,
    ) -> None:
        if prior_weight < 0.0:
            raise InferenceError("prior_weight must be non-negative")
        self._min_fidelity = min_fidelity
        self._max_hops = max_hops
        self._prior_weight = prior_weight
        self._service = fidelity_service or get_fidelity_service()
        self._use_kernel = use_kernel
        self._vote_accumulator = None

    @property
    def fidelity_service(self) -> FidelityCacheService:
        return self._service

    def set_vote_accumulator(self, accumulator) -> None:
        """Install a district-parallel vote backend (or None to clear).

        ``accumulator(graph, seeds, signs)`` must return the CSR-ordered
        vote vector and its nonzero count — the contract of
        :meth:`repro.seeds.parallel.DistrictPool.vote_accumulator`. Used
        only on the kernel path and only when the instance's road order
        matches the CSR order (the metropolitan pipeline case); partial
        sums may differ from the serial matmul by float re-association
        (≤ 1e-9), which the differential tests pin.
        """
        self._vote_accumulator = accumulator

    def infer(self, instance: TrendInstance) -> TrendPosterior:
        """Posterior P(RISE) per road from prior + seed votes."""
        recorder = get_recorder()
        with recorder.span(
            "trend.propagation",
            roads=instance.num_roads,
            seeds=len(instance.evidence),
        ) as span:
            prior = np.clip(instance.prior_rise, 1e-6, 1.0 - 1e-6)
            log_odds = self._prior_weight * np.log(prior / (1.0 - prior))

            graph = instance_graph(instance)
            csr = self._service.csr(graph)
            if csr.road_ids == instance.road_ids:
                index = csr.index
            else:
                index = instance.index
            misses_before = self._service.stats().misses
            if self._use_kernel:
                votes = self._accumulate_kernel(graph, instance, index, log_odds)
            else:
                votes = self._accumulate_scalar(graph, instance, index, log_odds)
            cache_misses = self._service.stats().misses - misses_before

            p_rise = 1.0 / (1.0 + np.exp(-np.clip(log_odds, -500, 500)))
            for road, trend in instance.evidence.items():
                i = index.get(road)
                if i is None:
                    continue
                p_rise[i] = 1.0 if trend.value == 1 else 0.0
            span.set(votes=votes, cache_misses=cache_misses)
            recorder.count("trend.propagation.votes", votes)
            hits = len(instance.evidence) - cache_misses
            if hits > 0:
                recorder.count("trend.propagation.cache", hits, hit="true")
            if cache_misses:
                recorder.count(
                    "trend.propagation.cache", cache_misses, hit="false"
                )
            return TrendPosterior(instance.road_ids, p_rise)

    def _vote_seeds(
        self,
        graph: CorrelationGraph,
        instance: TrendInstance,
        index: dict[int, int],
    ) -> list[int]:
        """Evidence roads that can vote, in canonical (sorted) order.

        Roads missing from the instance index or from the correlation
        graph are skipped — the same unknown-evidence policy the clamp
        stage applies.
        """
        return [
            road
            for road in sorted(instance.evidence)
            if road in index and graph.has_road(road)
        ]

    def _accumulate_kernel(
        self,
        graph: CorrelationGraph,
        instance: TrendInstance,
        index: dict[int, int],
        log_odds: np.ndarray,
    ) -> int:
        """One matmul: ``log_odds += signs @ log((1+Q)/(1-Q))`` rows."""
        seeds = self._vote_seeds(graph, instance, index)
        if not seeds:
            return 0
        signs = np.fromiter(
            (float(int(instance.evidence[s])) for s in seeds),
            dtype=np.float64,
            count=len(seeds),
        )
        # The district pool computes rows with an unbounded hop budget,
        # so the parallel backend only serves the max_hops=None case.
        if self._vote_accumulator is not None and self._max_hops is None:
            votes_csr, nonzeros = self._vote_accumulator(graph, seeds, signs)
            csr = self._service.csr(graph)
            if csr.index is index:
                log_odds += votes_csr
            else:
                gather = np.fromiter(
                    (index.get(road, -1) for road in csr.road_ids),
                    dtype=np.int64,
                    count=csr.num_roads,
                )
                valid = gather >= 0
                log_odds[gather[valid]] += votes_csr[valid]
            return int(nonzeros)
        matrix = self._service.rows(
            graph,
            seeds,
            min_fidelity=self._min_fidelity,
            max_hops=self._max_hops,
            transform="logodds",
        )
        votes_csr = signs @ matrix
        csr = self._service.csr(graph)
        if csr.index is index:
            log_odds += votes_csr
        else:
            gather = np.fromiter(
                (index.get(road, -1) for road in csr.road_ids),
                dtype=np.int64,
                count=csr.num_roads,
            )
            valid = gather >= 0
            log_odds[gather[valid]] += votes_csr[valid]
        return int(np.count_nonzero(matrix))

    def _accumulate_scalar(
        self,
        graph: CorrelationGraph,
        instance: TrendInstance,
        index: dict[int, int],
        log_odds: np.ndarray,
    ) -> int:
        """The scalar reference: one dict walk per seed vote."""
        votes = 0
        for seed_road in self._vote_seeds(graph, instance, index):
            trend = instance.evidence[seed_road]
            fidelities = self._service.fidelity_map(
                graph,
                seed_road,
                min_fidelity=self._min_fidelity,
                max_hops=self._max_hops,
            )
            # Telemetry only; counted outside the vote loop so the
            # hot path carries no per-road bookkeeping.
            votes += len(fidelities) - 1
            sign = float(int(trend))
            for road, q in fidelities.items():
                if road == seed_road:
                    continue
                i = index.get(road)
                if i is None:
                    continue
                q = min(q, 1.0 - 1e-9)
                log_odds[i] += sign * math.log((1.0 + q) / (1.0 - q))
        return votes
