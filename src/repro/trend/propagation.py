"""Fast trend inference by seed-evidence propagation.

This is the reproduction of the paper's *efficient* inference algorithm —
the one behind the "2 orders of magnitude in efficiency" claim. Instead
of iterating message passing over the whole graph, evidence flows
outward from each seed along **best-fidelity paths**:

* An edge with trend-agreement ``p`` behaves like a binary symmetric
  channel: it transmits a trend correctly with probability ``p``, so its
  *fidelity* is ``q = 2p - 1 ∈ (0, 1)`` (the correlation of the two
  endpoint trends).
* Fidelity composes multiplicatively along a path (channel chaining),
  so the influence of seed ``s`` on road ``r`` is the maximum over paths
  of the product of edge fidelities — computed with a truncated Dijkstra
  from each seed, pruned once fidelity drops below ``min_fidelity``.
* Each seed's evidence then contributes an independent log-likelihood-
  ratio vote of magnitude ``log((1+q)/(1-q))``, signed by the seed's
  observed trend, added to the road's prior log-odds.

Because the Dijkstra is pruned at a fidelity floor, per-seed work is a
small constant neighbourhood, making inference near-linear in the number
of seeds and independent of total network size — which is exactly the
scaling experiment F3 demonstrates.

The best-path fidelity computation is shared with the seed-selection
objective (:mod:`repro.seeds.objective`), which uses the same influence
notion.
"""

from __future__ import annotations

import heapq
import math
import weakref

import numpy as np

from repro.core.errors import InferenceError
from repro.history.correlation import CorrelationEdge, CorrelationGraph
from repro.obs import get_recorder
from repro.trend.model import TrendInstance, TrendPosterior


def edge_fidelity(agreement: float) -> float:
    """Channel fidelity of a correlation edge: ``2p - 1``.

    Agreement at or below 0.5 carries no information and maps to 0.
    """
    return max(0.0, 2.0 * agreement - 1.0)


def propagate_fidelity(
    graph: CorrelationGraph,
    source: int,
    min_fidelity: float = 0.05,
    max_hops: int | None = None,
) -> dict[int, float]:
    """Best-path fidelity from ``source`` to every reachable road.

    A pruned max-product Dijkstra: expansion stops once the path fidelity
    falls below ``min_fidelity`` (and optionally beyond ``max_hops``).
    The source itself has fidelity 1. Returns only roads whose fidelity
    is at least the floor.
    """
    if not graph.has_road(source):
        raise InferenceError(f"source road {source} not in correlation graph")
    if not 0.0 < min_fidelity < 1.0:
        raise InferenceError(f"min_fidelity {min_fidelity} must be in (0, 1)")

    best: dict[int, float] = {source: 1.0}
    hops: dict[int, int] = {source: 0}
    # Max-heap via negated fidelity.
    heap: list[tuple[float, int]] = [(-1.0, source)]
    while heap:
        neg_fid, road = heapq.heappop(heap)
        fidelity = -neg_fid
        if fidelity < best.get(road, 0.0):
            continue
        if max_hops is not None and hops[road] >= max_hops:
            continue
        for edge in graph.neighbours(road):
            other = edge.other(road)
            candidate = fidelity * edge_fidelity(edge.agreement)
            if candidate < min_fidelity:
                continue
            if candidate > best.get(other, 0.0):
                best[other] = candidate
                hops[other] = hops[road] + 1
                heapq.heappush(heap, (-candidate, other))
    return best


def instance_graph(instance: TrendInstance) -> CorrelationGraph:
    """The correlation graph an instance was built from.

    Instances produced by :class:`~repro.trend.model.TrendModel` carry a
    reference to their source graph; hand-built instances (tests) get a
    graph reconstructed from their edge list.
    """
    if instance.graph is not None:
        return instance.graph
    roads = list(instance.road_ids)
    edges = [CorrelationEdge(roads[i], roads[j], p) for i, j, p in instance.edges]
    return CorrelationGraph(roads, edges)


class TrendPropagationInference:
    """The fast Step-1 inference: independent seed votes in log-odds space."""

    def __init__(
        self,
        min_fidelity: float = 0.05,
        max_hops: int | None = None,
        prior_weight: float = 1.0,
    ) -> None:
        if prior_weight < 0.0:
            raise InferenceError("prior_weight must be non-negative")
        self._min_fidelity = min_fidelity
        self._max_hops = max_hops
        self._prior_weight = prior_weight
        # Per-graph fidelity maps, reusable across intervals because they
        # are evidence-independent. Weak keys let graphs be collected.
        self._cache: "weakref.WeakKeyDictionary[CorrelationGraph, dict[int, dict[int, float]]]" = (
            weakref.WeakKeyDictionary()
        )

    def infer(self, instance: TrendInstance) -> TrendPosterior:
        """Posterior P(RISE) per road from prior + seed votes."""
        with get_recorder().span(
            "trend.propagation",
            roads=instance.num_roads,
            seeds=len(instance.evidence),
        ) as span:
            index = instance.index
            prior = np.clip(instance.prior_rise, 1e-6, 1.0 - 1e-6)
            log_odds = self._prior_weight * np.log(prior / (1.0 - prior))

            graph = instance_graph(instance)
            votes = 0
            cache_misses = 0
            # Canonical seed order: float summation must not depend on the
            # incidental dict order of the evidence mapping.
            for seed_road in sorted(instance.evidence):
                trend = instance.evidence[seed_road]
                fidelities, was_cached = self._fidelities(graph, seed_road)
                cache_misses += not was_cached
                # Telemetry only; counted outside the vote loop so the
                # hot path carries no per-road bookkeeping.
                votes += len(fidelities) - 1
                sign = float(int(trend))
                for road, q in fidelities.items():
                    if road == seed_road:
                        continue
                    i = index.get(road)
                    if i is None:
                        continue
                    q = min(q, 1.0 - 1e-9)
                    log_odds[i] += sign * math.log((1.0 + q) / (1.0 - q))

            p_rise = 1.0 / (1.0 + np.exp(-np.clip(log_odds, -500, 500)))
            for road, trend in instance.evidence.items():
                p_rise[index[road]] = 1.0 if trend.value == 1 else 0.0
            span.set(votes=votes, cache_misses=cache_misses)
            recorder = get_recorder()
            recorder.count("trend.propagation.votes", votes)
            hits = len(instance.evidence) - cache_misses
            if hits:
                recorder.count("trend.propagation.cache", hits, hit="true")
            if cache_misses:
                recorder.count(
                    "trend.propagation.cache", cache_misses, hit="false"
                )
            return TrendPosterior(instance.road_ids, p_rise)

    def _fidelities(
        self, graph: CorrelationGraph, seed_road: int
    ) -> tuple[dict[int, float], bool]:
        """The seed's fidelity map plus whether it came from the cache."""
        per_graph = self._cache.get(graph)
        if per_graph is None:
            per_graph = {}
            self._cache[graph] = per_graph
        cached = per_graph.get(seed_road)
        if cached is not None:
            return cached, True
        computed = propagate_fidelity(
            graph, seed_road, self._min_fidelity, self._max_hops
        )
        per_graph[seed_road] = computed
        return computed, False
