"""The Step-1 graphical model over road trends.

A pairwise Markov random field on the correlation graph:

* one binary variable per road, ``t_r ∈ {RISE, FALL}`` — the road's
  current speed relative to its historical bucket mean;
* node potential ``φ_r(RISE) = prior`` from the road's historical rise
  frequency in the current time bucket;
* edge potential ``ψ_uv(t_u, t_v) = p(u,v)`` when the trends agree and
  ``1 - p(u,v)`` when they disagree, where ``p`` is the mined
  trend-agreement probability;
* crowdsourced seed roads are *clamped* to their observed trend.

A :class:`TrendModel` is the reusable, interval-independent part
(structure + potentials); calling :meth:`TrendModel.instance` binds it to
one interval's bucket priors and seed evidence, producing the
:class:`TrendInstance` consumed by every inference algorithm in this
package. Inference results are returned as :class:`TrendPosterior`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import InferenceError
from repro.core.types import Trend
from repro.history.correlation import CorrelationGraph
from repro.history.store import HistoricalSpeedStore


@dataclass(frozen=True)
class TrendInstance:
    """One interval's MRF: priors, edges and clamped evidence.

    ``road_ids`` fixes the variable order; ``prior_rise[i]`` is
    P(t_i = RISE) before evidence; ``edges`` holds ``(i, j, agreement)``
    index triples; ``evidence`` maps road id to its observed trend.
    """

    road_ids: tuple[int, ...]
    prior_rise: np.ndarray
    edges: tuple[tuple[int, int, float], ...]
    evidence: dict[int, Trend]
    #: The correlation graph the edges came from, when available; lets
    #: propagation inference reuse cached per-seed fidelity maps.
    graph: "CorrelationGraph | None" = None
    #: Trusted-construction flag: :class:`TrendModel` builds its static
    #: parts (road order, clipped potentials, bucket priors) valid by
    #: construction and validates evidence itself, so its per-interval
    #: instances skip the O(roads + edges) re-validation — the serving
    #: path builds one instance per interval. Hand-built instances keep
    #: the default and are fully checked.
    validate: bool = True

    def __post_init__(self) -> None:
        if not self.validate:
            return
        if self.prior_rise.shape != (len(self.road_ids),):
            raise InferenceError(
                f"prior array shape {self.prior_rise.shape} does not match "
                f"{len(self.road_ids)} roads"
            )
        if np.any(self.prior_rise <= 0.0) or np.any(self.prior_rise >= 1.0):
            raise InferenceError("priors must lie strictly inside (0, 1)")
        index = self.index
        for road in self.evidence:
            if road not in index:
                raise InferenceError(f"evidence on unknown road {road}")
        for i, j, p in self.edges:
            if not 0 <= i < len(self.road_ids) or not 0 <= j < len(self.road_ids):
                raise InferenceError(f"edge ({i}, {j}) index out of range")
            if not 0.0 < p < 1.0:
                raise InferenceError(f"edge potential {p} must be in (0, 1)")

    @property
    def index(self) -> dict[int, int]:
        """road id -> variable index."""
        return {road: i for i, road in enumerate(self.road_ids)}

    @property
    def num_roads(self) -> int:
        return len(self.road_ids)

    def evidence_indices(self) -> dict[int, Trend]:
        """Variable index -> clamped trend."""
        index = self.index
        return {index[road]: trend for road, trend in self.evidence.items()}

    def adjacency(self) -> list[list[tuple[int, float]]]:
        """Per-variable neighbour list: (neighbour index, agreement)."""
        adj: list[list[tuple[int, float]]] = [[] for _ in self.road_ids]
        for i, j, p in self.edges:
            adj[i].append((j, p))
            adj[j].append((i, p))
        return adj


class TrendPosterior:
    """Per-road posterior P(trend = RISE) plus MAP trends."""

    def __init__(self, road_ids: tuple[int, ...], p_rise: np.ndarray) -> None:
        if p_rise.shape != (len(road_ids),):
            raise InferenceError("posterior shape does not match road count")
        if np.any(p_rise < 0.0) or np.any(p_rise > 1.0):
            raise InferenceError("posterior probabilities must be in [0, 1]")
        self._road_ids = road_ids
        self._p_rise = p_rise
        # Built lazily: the vectorized serving path consumes the whole
        # posterior as an array and never needs per-road lookups, so the
        # O(n) dict build would be pure per-interval overhead there.
        self._lazy_index: dict[int, int] | None = None

    @property
    def _index(self) -> dict[int, int]:
        if self._lazy_index is None:
            self._lazy_index = {road: i for i, road in enumerate(self._road_ids)}
        return self._lazy_index

    @property
    def road_ids(self) -> tuple[int, ...]:
        return self._road_ids

    def p_rise(self, road_id: int) -> float:
        try:
            return float(self._p_rise[self._index[road_id]])
        except KeyError:
            raise InferenceError(f"road {road_id} not in posterior") from None

    def trend(self, road_id: int) -> Trend:
        """MAP trend (ties break toward RISE, matching Trend.from_speeds)."""
        return Trend.RISE if self.p_rise(road_id) >= 0.5 else Trend.FALL

    def confidence(self, road_id: int) -> float:
        """max(p, 1-p): how certain the posterior is about this road."""
        p = self.p_rise(road_id)
        return max(p, 1.0 - p)

    def as_array(self) -> np.ndarray:
        return self._p_rise.copy()

    def as_dict(self) -> dict[int, float]:
        return {road: float(p) for road, p in zip(self._road_ids, self._p_rise)}


class TrendModel:
    """Binds a correlation graph and historical store into an MRF factory."""

    def __init__(
        self, graph: CorrelationGraph, store: HistoricalSpeedStore
    ) -> None:
        missing = set(graph.road_ids) - set(store.road_ids)
        if missing:
            raise InferenceError(
                f"correlation graph covers roads absent from history: "
                f"{sorted(missing)[:5]}"
            )
        self._graph = graph
        self._store = store
        self._road_ids = tuple(graph.road_ids)
        self._index = {road: i for i, road in enumerate(self._road_ids)}
        self._edges = tuple(
            (self._index[e.road_u], self._index[e.road_v], self._clip(e.agreement))
            for e in graph.edges()
        )
        # Priors depend only on the bucket, not on evidence, so they are
        # computed once per bucket and shared across intervals.
        self._prior_cache: dict[int, np.ndarray] = {}

    @staticmethod
    def _clip(p: float, eps: float = 0.02) -> float:
        """Keep potentials strictly inside (0, 1) for numerical safety."""
        return min(1.0 - eps, max(eps, p))

    def refresh_edges(self) -> None:
        """Re-read edge potentials from the bound graph.

        Incremental re-mining mutates the graph **in place** (see
        :meth:`~repro.history.correlation.CorrelationGraph.apply_delta`)
        while this model's edge tuple is a baked copy; deployments that
        ingest days must call this (the estimator's row-invalidation
        hook does) so BP/Gibbs instances see the new weights. The road
        set of a delta never changes, so the index stays valid.
        """
        self._edges = tuple(
            (self._index[e.road_u], self._index[e.road_v], self._clip(e.agreement))
            for e in self._graph.edges()
        )

    def _bucket_prior(self, bucket: int) -> np.ndarray:
        cached = self._prior_cache.get(bucket)
        if cached is None:
            cached = np.array(
                [self._store.rise_prior(road, bucket) for road in self._road_ids]
            )
            self._prior_cache[bucket] = cached
        return cached

    @property
    def graph(self) -> CorrelationGraph:
        return self._graph

    @property
    def store(self) -> HistoricalSpeedStore:
        return self._store

    @property
    def road_ids(self) -> tuple[int, ...]:
        return self._road_ids

    def instance(
        self, interval: int, seed_trends: dict[int, Trend]
    ) -> TrendInstance:
        """The MRF for ``interval`` with ``seed_trends`` clamped."""
        bucket = self._store.grid.bucket_of(interval)
        prior = self._bucket_prior(bucket)
        unknown = [road for road in seed_trends if road not in self._index]
        if unknown:
            raise InferenceError(f"seed trends on unknown roads {unknown[:5]}")
        return TrendInstance(
            road_ids=self._road_ids,
            prior_rise=prior,
            edges=self._edges,
            evidence=dict(seed_trends),
            graph=self._graph,
            validate=False,
        )

    def uniform_instance(
        self, interval: int, seed_trends: dict[int, Trend], agreement: float = 0.7
    ) -> TrendInstance:
        """An ablation instance with every edge potential set to ``agreement``.

        Used by experiment F7c to measure the value of *learned* edge
        potentials versus uniform smoothing.
        """
        bucket = self._store.grid.bucket_of(interval)
        prior = self._bucket_prior(bucket)
        edges = tuple((i, j, self._clip(agreement)) for i, j, _ in self._edges)
        return TrendInstance(
            road_ids=self._road_ids,
            prior_rise=prior,
            edges=edges,
            evidence=dict(seed_trends),
            validate=False,
        )
