"""Dinic's maximum-flow algorithm.

A compact, dependency-free max-flow used by the graph-cut MAP solver
(:mod:`repro.trend.mapcut`). Capacities are floats; the implementation
is the standard level-graph + blocking-flow Dinic, O(V²E) worst case
but far faster on the shallow, sparse cut graphs MRFs produce.
"""

from __future__ import annotations

from collections import deque

from repro.core.errors import InferenceError


class MaxFlowNetwork:
    """A directed flow network with residual bookkeeping."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 2:
            raise InferenceError("flow network needs at least source and sink")
        self._num_nodes = num_nodes
        # Edge arrays: to[e], cap[e]; reverse edge of e is e ^ 1.
        self._to: list[int] = []
        self._cap: list[float] = []
        self._adjacency: list[list[int]] = [[] for _ in range(num_nodes)]

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def add_edge(self, u: int, v: int, capacity: float, reverse_capacity: float = 0.0) -> None:
        """Add edge u->v with ``capacity`` (and optional reverse capacity).

        Symmetric pairwise MRF edges pass the same value both ways.
        """
        if capacity < 0 or reverse_capacity < 0:
            raise InferenceError("capacities must be non-negative")
        if not (0 <= u < self._num_nodes and 0 <= v < self._num_nodes):
            raise InferenceError(f"edge ({u}, {v}) out of range")
        if u == v:
            raise InferenceError("self-loops carry no flow")
        self._adjacency[u].append(len(self._to))
        self._to.append(v)
        self._cap.append(float(capacity))
        self._adjacency[v].append(len(self._to))
        self._to.append(u)
        self._cap.append(float(reverse_capacity))

    def max_flow(self, source: int, sink: int) -> float:
        """Compute the maximum s-t flow; mutates residual capacities."""
        if source == sink:
            raise InferenceError("source and sink must differ")
        flow = 0.0
        while True:
            level = self._bfs_levels(source, sink)
            if level[sink] < 0:
                return flow
            iterators = [0] * self._num_nodes
            while True:
                pushed = self._dfs_push(source, sink, float("inf"), level, iterators)
                if pushed <= 0:
                    break
                flow += pushed

    def min_cut_source_side(self, source: int) -> set[int]:
        """Nodes reachable from the source in the residual graph.

        Call after :meth:`max_flow`; the returned set is the source side
        of a minimum cut.
        """
        seen = {source}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for edge in self._adjacency[u]:
                if self._cap[edge] > 1e-12:
                    v = self._to[edge]
                    if v not in seen:
                        seen.add(v)
                        queue.append(v)
        return seen

    def _bfs_levels(self, source: int, sink: int) -> list[int]:
        level = [-1] * self._num_nodes
        level[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for edge in self._adjacency[u]:
                v = self._to[edge]
                if self._cap[edge] > 1e-12 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        del sink
        return level

    def _dfs_push(
        self,
        u: int,
        sink: int,
        limit: float,
        level: list[int],
        iterators: list[int],
    ) -> float:
        if u == sink:
            return limit
        adjacency = self._adjacency[u]
        while iterators[u] < len(adjacency):
            edge = adjacency[iterators[u]]
            v = self._to[edge]
            if self._cap[edge] > 1e-12 and level[v] == level[u] + 1:
                pushed = self._dfs_push(
                    v, sink, min(limit, self._cap[edge]), level, iterators
                )
                if pushed > 0:
                    self._cap[edge] -= pushed
                    self._cap[edge ^ 1] += pushed
                    return pushed
            iterators[u] += 1
        return 0.0
