"""Exact MAP trend assignment by graph cuts.

The trend MRF's pairwise potentials are *attractive* (agreement
probability ≥ ½ after mining), which makes its energy **submodular**:
the exact maximum-a-posteriori assignment is computable at any scale by
one s-t minimum cut [Greig–Porteous–Seheult 1989, Kolmogorov–Zabih
2004] — no enumeration cap, unlike :mod:`repro.trend.exact`.

Energy decomposition: with labels RISE/FALL, the symmetric pairwise
term ``ψ = p`` (agree) / ``1−p`` (disagree) reduces to a disagreement
penalty ``w = log(p / (1−p)) ≥ 0`` per edge, and the unaries are the
prior negative log-likelihoods. The cut graph is

* source S ≙ RISE, sink T ≙ FALL,
* ``cap(S→i) = −log(1−prior_i)`` (cost of labelling ``i`` FALL),
* ``cap(i→T) = −log(prior_i)`` (cost of labelling ``i`` RISE),
* undirected ``cap(i↔j) = w_ij`` (cost of separating them),
* clamped evidence gets an effectively infinite capacity to its side.

The min cut's source side is the exact MAP RISE set.

Use this to get a *global* hard labelling (e.g. for congestion-region
segmentation); the posterior-producing algorithms remain the right tool
when per-road probabilities are needed.
"""

from __future__ import annotations

import math

from repro.core.errors import InferenceError
from repro.core.types import Trend
from repro.trend.maxflow import MaxFlowNetwork
from repro.trend.model import TrendInstance


class GraphCutMapInference:
    """Exact MAP assignment for attractive (submodular) trend MRFs."""

    def map_assignment(self, instance: TrendInstance) -> dict[int, Trend]:
        """The exact MAP trend for every road.

        Raises :class:`InferenceError` if any edge potential is below
        0.5 (a repulsive edge makes the energy non-submodular and the
        cut construction invalid).
        """
        for _, _, p in instance.edges:
            if p < 0.5:
                raise InferenceError(
                    f"edge potential {p} < 0.5: energy is not submodular, "
                    "graph-cut MAP does not apply"
                )

        n = instance.num_roads
        source = n
        sink = n + 1
        network = MaxFlowNetwork(n + 2)

        # A capacity larger than any finite cut acts as infinity.
        huge = 1.0
        for prior in instance.prior_rise:
            huge += -math.log(max(prior, 1e-12)) - math.log(
                max(1.0 - prior, 1e-12)
            )
        for _, _, p in instance.edges:
            if p > 0.5:
                huge += math.log(p / (1.0 - p))

        evidence = instance.evidence_indices()
        for i in range(n):
            clamped = evidence.get(i)
            if clamped is Trend.RISE:
                network.add_edge(source, i, huge)
            elif clamped is Trend.FALL:
                network.add_edge(i, sink, huge)
            else:
                prior = float(instance.prior_rise[i])
                network.add_edge(source, i, -math.log(max(1.0 - prior, 1e-12)))
                network.add_edge(i, sink, -math.log(max(prior, 1e-12)))

        for i, j, p in instance.edges:
            if p > 0.5:
                weight = math.log(p / (1.0 - p))
                network.add_edge(i, j, weight, reverse_capacity=weight)
            # p == 0.5 carries no constraint and adds no edge.

        network.max_flow(source, sink)
        rise_side = network.min_cut_source_side(source)
        return {
            road: Trend.RISE if i in rise_side else Trend.FALL
            for i, road in enumerate(instance.road_ids)
        }
