"""Loopy belief propagation for the trend MRF.

Damped parallel sum-product message passing, fully vectorised over
directed edges. Exact on trees; on the dense loopy correlation graphs of
real road networks it both costs O(edges × iterations) per interval and
suffers the classic evidence double-counting of loopy BP — the fast
propagation method beats it on *both* axes in experiments F2/F3, which
reproduces the paper's finding that the efficient algorithm is also the
more accurate one.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InferenceError
from repro.obs import get_recorder
from repro.trend.model import TrendInstance, TrendPosterior

_LOG_FLOOR = 1e-12

#: Iteration-count buckets shared by the iterative trend solvers.
ITERATION_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0)


class LoopyBeliefPropagation:
    """Damped parallel sum-product on the pairwise binary MRF."""

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        damping: float = 0.3,
    ) -> None:
        if max_iterations < 1:
            raise InferenceError("max_iterations must be >= 1")
        if not 0.0 <= damping < 1.0:
            raise InferenceError(f"damping {damping} must be in [0, 1)")
        if tolerance <= 0.0:
            raise InferenceError("tolerance must be positive")
        self._max_iterations = max_iterations
        self._tolerance = tolerance
        self._damping = damping
        self.last_iterations: int = 0
        self.last_converged: bool = False

    def infer(self, instance: TrendInstance) -> TrendPosterior:
        """Approximate posterior P(RISE) for every road."""
        with get_recorder().span(
            "trend.bp", roads=instance.num_roads, edges=len(instance.edges)
        ) as span:
            posterior = self._infer(instance)
            span.set(
                iterations=self.last_iterations, converged=self.last_converged
            )
            return posterior

    def _infer(self, instance: TrendInstance) -> TrendPosterior:
        n = instance.num_roads
        evidence = instance.evidence_indices()

        # Local beliefs as P(RISE); evidence nodes are hard-clamped.
        local = instance.prior_rise.copy()
        for i, trend in evidence.items():
            local[i] = 1.0 - 1e-9 if int(trend) == 1 else 1e-9
        log_local_rise = np.log(np.maximum(local, _LOG_FLOOR))
        log_local_fall = np.log(np.maximum(1.0 - local, _LOG_FLOOR))

        if not instance.edges:
            p_rise = local.copy()
            for i, trend in evidence.items():
                p_rise[i] = 1.0 if int(trend) == 1 else 0.0
            self.last_iterations = 0
            self.last_converged = True
            return TrendPosterior(instance.road_ids, p_rise)

        # Directed edge arrays: each undirected edge appears both ways;
        # reverse[e] is the index of the opposite direction.
        undirected = instance.edges
        m_edges = len(undirected)
        src = np.empty(2 * m_edges, dtype=np.int64)
        dst = np.empty(2 * m_edges, dtype=np.int64)
        pot = np.empty(2 * m_edges)
        for e, (i, j, p) in enumerate(undirected):
            src[e], dst[e], pot[e] = i, j, p
            src[m_edges + e], dst[m_edges + e], pot[m_edges + e] = j, i, p
        reverse = np.concatenate(
            [np.arange(m_edges) + m_edges, np.arange(m_edges)]
        )

        # messages[e] = P(dst[e] = RISE) according to src[e].
        messages = np.full(2 * m_edges, 0.5)
        self.last_converged = False
        for iteration in range(1, self._max_iterations + 1):
            log_m_rise = np.log(np.maximum(messages, _LOG_FLOOR))
            log_m_fall = np.log(np.maximum(1.0 - messages, _LOG_FLOOR))
            # Aggregate incoming log-messages at every node.
            node_rise = log_local_rise.copy()
            node_fall = log_local_fall.copy()
            np.add.at(node_rise, dst, log_m_rise)
            np.add.at(node_fall, dst, log_m_fall)
            # Partial belief of src excluding the reverse message.
            part_rise = node_rise[src] - log_m_rise[reverse]
            part_fall = node_fall[src] - log_m_fall[reverse]
            peak = np.maximum(part_rise, part_fall)
            rise = np.exp(part_rise - peak)
            fall = np.exp(part_fall - peak)
            # Pass through the edge potential.
            m_rise = pot * rise + (1.0 - pot) * fall
            m_fall = (1.0 - pot) * rise + pot * fall
            new_messages = m_rise / (m_rise + m_fall)
            new_messages = (
                self._damping * messages + (1.0 - self._damping) * new_messages
            )
            max_delta = float(np.max(np.abs(new_messages - messages)))
            messages = new_messages
            if max_delta < self._tolerance:
                self.last_converged = True
                self.last_iterations = iteration
                break
        else:
            self.last_iterations = self._max_iterations

        recorder = get_recorder()
        recorder.observe(
            "trend.bp.iterations", self.last_iterations, buckets=ITERATION_BUCKETS
        )
        recorder.count(
            "trend.bp.messages", 2 * m_edges * self.last_iterations
        )
        recorder.observe(
            "trend.bp.residual",
            max_delta,
            buckets=(1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1),
        )
        if not self.last_converged:
            recorder.count("trend.bp.nonconverged")

        log_m_rise = np.log(np.maximum(messages, _LOG_FLOOR))
        log_m_fall = np.log(np.maximum(1.0 - messages, _LOG_FLOOR))
        node_rise = log_local_rise.copy()
        node_fall = log_local_fall.copy()
        np.add.at(node_rise, dst, log_m_rise)
        np.add.at(node_fall, dst, log_m_fall)
        peak = np.maximum(node_rise, node_fall)
        rise = np.exp(node_rise - peak)
        fall = np.exp(node_fall - peak)
        p_rise = rise / (rise + fall)
        for i, trend in evidence.items():
            p_rise[i] = 1.0 if int(trend) == 1 else 0.0
        return TrendPosterior(instance.road_ids, p_rise)
