"""Exact trend-MRF inference by enumeration.

Sums the unnormalised joint over all 2^n assignments of the free (not
clamped) variables. Exponential, so it is capped at a small variable
count — its role is to be the *oracle* against which loopy BP, Gibbs
sampling and the fast propagation method are validated in tests and in
experiment F2.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.errors import InferenceError
from repro.core.types import Trend
from repro.obs import get_recorder
from repro.trend.model import TrendInstance, TrendPosterior

#: Enumeration above this many free variables is refused.
MAX_FREE_VARIABLES = 20


class ExactEnumerationInference:
    """Brute-force exact marginals for small instances."""

    def __init__(self, max_free_variables: int = MAX_FREE_VARIABLES) -> None:
        if max_free_variables < 1:
            raise InferenceError("max_free_variables must be >= 1")
        self._max_free = max_free_variables

    def infer(self, instance: TrendInstance) -> TrendPosterior:
        """Exact posterior P(RISE) for every road."""
        n = instance.num_roads
        evidence = instance.evidence_indices()
        free = [i for i in range(n) if i not in evidence]
        if len(free) > self._max_free:
            raise InferenceError(
                f"{len(free)} free variables exceed the exact-inference cap "
                f"of {self._max_free}; use loopy BP or propagation instead"
            )

        assignment = np.zeros(n, dtype=np.int8)
        for i, trend in evidence.items():
            assignment[i] = int(trend)

        with get_recorder().span(
            "trend.exact", roads=n, free=len(free)
        ) as span:
            rise_mass = np.zeros(n)
            total_mass = 0.0
            for bits in itertools.product((1, -1), repeat=len(free)):
                for i, bit in zip(free, bits):
                    assignment[i] = bit
                weight = self._joint_weight(instance, assignment)
                total_mass += weight
                rise_mass[assignment == 1] += weight
            span.set(assignments=2 ** len(free))
            get_recorder().count("trend.exact.assignments", 2 ** len(free))

        if total_mass <= 0.0:
            raise InferenceError("joint distribution has zero total mass")
        return TrendPosterior(instance.road_ids, rise_mass / total_mass)

    @staticmethod
    def _joint_weight(instance: TrendInstance, assignment: np.ndarray) -> float:
        """Unnormalised probability of one complete assignment."""
        weight = 1.0
        for i in range(instance.num_roads):
            p = instance.prior_rise[i]
            weight *= p if assignment[i] == 1 else 1.0 - p
        for i, j, p in instance.edges:
            weight *= p if assignment[i] == assignment[j] else 1.0 - p
        return weight


def exact_map_assignment(instance: TrendInstance) -> dict[int, Trend]:
    """The exact MAP configuration (for tests on tiny instances)."""
    n = instance.num_roads
    evidence = instance.evidence_indices()
    free = [i for i in range(n) if i not in evidence]
    if len(free) > MAX_FREE_VARIABLES:
        raise InferenceError("instance too large for exact MAP")

    assignment = np.zeros(n, dtype=np.int8)
    for i, trend in evidence.items():
        assignment[i] = int(trend)

    best_weight = -1.0
    best: np.ndarray | None = None
    for bits in itertools.product((1, -1), repeat=len(free)):
        for i, bit in zip(free, bits):
            assignment[i] = bit
        weight = ExactEnumerationInference._joint_weight(instance, assignment)
        if weight > best_weight:
            best_weight = weight
            best = assignment.copy()
    assert best is not None
    return {
        road: Trend(int(best[i])) for i, road in enumerate(instance.road_ids)
    }
