"""Synthetic datasets standing in for the paper's Beijing/Tianjin data."""

from repro.datasets.splits import (
    RUSH_WINDOWS,
    hourly_interval_groups,
    is_rush_hour,
    off_peak_intervals,
    rush_hour_intervals,
)
from repro.datasets.synthetic import (
    TrafficDataset,
    both_cities,
    build_dataset,
    scaled_dataset,
    synthetic_beijing,
    synthetic_metropolis,
    synthetic_tianjin,
)

__all__ = [
    "RUSH_WINDOWS",
    "TrafficDataset",
    "both_cities",
    "build_dataset",
    "hourly_interval_groups",
    "is_rush_hour",
    "off_peak_intervals",
    "rush_hour_intervals",
    "scaled_dataset",
    "synthetic_beijing",
    "synthetic_metropolis",
    "synthetic_tianjin",
]
