"""Dataset assembly: the two synthetic cities standing in for the paper's
Beijing and Tianjin taxi-GPS datasets.

A :class:`TrafficDataset` bundles everything an experiment needs: the
road network, the time grid, the ground-truth simulator, a training
history (used to build the store, correlation graph and models) and a
held-out test period (the "live" days the methods are scored on, which
no model ever sees during fitting).

Builders are deterministic and cached — every test and benchmark in the
repository sees the identical datasets.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.core.errors import DataError
from repro.core.field import SpeedField
from repro.history.correlation import CorrelationGraph, mine_correlation_graph
from repro.history.store import HistoricalSpeedStore
from repro.history.timebuckets import TimeGrid
from repro.roadnet.generators import (
    composite_city,
    grid_city,
    ring_radial_city,
    sized_grid,
    sized_metropolis,
)
from repro.roadnet.network import RoadNetwork
from repro.traffic.events import CongestionEvent
from repro.traffic.simulator import TrafficSimulator


@dataclass(frozen=True)
class TrafficDataset:
    """A complete, self-consistent experiment dataset."""

    name: str
    network: RoadNetwork
    grid: TimeGrid
    simulator: TrafficSimulator
    history: SpeedField
    test: SpeedField
    store: HistoricalSpeedStore
    graph: CorrelationGraph
    test_events: tuple[CongestionEvent, ...]
    history_days: int
    test_days: int

    @property
    def first_test_day(self) -> int:
        return self.history_days

    def test_day_intervals(self, day_offset: int = 0, stride: int = 1) -> list[int]:
        """Intervals of the ``day_offset``-th test day, optionally strided."""
        if not 0 <= day_offset < self.test_days:
            raise DataError(
                f"test day offset {day_offset} outside 0..{self.test_days - 1}"
            )
        day = self.first_test_day + day_offset
        return list(self.grid.day_range(day))[::stride]

    def describe(self) -> dict[str, object]:
        """Summary statistics — the rows of the dataset table (T1)."""
        return {
            "name": self.name,
            "intersections": self.network.num_intersections,
            "roads": self.network.num_segments,
            "total_km": round(self.network.total_length_km(), 1),
            "road_classes": self.network.class_counts(),
            "interval_minutes": self.grid.interval_minutes,
            "history_days": self.history_days,
            "test_days": self.test_days,
            "history_intervals": self.store.num_training_intervals,
            "correlation_edges": self.graph.num_edges,
            "correlation_avg_degree": round(self.graph.average_degree(), 2),
        }


def build_dataset(
    name: str,
    network: RoadNetwork,
    history_days: int = 21,
    test_days: int = 2,
    interval_minutes: int = 15,
    seed: int = 0,
    max_hops: int = 2,
    min_agreement: float = 0.6,
) -> TrafficDataset:
    """Simulate history + test days and mine the correlation graph.

    The history and test periods use different RNG streams (derived from
    ``seed``), so test days contain genuinely unseen regional states,
    day offsets and events.
    """
    if history_days < 1 or test_days < 1:
        raise DataError("need at least one history day and one test day")
    grid = TimeGrid(interval_minutes)
    simulator = TrafficSimulator(network, grid)
    history, _history_events = simulator.simulate(0, history_days, seed=seed)
    test, test_events = simulator.simulate(
        history_days, test_days, seed=seed + 1_000_003
    )
    store = HistoricalSpeedStore.from_fields(grid, [history])
    graph = mine_correlation_graph(
        network, store, max_hops=max_hops, min_agreement=min_agreement
    )
    return TrafficDataset(
        name=name,
        network=network,
        grid=grid,
        simulator=simulator,
        history=history,
        test=test,
        store=store,
        graph=graph,
        test_events=tuple(test_events),
        history_days=history_days,
        test_days=test_days,
    )


@functools.lru_cache(maxsize=None)
def synthetic_beijing() -> TrafficDataset:
    """The larger grid-style city (528 directed roads), Beijing's stand-in."""
    return build_dataset(
        "synthetic-beijing",
        grid_city(rows=12, cols=12, block_m=400.0, arterial_every=4),
        history_days=21,
        test_days=2,
        seed=20160516,  # the paper's publication date, for flavour
    )


@functools.lru_cache(maxsize=None)
def synthetic_tianjin() -> TrafficDataset:
    """The smaller ring-radial city (240 directed roads), Tianjin's stand-in."""
    return build_dataset(
        "synthetic-tianjin",
        ring_radial_city(rings=5, spokes=12, ring_spacing_m=700.0),
        history_days=21,
        test_days=2,
        seed=7498298,  # the paper's DOI suffix, for flavour
    )


@functools.lru_cache(maxsize=None)
def synthetic_metropolis() -> TrafficDataset:
    """A grid core with ring-radial periphery and highway links.

    The largest built-in city (~600 roads across all four road classes);
    used where structural heterogeneity matters — e.g. exercising the
    highway profiles and class-level hierarchy end to end.
    """
    return build_dataset(
        "synthetic-metropolis",
        composite_city(core_rows=8, core_cols=8, rings=3, spokes=12),
        history_days=14,
        test_days=1,
        seed=883894,  # the paper's page range, for flavour
    )


@functools.lru_cache(maxsize=None)
def scaled_dataset(num_roads_target: int, history_days: int = 10) -> TrafficDataset:
    """A grid dataset sized for scalability sweeps (F3/F8)."""
    network = sized_grid(num_roads_target)
    return build_dataset(
        network.name,
        network,
        history_days=history_days,
        test_days=1,
        seed=num_roads_target,
    )


@functools.lru_cache(maxsize=None)
def metropolitan_dataset(
    num_roads_target: int = 50_000, history_days: int = 5
) -> TrafficDataset:
    """A metropolitan-scale district-city dataset (F8 at 50k+ roads).

    Districts are stitched 12×12 grids (:func:`sized_metropolis`), so
    the correlation graph has the sparse cross-district structure the
    partitioned selection/inference layers exploit. History is kept
    short (simulation dominates build time at this scale); one test day
    is plenty for a latency benchmark.
    """
    network = sized_metropolis(num_roads_target)
    return build_dataset(
        network.name,
        network,
        history_days=history_days,
        test_days=1,
        seed=num_roads_target,
    )


def both_cities() -> list[TrafficDataset]:
    """The standard two-dataset evaluation set."""
    return [synthetic_beijing(), synthetic_tianjin()]
