"""Interval selectors over a dataset's test period.

The time-of-day experiment (F6) and several examples need "rush hour"
versus "off peak" interval subsets; these selectors define them once so
every consumer slices time identically.
"""

from __future__ import annotations

from repro.core.errors import DataError
from repro.datasets.synthetic import TrafficDataset

#: Rush-hour windows as [start, end) fractional hours.
RUSH_WINDOWS: tuple[tuple[float, float], ...] = ((7.0, 10.0), (17.0, 20.0))


def is_rush_hour(hour: float) -> bool:
    """Whether a fractional hour falls inside a rush window."""
    return any(lo <= hour < hi for lo, hi in RUSH_WINDOWS)


def rush_hour_intervals(dataset: TrafficDataset, day_offset: int = 0) -> list[int]:
    """Test-day intervals inside the rush windows."""
    return [
        t
        for t in dataset.test_day_intervals(day_offset)
        if is_rush_hour(dataset.grid.hour_of(t))
    ]


def off_peak_intervals(dataset: TrafficDataset, day_offset: int = 0) -> list[int]:
    """Test-day intervals outside the rush windows."""
    return [
        t
        for t in dataset.test_day_intervals(day_offset)
        if not is_rush_hour(dataset.grid.hour_of(t))
    ]


def hourly_interval_groups(
    dataset: TrafficDataset, day_offset: int = 0
) -> dict[int, list[int]]:
    """Test-day intervals grouped by hour of day (0..23)."""
    groups: dict[int, list[int]] = {}
    for t in dataset.test_day_intervals(day_offset):
        groups.setdefault(int(dataset.grid.hour_of(t)), []).append(t)
    if not groups:
        raise DataError("test day produced no intervals")
    return groups
