"""The common interface for speed-estimation baselines.

Every baseline implements the same contract as the two-step estimator's
core query: given an interval and the crowdsourced seed speeds, return a
speed for *every* road. The evaluation harness treats all methods
uniformly through this interface.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.errors import InferenceError


@runtime_checkable
class SpeedBaseline(Protocol):
    """Structural interface for estimation methods."""

    #: Human-readable method name used in result tables.
    name: str

    def estimate_interval(
        self, interval: int, seed_speeds: dict[int, float]
    ) -> dict[int, float]:
        """Speed (km/h) for every road, given seed observations."""
        ...


def check_seed_speeds(seed_speeds: dict[int, float]) -> None:
    """Shared validation of a seed-observation mapping."""
    if not seed_speeds:
        raise InferenceError("at least one seed observation is required")
    for road, speed in seed_speeds.items():
        if speed < 0:
            raise InferenceError(f"negative seed speed {speed} on road {road}")
