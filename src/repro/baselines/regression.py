"""Global-ratio regression baseline.

Estimates one citywide congestion factor per interval — the seed-count-
weighted mean deviation ratio — and applies it to every road's
historical mean. Captures whole-city shifts (weather, a slow day)
perfectly and local structure not at all; it brackets the value of
*spatially resolved* inference in the comparison.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import check_seed_speeds
from repro.history.store import HistoricalSpeedStore


class GlobalRatioBaseline:
    """One shared deviation ratio per interval, from all seeds."""

    name = "global-ratio"

    def __init__(self, store: HistoricalSpeedStore) -> None:
        self._store = store

    def estimate_interval(
        self, interval: int, seed_speeds: dict[int, float]
    ) -> dict[int, float]:
        check_seed_speeds(seed_speeds)
        ratios = [
            self._store.deviation_ratio(road, interval, speed)
            for road, speed in sorted(seed_speeds.items())
        ]
        global_ratio = float(np.mean(ratios))
        estimates = {
            road: global_ratio * self._store.historical_speed(road, interval)
            for road in self._store.road_ids
        }
        estimates.update(seed_speeds)
        return estimates
