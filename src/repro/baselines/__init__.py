"""Speed-estimation baselines: the paper's comparison set."""

from repro.baselines.base import SpeedBaseline, check_seed_speeds
from repro.baselines.historical import HistoricalAverageBaseline
from repro.baselines.knn import IdwDeviationBaseline, KnnSpeedBaseline
from repro.baselines.label_prop import LabelPropagationBaseline
from repro.baselines.regression import GlobalRatioBaseline

__all__ = [
    "GlobalRatioBaseline",
    "HistoricalAverageBaseline",
    "IdwDeviationBaseline",
    "KnnSpeedBaseline",
    "LabelPropagationBaseline",
    "SpeedBaseline",
    "check_seed_speeds",
]
