"""Spatial interpolation baselines: kNN and inverse-distance deviation.

Two classic "sensor interpolation" approaches:

* :class:`KnnSpeedBaseline` — each road takes the inverse-distance-
  weighted mean of the **raw speeds** of its k nearest seeds (by segment
  midpoint). Simple and common, but blind to road heterogeneity: a local
  street next to a highway seed inherits highway speeds.
* :class:`IdwDeviationBaseline` — interpolates **deviation ratios**
  instead and multiplies by the road's own historical mean, removing the
  heterogeneity failure while remaining a purely spatial method (no
  correlation graph, no trends).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import check_seed_speeds
from repro.core.errors import InferenceError
from repro.history.store import HistoricalSpeedStore
from repro.roadnet.network import RoadNetwork


class _SpatialInterpolator:
    """Shared machinery: k nearest seeds by midpoint distance."""

    def __init__(self, network: RoadNetwork, k: int) -> None:
        if k < 1:
            raise InferenceError(f"k must be >= 1, got {k}")
        self._network = network
        self._k = k
        self._midpoints = {
            road: network.segment_midpoint(road) for road in network.road_ids()
        }

    def nearest_seeds(
        self, road: int, seeds: list[int]
    ) -> list[tuple[int, float]]:
        """Up to k nearest (seed, weight) pairs by inverse distance."""
        mid = self._midpoints[road]
        distances = sorted(
            ((self._midpoints[s].distance_to(mid), s) for s in seeds),
        )[: self._k]
        return [(s, 1.0 / max(d, 1.0)) for d, s in distances]


class KnnSpeedBaseline:
    """IDW of raw seed speeds over the k nearest seeds."""

    name = "knn-speed"

    def __init__(self, network: RoadNetwork, k: int = 5) -> None:
        self._interp = _SpatialInterpolator(network, k)
        self._road_ids = network.road_ids()

    def estimate_interval(
        self, interval: int, seed_speeds: dict[int, float]
    ) -> dict[int, float]:
        check_seed_speeds(seed_speeds)
        seeds = sorted(seed_speeds)
        estimates: dict[int, float] = {}
        for road in self._road_ids:
            if road in seed_speeds:
                estimates[road] = seed_speeds[road]
                continue
            pairs = self._interp.nearest_seeds(road, seeds)
            weights = np.array([w for _, w in pairs])
            values = np.array([seed_speeds[s] for s, _ in pairs])
            estimates[road] = float((weights * values).sum() / weights.sum())
        return estimates


class IdwDeviationBaseline:
    """IDW of seed deviation ratios, re-anchored to each road's history."""

    name = "idw-deviation"

    def __init__(
        self, network: RoadNetwork, store: HistoricalSpeedStore, k: int = 5
    ) -> None:
        self._interp = _SpatialInterpolator(network, k)
        self._store = store
        self._road_ids = network.road_ids()

    def estimate_interval(
        self, interval: int, seed_speeds: dict[int, float]
    ) -> dict[int, float]:
        check_seed_speeds(seed_speeds)
        seeds = sorted(seed_speeds)
        deviations = {
            s: self._store.deviation_ratio(s, interval, seed_speeds[s])
            for s in seeds
        }
        estimates: dict[int, float] = {}
        for road in self._road_ids:
            if road in seed_speeds:
                estimates[road] = seed_speeds[road]
                continue
            pairs = self._interp.nearest_seeds(road, seeds)
            weights = np.array([w for _, w in pairs])
            values = np.array([deviations[s] for s, _ in pairs])
            ratio = float((weights * values).sum() / weights.sum())
            estimates[road] = ratio * self._store.historical_speed(road, interval)
        return estimates
