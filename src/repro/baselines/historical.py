"""Historical-average baseline (HA).

Predicts every road's bucket-mean speed, ignoring the seeds entirely.
This is the floor every real-time method must beat: it is exactly right
on an average day and exactly wrong whenever something unusual happens —
which is the regime the paper targets.
"""

from __future__ import annotations

from repro.baselines.base import check_seed_speeds
from repro.history.store import HistoricalSpeedStore


class HistoricalAverageBaseline:
    """Bucket-mean prediction; seeds pass through verbatim."""

    name = "historical-average"

    def __init__(self, store: HistoricalSpeedStore) -> None:
        self._store = store

    def estimate_interval(
        self, interval: int, seed_speeds: dict[int, float]
    ) -> dict[int, float]:
        check_seed_speeds(seed_speeds)
        estimates = {
            road: self._store.historical_speed(road, interval)
            for road in self._store.road_ids
        }
        estimates.update(seed_speeds)
        return estimates
