"""Label-propagation baseline over the correlation graph.

Iteratively averages deviation ratios across correlation edges with the
seeds clamped — graph-based semi-supervised regression, the strongest
graph-aware baseline in the comparison. Unlike the two-step method it
has no trend stage, no hierarchical prior, and treats the edge weight as
a plain smoothing weight rather than a calibrated agreement probability.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import check_seed_speeds
from repro.core.errors import InferenceError
from repro.history.correlation import CorrelationGraph
from repro.history.store import HistoricalSpeedStore


class LabelPropagationBaseline:
    """Clamped weighted-average propagation of deviation ratios."""

    name = "label-propagation"

    def __init__(
        self,
        graph: CorrelationGraph,
        store: HistoricalSpeedStore,
        max_iterations: int = 100,
        tolerance: float = 1e-5,
        self_weight: float = 0.5,
    ) -> None:
        if max_iterations < 1:
            raise InferenceError("max_iterations must be >= 1")
        if not 0.0 <= self_weight < 1.0:
            raise InferenceError("self_weight must be in [0, 1)")
        self._graph = graph
        self._store = store
        self._max_iterations = max_iterations
        self._tolerance = tolerance
        self._self_weight = self_weight
        self._road_ids = graph.road_ids
        self._index = {road: i for i, road in enumerate(self._road_ids)}
        # Precompute the row-normalised adjacency as index arrays.
        self._neighbours: list[np.ndarray] = []
        self._weights: list[np.ndarray] = []
        for road in self._road_ids:
            edges = graph.neighbours(road)
            self._neighbours.append(
                np.array([self._index[e.other(road)] for e in edges], dtype=np.int64)
            )
            w = np.array([e.agreement for e in edges])
            self._weights.append(w / w.sum() if w.size else w)

    def estimate_interval(
        self, interval: int, seed_speeds: dict[int, float]
    ) -> dict[int, float]:
        check_seed_speeds(seed_speeds)
        for road in seed_speeds:
            if road not in self._index:
                raise InferenceError(f"seed road {road} not in correlation graph")

        n = len(self._road_ids)
        values = np.ones(n)
        clamped = np.zeros(n, dtype=bool)
        for road, speed in seed_speeds.items():
            i = self._index[road]
            values[i] = self._store.deviation_ratio(road, interval, speed)
            clamped[i] = True

        alpha = self._self_weight
        for _ in range(self._max_iterations):
            new_values = values.copy()
            for i in range(n):
                if clamped[i] or self._neighbours[i].size == 0:
                    continue
                neighbour_mean = float(
                    (values[self._neighbours[i]] * self._weights[i]).sum()
                )
                new_values[i] = alpha * values[i] + (1.0 - alpha) * neighbour_mean
            delta = float(np.max(np.abs(new_values - values)))
            values = new_values
            if delta < self._tolerance:
                break

        estimates: dict[int, float] = {}
        for road in self._road_ids:
            if road in seed_speeds:
                estimates[road] = seed_speeds[road]
            else:
                historical = self._store.historical_speed(road, interval)
                estimates[road] = float(values[self._index[road]]) * historical
        return estimates
