"""Cost-aware seed selection under a monetary budget.

The base problem charges every seed one unit; in practice crowdsourcing
a busy arterial (many potential reporters) is cheaper than a quiet
residential street. This module solves the **budgeted** variant:
maximise the coverage objective subject to ``Σ cost(u) ≤ budget``.

Budgeted monotone submodular maximisation admits the classic
``max(plain greedy, cost-benefit greedy)`` algorithm with a
½(1 − 1/e) guarantee [Leskovec et al., KDD 2007]; both passes here use
lazy evaluation. A simple per-road-class cost model is provided as the
default (observing quiet roads costs more — fewer people to ask).
"""

from __future__ import annotations

import heapq

from repro.core.errors import SelectionError
from repro.roadnet.network import RoadNetwork
from repro.seeds.greedy import SelectionResult
from repro.seeds.objective import SeedSelectionObjective

#: Default relative crowdsourcing cost per road class: quiet roads have
#: fewer potential reporters, so answers cost more to obtain.
DEFAULT_CLASS_COSTS: dict[str, float] = {
    "highway": 1.0,
    "arterial": 1.2,
    "collector": 1.6,
    "local": 2.0,
}


def default_road_costs(network: RoadNetwork) -> dict[int, float]:
    """Per-road crowdsourcing costs from the class-based default model."""
    return {
        segment.road_id: DEFAULT_CLASS_COSTS.get(segment.road_class, 2.0)
        for segment in network.segments()
    }


def _validate(
    objective: SeedSelectionObjective,
    costs: dict[int, float],
    budget_cost: float,
) -> None:
    if budget_cost <= 0:
        raise SelectionError(f"budget must be positive, got {budget_cost}")
    for road in objective.road_ids:
        cost = costs.get(road)
        if cost is None:
            raise SelectionError(f"no cost given for road {road}")
        if cost <= 0:
            raise SelectionError(f"cost for road {road} must be positive")
    if min(costs[road] for road in objective.road_ids) > budget_cost:
        raise SelectionError("budget cannot afford any road")


def _lazy_pass(
    objective: SeedSelectionObjective,
    costs: dict[int, float],
    budget_cost: float,
    by_ratio: bool,
) -> SelectionResult:
    """One lazy greedy pass; keyed by gain or gain/cost ratio."""
    state = objective.new_state()
    evaluations = 0
    current_round = 0
    heap: list[tuple[float, int, int]] = []
    for road in objective.road_ids:
        gain = state.gain(road)
        evaluations += 1
        key = gain / costs[road] if by_ratio else gain
        heapq.heappush(heap, (-key, road, 0))

    seeds: list[int] = []
    gains: list[float] = []
    values: list[float] = []
    spent = 0.0
    while heap:
        neg_key, road, evaluated_round = heapq.heappop(heap)
        if spent + costs[road] > budget_cost:
            continue  # unaffordable now; never becomes affordable again
        if evaluated_round == current_round:
            realised = state.add(road)
            seeds.append(road)
            gains.append(realised)
            values.append(state.value)
            spent += costs[road]
            current_round += 1
        else:
            gain = state.gain(road)
            evaluations += 1
            key = gain / costs[road] if by_ratio else gain
            heapq.heappush(heap, (-key, road, current_round))
    return SelectionResult(
        method="cost-ratio" if by_ratio else "cost-plain",
        seeds=tuple(seeds),
        gains=tuple(gains),
        values=tuple(values),
        evaluations=evaluations,
    )


def cost_aware_select(
    objective: SeedSelectionObjective,
    costs: dict[int, float],
    budget_cost: float,
) -> SelectionResult:
    """Budgeted selection: the better of plain and cost-benefit greedy.

    Returns a :class:`SelectionResult` whose ``method`` records which
    pass won. The combined algorithm carries the ½(1 − 1/e)
    approximation guarantee for monotone submodular objectives.
    """
    _validate(objective, costs, budget_cost)
    plain = _lazy_pass(objective, costs, budget_cost, by_ratio=False)
    ratio = _lazy_pass(objective, costs, budget_cost, by_ratio=True)
    winner = plain if plain.final_value >= ratio.final_value else ratio
    return SelectionResult(
        method=f"cost-aware({winner.method})",
        seeds=winner.seeds,
        gains=winner.gains,
        values=winner.values,
        evaluations=plain.evaluations + ratio.evaluations,
    )


def selection_cost(seeds: tuple[int, ...], costs: dict[int, float]) -> float:
    """Total monetary cost of a seed set."""
    return sum(costs[road] for road in seeds)
