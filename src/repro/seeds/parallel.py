"""Process-parallel district selection and Step-1 voting at metropolitan scale.

The single-process partition path (:mod:`repro.seeds.partition`) already
restricts every marginal-gain evaluation to one district; at 50k+ roads
the districts themselves become the unit of parallelism. This module
runs them across a process pool:

* The CSR fidelity arrays (``indptr``/``indices``/``data``) and the
  objective's road weights are exported **once** to
  :mod:`multiprocessing.shared_memory` — workers map them read-only, so
  a pool over a 50k-road graph costs one copy of the graph, not one per
  worker.
* Each worker rebuilds a :class:`~repro.history.fidelity.CSRFidelityGraph`
  view over the shared buffers and runs the *unchanged*
  :func:`~repro.seeds.lazy.lazy_greedy_select` against a duck-typed
  objective that recomputes influence rows on demand (bounded LRU).
  Because the kernel, the transform math and the weight construction are
  byte-identical to the parent's, each district returns the **identical
  seed sequence** the single-process path would have produced for that
  chunk.
* Stitching is deterministic: district results are concatenated in
  district order (the same order the serial loop uses), never in
  completion order, and the final global rescoring runs in the parent.

The same pool also accumulates Step-1 propagation votes per district
(:meth:`DistrictPool.vote_accumulator`): each worker sums its district
seeds' signed log-odds rows into one partial vote vector and the parent
adds the partials in district order — exact up to float re-association
(asserted ≤ 1e-9 against the serial kernel in the differential tests).

Workers recompute rows instead of memoizing them all because dense rows
at metropolitan scale are ~400 KB each; a bounded LRU keeps worker
memory flat while the CELF access pattern (one initial scan, then
re-evaluations clustered on recent picks) keeps the hit rate high.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context, shared_memory
from typing import Mapping

import numpy as np

from repro.core.errors import InferenceError, SelectionError
from repro.history.fidelity import (
    CSRFidelityGraph,
    _transform_row,
    best_fidelity_row,
)
from repro.obs import get_recorder
from repro.seeds.greedy import SelectionResult, validate_budget
from repro.seeds.lazy import lazy_greedy_select
from repro.seeds.objective import CoverageState, SeedSelectionObjective
from repro.seeds.partition import allocate_budget, partition_graph

__all__ = [
    "DistrictPool",
    "SharedArrayExport",
    "attach_shared_array",
    "parallel_partition_select",
]


# ----------------------------------------------------------------------
# Shared-memory export
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ArraySpec:
    """Address of one read-only array in shared memory."""

    name: str
    shape: tuple[int, ...]
    dtype: str


class SharedArrayExport:
    """Named read-only numpy arrays published once to shared memory.

    The generic half of the worker plumbing: any pool that ships large
    read-only arrays to spawn workers (district selection here, sharded
    plan compilation in :mod:`repro.speed.shardplan`) publishes them
    through one of these and hands ``specs`` to the pool initializer.
    Owns the shared-memory segments: :meth:`close` both closes and
    unlinks them (workers keep their own mappings alive until exit).
    """

    def __init__(self, arrays: Mapping[str, np.ndarray]) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self.specs: dict[str, _ArraySpec] = {}
        try:
            for field, source in arrays.items():
                array = np.ascontiguousarray(source)
                segment = shared_memory.SharedMemory(
                    create=True, size=max(1, array.nbytes)
                )
                self._segments.append(segment)
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
                view[...] = array
                del view
                self.specs[field] = _ArraySpec(
                    segment.name, tuple(array.shape), array.dtype.str
                )
        except BaseException:
            self.close()
            raise
        self.nbytes = sum(segment.size for segment in self._segments)

    def close(self) -> None:
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._segments = []


class _SharedGraphExport(SharedArrayExport):
    """The CSR fidelity arrays + road ids + weights, published once."""

    def __init__(self, csr: CSRFidelityGraph, weights: np.ndarray) -> None:
        super().__init__(
            {
                "indptr": csr.indptr,
                "indices": csr.indices,
                "data": csr.data,
                "road_ids": np.asarray(csr.road_ids, dtype=np.int64),
                "weights": np.asarray(weights, dtype=np.float64),
            }
        )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
_worker_csr: CSRFidelityGraph | None = None
_worker_weights: np.ndarray | None = None
_worker_min_fidelity: float = 0.05
_worker_transform: str = "variance"
_worker_segments: list[shared_memory.SharedMemory] = []


def _attach(spec: _ArraySpec) -> np.ndarray:
    # Workers attach by name; the parent owns creation and unlinking.
    # The resource tracker is shared with the parent under spawn, so
    # the attach-side registration is a set-level no-op there.
    segment = shared_memory.SharedMemory(name=spec.name)
    _worker_segments.append(segment)
    array: np.ndarray = np.ndarray(
        spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf
    )
    array.setflags(write=False)
    return array


def attach_shared_array(spec: _ArraySpec) -> np.ndarray:
    """Worker-side attach to one exported array (read-only view).

    Public alias of the internal attach helper so other pools (the
    plan-compile pool in :mod:`repro.speed.shardplan`) can reuse the
    segment bookkeeping without reaching into module privates.
    """
    return _attach(spec)


def _init_worker(
    specs: dict[str, _ArraySpec], min_fidelity: float, transform: str
) -> None:
    """Pool initializer: map the shared arrays and rebuild the CSR view."""
    global _worker_csr, _worker_weights, _worker_min_fidelity, _worker_transform
    road_ids = tuple(int(r) for r in _attach(specs["road_ids"]))
    _worker_csr = CSRFidelityGraph(
        road_ids=road_ids,
        index={road: i for i, road in enumerate(road_ids)},
        indptr=_attach(specs["indptr"]),
        indices=_attach(specs["indices"]),
        data=_attach(specs["data"]),
    )
    _worker_weights = _attach(specs["weights"])
    _worker_min_fidelity = float(min_fidelity)
    _worker_transform = transform


class _SharedArrayObjective:
    """Duck-typed objective over the worker's shared CSR arrays.

    Exposes exactly the surface :class:`~repro.seeds.objective.
    CoverageState` and :func:`~repro.seeds.lazy.lazy_greedy_select`
    touch (``num_roads``/``road_ids``/``index``/``weights``/
    ``use_kernel``/``influence_row``/``new_state``), with rows
    recomputed from the shared arrays by the same kernel + transform
    math the parent's cache service uses — so gains, tie-breaks and
    therefore seed sequences are bitwise identical to the parent's.
    """

    use_kernel = True

    def __init__(
        self,
        csr: CSRFidelityGraph,
        weights: np.ndarray,
        members: list[int],
        min_fidelity: float,
        transform: str,
        row_cache: int = 256,
    ) -> None:
        self._csr = csr
        self.num_roads = csr.num_roads
        self.index = csr.index
        self._min_fidelity = min_fidelity
        self._transform = transform
        # Zero weights outside the district, the district's own global
        # weights inside — the same array clone_with_weights builds.
        self.weights = np.zeros(csr.num_roads, dtype=np.float64)
        positions = [csr.index[road] for road in members]
        self.weights[positions] = weights[positions]
        self._row_cache: OrderedDict[int, np.ndarray] = OrderedDict()
        self._row_cache_size = row_cache

    @property
    def road_ids(self) -> list[int]:
        return list(self._csr.road_ids)

    def influence_row(self, road: int) -> np.ndarray:
        row = self._row_cache.get(road)
        if row is not None:
            self._row_cache.move_to_end(road)
            return row
        raw = best_fidelity_row(self._csr, self.index[road], self._min_fidelity)
        row = _transform_row(
            raw, self.index[road], self._transform, np.flatnonzero(raw)
        )
        if len(self._row_cache) >= self._row_cache_size:
            self._row_cache.popitem(last=False)
        self._row_cache[road] = row
        return row

    def new_state(self) -> CoverageState:
        return CoverageState(self)


def _select_chunk(task: tuple[list[int], int]) -> tuple[tuple[int, ...], int]:
    """Worker task: CELF inside one district; returns (seeds, evaluations)."""
    chunk, share = task
    assert _worker_csr is not None and _worker_weights is not None
    objective = _SharedArrayObjective(
        _worker_csr,
        _worker_weights,
        chunk,
        _worker_min_fidelity,
        _worker_transform,
    )
    result = lazy_greedy_select(objective, share, candidates=chunk)  # type: ignore[arg-type]
    return result.seeds, result.evaluations


def _vote_chunk(
    pairs: tuple[tuple[int, float], ...]
) -> tuple[np.ndarray, int]:
    """Worker task: partial Step-1 vote vector for one district's seeds."""
    assert _worker_csr is not None
    csr = _worker_csr
    votes = np.zeros(csr.num_roads, dtype=np.float64)
    nonzeros = 0
    for road, sign in pairs:
        position = csr.index[road]
        raw = best_fidelity_row(csr, position, _worker_min_fidelity)
        row = _transform_row(raw, position, "logodds", np.flatnonzero(raw))
        nonzeros += int(np.count_nonzero(row))
        votes += sign * row
    return votes, nonzeros


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class DistrictPool:
    """A process pool bound to one objective's graph via shared arrays.

    Create once, reuse for every selection and Step-1 round on the same
    system (spawning workers and exporting the arrays is the expensive
    part). Close explicitly (or use as a context manager) to release
    the pool and unlink the shared segments.
    """

    def __init__(
        self,
        objective: SeedSelectionObjective,
        num_partitions: int = 8,
        num_workers: int = 0,
    ) -> None:
        if not objective.use_kernel:
            raise SelectionError(
                "parallel district selection requires the fidelity kernel "
                "(objective built with use_kernel=False)"
            )
        self._objective = objective
        self._graph = objective.graph
        self._partitions = partition_graph(objective, num_partitions)
        self._district_of = {
            road: district
            for district, chunk in enumerate(self._partitions)
            for road in chunk
        }
        csr = objective.fidelity_service.csr(self._graph)
        self._export = _SharedGraphExport(csr, objective.weights)
        workers = num_workers or (os.cpu_count() or 1)
        self.num_workers = max(1, min(workers, len(self._partitions)))
        self._pool = ProcessPoolExecutor(
            max_workers=self.num_workers,
            mp_context=get_context("spawn"),
            initializer=_init_worker,
            initargs=(
                self._export.specs,
                objective.min_fidelity,
                objective.transform,
            ),
        )
        self._closed = False
        recorder = get_recorder()
        recorder.gauge("seeds.parallel.workers", self.num_workers)
        recorder.gauge("seeds.parallel.districts", len(self._partitions))
        recorder.gauge("seeds.parallel.shared_bytes", self._export.nbytes)

    @property
    def partitions(self) -> list[list[int]]:
        return [list(chunk) for chunk in self._partitions]

    def _check_open(self) -> None:
        if self._closed:
            raise SelectionError("district pool is closed")

    def select(self, budget: int) -> SelectionResult:
        """District-parallel partition greedy; deterministic stitching.

        Identical output to :func:`~repro.seeds.partition.
        partition_greedy_select` with the same ``num_partitions`` —
        same seed sequence, same gains/values — because each worker
        runs the same CELF on bitwise-equal rows and districts are
        stitched in district order, not completion order.
        """
        self._check_open()
        validate_budget(self._objective, budget)
        shares = allocate_budget(self._partitions, budget)
        recorder = get_recorder()
        with recorder.span(
            "seeds.parallel.select",
            budget=budget,
            districts=len(self._partitions),
            workers=self.num_workers,
        ) as span:
            futures = [
                (self._pool.submit(_select_chunk, (chunk, share)))
                for chunk, share in zip(self._partitions, shares)
                if share > 0
            ]
            seeds: list[int] = []
            evaluations = 0
            # future order == district order == serial stitch order.
            for future in futures:
                chunk_seeds, chunk_evaluations = future.result()
                seeds.extend(chunk_seeds)
                evaluations += chunk_evaluations

            # Global rescoring in the parent, exactly as the serial path.
            state = self._objective.new_state()
            gains: list[float] = []
            values: list[float] = []
            for seed in seeds:
                gains.append(state.add(seed))
                values.append(state.value)
            span.set(evaluations=evaluations, objective=round(state.value, 3))
        return SelectionResult(
            method="partition-greedy-parallel",
            seeds=tuple(seeds),
            gains=tuple(gains),
            values=tuple(values),
            evaluations=evaluations,
        )

    def vote_accumulator(
        self, graph, seeds: list[int], signs: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """District-partial Step-1 vote accumulation.

        Drop-in for the serial ``signs @ logodds_rows`` matmul in
        :class:`~repro.trend.propagation.TrendPropagationInference`:
        each district's partial vote vector is computed by a worker and
        the partials are summed in district order, so the result is
        deterministic and within float re-association (≤ 1e-9) of the
        serial kernel. Never materialises the (S, N) stacked matrix.
        """
        self._check_open()
        if graph is not self._graph:
            raise InferenceError(
                "district pool is bound to a different correlation graph"
            )
        buckets: dict[int, list[tuple[int, float]]] = {}
        for road, sign in zip(seeds, signs):
            buckets.setdefault(self._district_of[road], []).append(
                (road, float(sign))
            )
        votes = np.zeros(self._export.specs["weights"].shape[0], dtype=np.float64)
        ordered = [
            self._pool.submit(_vote_chunk, tuple(buckets[district]))
            for district in sorted(buckets)
        ]
        nonzeros = 0
        for future in ordered:
            partial, partial_nonzeros = future.result()
            votes += partial
            nonzeros += partial_nonzeros
        get_recorder().count(
            "trend.propagation.parallel_votes", nonzeros, districts=len(buckets)
        )
        return votes, nonzeros

    def close(self) -> None:
        """Shut the pool down and unlink the shared segments."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True)
        self._export.close()

    def __enter__(self) -> "DistrictPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def parallel_partition_select(
    objective: SeedSelectionObjective,
    budget: int,
    num_partitions: int = 8,
    num_workers: int = 0,
) -> SelectionResult:
    """One-shot district-parallel partition greedy (pool per call).

    Systems running many rounds should hold a :class:`DistrictPool`
    instead and amortise the worker spawn + shared export.
    """
    with DistrictPool(objective, num_partitions, num_workers) as pool:
        return pool.select(budget)
