"""Lazy greedy (CELF) seed selection.

Exploits submodularity: a candidate's marginal gain can only *shrink*
as the seed set grows, so a stale upper bound from an earlier round is
still an upper bound. Candidates live in a max-heap keyed by their last
known gain; a pop whose bound is already up to date is provably the true
argmax and is taken without touching the rest of the heap. In practice
this skips the vast majority of gain evaluations while returning the
*identical* seed sequence to plain greedy (ties broken by road id) —
both facts are asserted in the test suite and measured in F4.
"""

from __future__ import annotations

import heapq

from repro.core.clock import get_clock
from repro.obs import get_recorder
from repro.seeds.greedy import SelectionResult, validate_budget, validate_candidates
from repro.seeds.objective import SeedSelectionObjective


def lazy_greedy_select(
    objective: SeedSelectionObjective,
    budget: int,
    candidates: list[int] | None = None,
) -> SelectionResult:
    """CELF: greedy with lazy marginal-gain re-evaluation."""
    validate_budget(objective, budget)
    pool = validate_candidates(objective, budget, candidates)

    state = objective.new_state()
    evaluations = 0

    # Heap entries: (-gain, road, round_evaluated). Road id is the
    # tie-breaker, matching plain greedy's sorted scan.
    heap: list[tuple[float, int, int]] = []
    for candidate in sorted(pool):
        gain = state.gain(candidate)
        evaluations += 1
        heapq.heappush(heap, (-gain, candidate, 0))
    return run_celf(objective, budget, heap, state, evaluations)


def run_celf(
    objective: SeedSelectionObjective,
    budget: int,
    heap: list[tuple[float, int, int]],
    state,
    evaluations: int,
    method: str = "lazy-greedy",
) -> SelectionResult:
    """The CELF pop/re-evaluate loop over a pre-seeded bound heap.

    ``heap`` holds ``(-gain, road, 0)`` empty-set bounds — heap *order*
    (entries are totally ordered, road id breaking gain ties) fully
    determines the pick sequence, so any construction of the same bound
    set (cold scan or a warm-started cache) yields the identical seed
    sequence. ``evaluations`` counts the gain queries already spent
    building the heap; the incremental re-selection path passes the
    number of *dirty* candidates it actually recomputed.
    """
    recorder = get_recorder()
    clock = get_clock()
    seeds: list[int] = []
    gains: list[float] = []
    values: list[float] = []
    current_round = 0
    # Heap accounting for the CELF win: a "hit" is a pop whose stale
    # bound was already the true argmax; a "miss" forces a re-evaluation.
    heap_hits = 0
    heap_misses = 0
    pick_start = clock.monotonic()
    while len(seeds) < budget:
        neg_gain, candidate, evaluated_round = heapq.heappop(heap)
        if evaluated_round == current_round:
            # Bound is fresh: this is the true argmax.
            realised = state.add(candidate)
            seeds.append(candidate)
            gains.append(realised)
            values.append(state.value)
            current_round += 1
            heap_hits += 1
            now = clock.monotonic()
            recorder.observe("seeds.pick_seconds", now - pick_start, method="lazy")
            pick_start = now
        else:
            gain = state.gain(candidate)
            evaluations += 1
            heap_misses += 1
            heapq.heappush(heap, (-gain, candidate, current_round))
    recorder.count("seeds.evaluations", evaluations, method="lazy")
    recorder.count("seeds.lazy.heap_pops", heap_hits, fresh="true")
    recorder.count("seeds.lazy.heap_pops", heap_misses, fresh="false")
    if heap_hits + heap_misses:
        recorder.gauge(
            "seeds.lazy.heap_hit_rate", heap_hits / (heap_hits + heap_misses)
        )
    return SelectionResult(
        method=method,
        seeds=tuple(seeds),
        gains=tuple(gains),
        values=tuple(values),
        evaluations=evaluations,
    )
