"""NP-hardness of seed selection: the Set Cover reduction, executable.

The paper proves seed selection NP-hard. This module materialises the
reduction so the test suite can *machine-verify* it on small instances
instead of taking the proof on faith.

**Reduction.** Given a Set Cover instance (universe ``U``, collection
``C`` of subsets, budget ``k``), build a correlation graph with

* one *element road* per element of ``U``,
* one *set road* per subset in ``C``,
* an edge of agreement ``p`` (fidelity ``q = 2p − 1``) between set road
  ``S`` and element road ``e`` iff ``e ∈ S``,

and ask the **threshold-coverage decision**: does a seed set of size
``k`` exist giving every element road best-path influence at least
``θ``, with ``q² < θ ≤ q``?

The threshold separates path lengths: influence ``≥ θ`` forces a path of
length ≤ 1, so an element road is covered only by itself or by a set
road containing it. Hence a size-``k`` covering seed set exists **iff**
a size-``k`` set cover exists (replace any chosen element road by an
arbitrary set containing it — it covers no less). Both directions are
checked exhaustively by the tests via the brute-force helpers below.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.errors import SelectionError
from repro.history.correlation import CorrelationEdge, CorrelationGraph
from repro.trend.propagation import edge_fidelity, propagate_fidelity


@dataclass(frozen=True)
class SeedSelectionHardnessInstance:
    """The seed-selection instance produced by the reduction."""

    graph: CorrelationGraph
    element_roads: tuple[int, ...]
    set_roads: tuple[int, ...]
    threshold: float
    min_fidelity: float  # propagation floor strictly below q²


def set_cover_to_seed_selection(
    num_elements: int,
    sets: list[frozenset[int]],
    agreement: float = 0.9,
) -> SeedSelectionHardnessInstance:
    """Build the seed-selection instance for a Set Cover instance.

    Elements are ``0 .. num_elements-1``; each set must be a subset of
    the universe. Element roads get ids ``0 .. num_elements-1`` and set
    roads ``num_elements .. num_elements+len(sets)-1``.
    """
    if num_elements < 1:
        raise SelectionError("universe must be non-empty")
    if not sets:
        raise SelectionError("need at least one set")
    if not 0.75 < agreement < 1.0:
        # q = 2p−1 must satisfy q² < q with a usable gap; p > 0.75 gives
        # q > 0.5 and a θ window of width q(1−q) > 0.
        raise SelectionError(f"agreement {agreement} must be in (0.75, 1)")
    universe = set(range(num_elements))
    for i, s in enumerate(sets):
        if not s:
            raise SelectionError(f"set {i} is empty")
        if not s <= universe:
            raise SelectionError(f"set {i} contains non-universe elements")

    element_roads = tuple(range(num_elements))
    set_roads = tuple(range(num_elements, num_elements + len(sets)))
    edges = [
        CorrelationEdge(set_roads[i], element, agreement)
        for i, members in enumerate(sets)
        for element in sorted(members)
    ]
    graph = CorrelationGraph(list(element_roads) + list(set_roads), edges)
    q = edge_fidelity(agreement)
    threshold = (q + q * q) / 2.0
    return SeedSelectionHardnessInstance(
        graph=graph,
        element_roads=element_roads,
        set_roads=set_roads,
        threshold=threshold,
        min_fidelity=q * q * 0.5,
    )


def covers_all_elements(
    instance: SeedSelectionHardnessInstance, seeds: tuple[int, ...]
) -> bool:
    """Whether every element road has influence ≥ θ from ``seeds``."""
    best: dict[int, float] = {}
    for seed in seeds:
        for road, fidelity in propagate_fidelity(
            instance.graph, seed, min_fidelity=instance.min_fidelity
        ).items():
            if fidelity > best.get(road, 0.0):
                best[road] = fidelity
    return all(
        best.get(element, 0.0) >= instance.threshold
        for element in instance.element_roads
    )


def min_seed_budget(instance: SeedSelectionHardnessInstance) -> int | None:
    """Brute-force minimum seed-set size achieving full element coverage.

    Exponential — for reduction verification on small instances only.
    Returns None when even seeding every road fails (an element in no set
    would still cover itself, so None only occurs for empty inputs, which
    the constructor rejects; kept for interface symmetry).
    """
    roads = instance.graph.road_ids
    for size in range(1, len(roads) + 1):
        for combo in itertools.combinations(roads, size):
            if covers_all_elements(instance, combo):
                return size
    return None


def min_set_cover_size(
    num_elements: int, sets: list[frozenset[int]]
) -> int | None:
    """Brute-force minimum set-cover size; None when uncoverable."""
    universe = set(range(num_elements))
    covered_total: set[int] = set().union(*sets)
    if not universe <= covered_total:
        return None
    for size in range(1, len(sets) + 1):
        for combo in itertools.combinations(range(len(sets)), size):
            if universe <= set().union(*(sets[i] for i in combo)):
                return size
    return None
