"""Incremental CELF re-selection across crowdsourcing rounds.

Re-selecting seeds from scratch every round repeats the most expensive
part of CELF — the initial empty-set gain scan over every candidate
(O(n) influence-row evaluations). But empty-set gains depend only on a
candidate's influence row and the road weights, so on a stable network
they are *still valid* next round. :class:`IncrementalCelfSelector`
keeps them cached and registers for row-level invalidations on the
objective's :class:`~repro.history.fidelity.FidelityCacheService`
(:meth:`~repro.history.fidelity.FidelityCacheService.invalidate_rows`):
a re-selection recomputes only candidates whose influence rows were
invalidated since the last round and warm-starts the CELF heap from the
cache for everyone else.

Correctness: the CELF pick sequence is fully determined by the bound
*set* (entries are totally ordered; see
:func:`~repro.seeds.lazy.run_celf`), and a cached gain equals the gain
a cold scan would recompute — rows are deterministic functions of the
(graph, floor, transform) triple. So a warm-started re-selection
returns the **identical** sequence to a cold ``lazy_greedy_select``, at
the cost of only the dirty candidates (``seeds.reselect.*`` metrics
record exactly how many that was).
"""

from __future__ import annotations

import heapq

from repro.obs import get_recorder
from repro.seeds.greedy import (
    SelectionResult,
    validate_budget,
    validate_candidates,
)
from repro.seeds.lazy import run_celf
from repro.seeds.objective import SeedSelectionObjective

__all__ = ["IncrementalCelfSelector"]


class IncrementalCelfSelector:
    """Warm-started CELF: pay only for candidates whose rows changed.

    Bind one selector to one objective for the lifetime of a system
    (it registers an invalidation listener on the objective's fidelity
    service, which holds a reference to it). Every :meth:`select` call
    runs a full CELF pass — only the empty-set scan is incremental.
    """

    def __init__(
        self,
        objective: SeedSelectionObjective,
        candidates: list[int] | None = None,
    ) -> None:
        self._objective = objective
        self._pool = sorted(validate_candidates(objective, 1, candidates))
        self._pool_set = set(self._pool)
        self._gains: dict[int, float] = {}
        self._dirty: set[int] = set(self._pool)
        self.rounds = 0
        objective.fidelity_service.add_row_invalidation_listener(
            self._on_rows_invalidated
        )

    @property
    def dirty_candidates(self) -> set[int]:
        """Candidates whose cached gains are stale right now."""
        return set(self._dirty)

    def _on_rows_invalidated(self, graph, roads) -> None:
        if graph is not None and graph is not self._objective.graph:
            return
        if roads is None:
            # Whole-graph invalidation: everything is dirty, and the
            # objective's own row memos are stale too.
            self._dirty.update(self._pool)
            self._objective.evict_rows(None)
        else:
            touched = [road for road in roads if road in self._pool_set]
            self._dirty.update(touched)
            self._objective.evict_rows(roads)

    def select(self, budget: int) -> SelectionResult:
        """Full CELF pass with a warm-started empty-set gain heap."""
        validate_budget(self._objective, budget)
        if len(self._pool) < budget:
            from repro.core.errors import SelectionError

            raise SelectionError(
                f"candidate pool of {len(self._pool)} cannot fill "
                f"budget {budget}"
            )
        recorder = get_recorder()
        self.rounds += 1
        with recorder.span(
            "seeds.reselect",
            budget=budget,
            pool=len(self._pool),
            dirty=len(self._dirty),
        ) as span:
            state = self._objective.new_state()
            reevaluated = 0
            for candidate in sorted(self._dirty):
                self._gains[candidate] = state.gain(candidate)
                reevaluated += 1
            self._dirty.clear()
            cached = len(self._pool) - reevaluated
            recorder.count("seeds.reselect.reevaluated", reevaluated)
            recorder.count("seeds.reselect.cached", cached)
            if self._pool:
                recorder.gauge(
                    "seeds.reselect.warm_fraction", cached / len(self._pool)
                )
            heap = [
                (-self._gains[candidate], candidate, 0)
                for candidate in self._pool
            ]
            heapq.heapify(heap)
            result = run_celf(
                self._objective,
                budget,
                heap,
                state,
                reevaluated,
                method="lazy-greedy-incremental",
            )
            span.set(evaluations=result.evaluations, reevaluated=reevaluated)
        return result
