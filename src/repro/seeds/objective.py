"""The seed-selection objective: probabilistic influence coverage.

A seed helps exactly to the extent that its evidence reaches other
roads, so the quality of a seed set ``S`` is measured by how well it
covers the network with influence::

    Q(S) = Σ_r w_r · (1 − Π_{u ∈ S} (1 − q(u → r)))

where ``q(u → r)`` derives from the best-path fidelity from seed ``u``
to road ``r`` over the correlation graph (the same influence notion the
fast Step-1 inference uses) and ``w_r`` is an optional road importance
weight. The inner product treats seeds as independent coverage trials —
the probabilistic-coverage form standard in influence maximisation.

**Influence calibration.** Raw trend fidelity ``q = 2p − 1`` measures
*sign* agreement, which under-states how much of a road's speed
variance a seed explains: for jointly Gaussian deviations the Pearson
correlation is ``ρ = sin(πq/2) ≥ q``. The default ``"variance"``
transform therefore scores a seed's influence as the variance explained
``ρ² = sin²(πq/2)``, which aligns the coverage objective with the
downstream Step-2 regression error (verified in experiment F5). The
``"fidelity"`` transform keeps raw ``q`` for analyses of the trend step
itself.

**Implementation.** Influence rows come from the shared
:class:`~repro.history.fidelity.FidelityCacheService` as dense numpy
arrays (one cache across selection, Step-1 inference and Step-2
regression; clones and partitioned selection share it for free), so a
marginal-gain query is one masked dot product and a seed addition is an
index-array residual update. The original dict-walk implementation is
the scalar reference behind ``use_kernel=False``; experiment F4 asserts
both produce byte-identical greedy/CELF seed sequences.

**Properties** (exploited by the greedy algorithms and property-tested
in the suite):

* *Monotone*: adding a seed never decreases Q.
* *Submodular*: the marginal gain of a seed shrinks as the set grows,
  because ``(1 − q)`` factors only ever multiply the residual down.

Hence plain greedy achieves the (1 − 1/e) approximation of Nemhauser et
al., and lazy evaluation (CELF) is valid. Maximising Q exactly is
NP-hard — see :mod:`repro.seeds.hardness` for the machine-checked
reduction from Set Cover.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.core.errors import SelectionError
from repro.history.correlation import CorrelationGraph
from repro.history.fidelity import (
    FidelityCacheService,
    WeakRowListener,
    get_fidelity_service,
)

#: Supported influence transforms (see module docstring).
INFLUENCE_TRANSFORMS = ("variance", "fidelity")


class CoverageState:
    """Mutable residual-coverage tracker for one growing seed set.

    ``residual[r] = Π_{u∈S} (1 − q(u→r))`` — the probability road ``r``
    is still *uncovered*. The state makes marginal-gain queries O(reach)
    and additions O(reach). Seed membership is tracked in a set
    alongside the ordered list, so the CELF inner loop's gain queries
    cost O(1) membership checks instead of O(K) list scans; adding an
    already-selected seed is a no-op (gain 0, state untouched).
    """

    def __init__(self, objective: "SeedSelectionObjective") -> None:
        self._objective = objective
        self.residual = np.ones(objective.num_roads)
        self.seeds: list[int] = []
        self._selected: set[int] = set()
        self.value = 0.0

    def gain(self, candidate: int) -> float:
        """Marginal gain of adding ``candidate`` to the current set."""
        if candidate in self._selected:
            return 0.0
        objective = self._objective
        if candidate not in objective.index:
            raise SelectionError(f"candidate {candidate} not in correlation graph")
        if objective.use_kernel:
            row = objective.influence_row(candidate)
            return float((objective.weights * self.residual) @ row)
        gain = 0.0
        weights = objective.weights
        index = objective.index
        for road, q in objective.influence_map(candidate).items():
            i = index[road]
            gain += weights[i] * self.residual[i] * q
        return gain

    def add(self, seed: int) -> float:
        """Add a seed; returns its realised marginal gain.

        Re-adding a seed already in the set returns 0 and leaves
        ``residual``, ``seeds`` and ``value`` unchanged.
        """
        gain = self.gain(seed)
        if seed in self._selected:
            return gain
        objective = self._objective
        if objective.use_kernel:
            row = objective.influence_row(seed)
            support = np.flatnonzero(row)
            self.residual[support] *= 1.0 - row[support]
        else:
            index = objective.index
            for road, q in objective.influence_map(seed).items():
                self.residual[index[road]] *= 1.0 - q
        self.seeds.append(seed)
        self._selected.add(seed)
        self.value += gain
        return gain


class SeedSelectionObjective:
    """Influence-coverage objective over a correlation graph.

    ``min_fidelity`` truncates influence propagation (matching the fast
    inference); ``road_weights`` defaults to uniform. A road always
    covers itself with fidelity 1, so Q(S) ≥ Σ_{u∈S} w_u.
    ``fidelity_service`` is the shared cross-stage influence cache
    (defaults to the process-wide service); ``use_kernel=False``
    switches the coverage state to the scalar dict-walk reference for
    differential testing.
    """

    def __init__(
        self,
        graph: CorrelationGraph,
        min_fidelity: float = 0.05,
        road_weights: dict[int, float] | None = None,
        transform: str = "variance",
        fidelity_service: FidelityCacheService | None = None,
        use_kernel: bool = True,
    ) -> None:
        if transform not in INFLUENCE_TRANSFORMS:
            raise SelectionError(
                f"unknown influence transform {transform!r}; "
                f"choose from {INFLUENCE_TRANSFORMS}"
            )
        self._graph = graph
        self._min_fidelity = min_fidelity
        self._transform = transform
        self._service = fidelity_service or get_fidelity_service()
        self.use_kernel = use_kernel
        # Influence rows are CSR-ordered; the objective adopts the same
        # (sorted road id) order so rows need no re-indexing.
        self._road_ids = list(self._service.csr(graph).road_ids)
        self.index: dict[int, int] = {road: i for i, road in enumerate(self._road_ids)}
        if road_weights is None:
            self.weights = np.ones(len(self._road_ids))
        else:
            missing = set(road_weights) - set(self._road_ids)
            if missing:
                raise SelectionError(
                    f"weights given for unknown roads {sorted(missing)[:5]}"
                )
            self.weights = np.array(
                [road_weights.get(road, 0.0) for road in self._road_ids]
            )
            if np.any(self.weights < 0):
                raise SelectionError("road weights must be non-negative")
        # Reference memos over the service cache (same arrays/views, no
        # second copy) so the CELF inner loop skips service bookkeeping.
        self._row_memo: dict[int, np.ndarray] = {}
        self._map_memo: dict[int, Mapping[int, float]] = {}
        # Keep the memos honest without requiring a re-selector to be
        # bound: when the service drops rows (streaming graph deltas,
        # targeted evictions), the matching memo entries go too.
        self._service.add_row_invalidation_listener(
            WeakRowListener(self._on_rows_invalidated)
        )

    def _on_rows_invalidated(self, graph, roads) -> None:
        if graph is not None and graph is not self._graph:
            return
        self.evict_rows(roads)

    @property
    def graph(self) -> CorrelationGraph:
        return self._graph

    @property
    def fidelity_service(self) -> FidelityCacheService:
        return self._service

    @property
    def num_roads(self) -> int:
        return len(self._road_ids)

    @property
    def road_ids(self) -> list[int]:
        return list(self._road_ids)

    @property
    def max_value(self) -> float:
        """The objective's ceiling: every road fully covered."""
        return float(self.weights.sum())

    @property
    def transform(self) -> str:
        return self._transform

    @property
    def min_fidelity(self) -> float:
        return self._min_fidelity

    def influence_row(self, road: int) -> np.ndarray:
        """Dense transformed influence row for ``road`` (read-only).

        Indexed by :attr:`index` positions; entry ``index[road]`` is the
        self-influence 1 and unreachable roads are 0.
        """
        row = self._row_memo.get(road)
        if row is None:
            row = self._service.row(
                self._graph,
                road,
                min_fidelity=self._min_fidelity,
                transform=self._transform,
            )
            self._row_memo[road] = row
        return row

    def influence_map(self, road: int) -> Mapping[int, float]:
        """road -> transformed influence from ``road`` (cached, incl. itself).

        A read-only mapping view over the shared cache — mutating it is
        a ``TypeError``, which is what keeps the cache unpoisonable.
        """
        mapping = self._map_memo.get(road)
        if mapping is None:
            mapping = self._service.fidelity_map(
                self._graph,
                road,
                min_fidelity=self._min_fidelity,
                transform=self._transform,
            )
            self._map_memo[road] = mapping
        return mapping

    def evict_rows(self, roads: Iterable[int] | None = None) -> None:
        """Drop memoized influence rows/maps (all, or specific sources).

        The memos are reference views over the shared service cache;
        when the service invalidates rows (see
        :meth:`~repro.history.fidelity.FidelityCacheService.
        invalidate_rows`) the corresponding memo entries must go too,
        or the objective would keep serving the dropped rows forever.
        """
        if roads is None:
            self._row_memo.clear()
            self._map_memo.clear()
            return
        for road in roads:
            self._row_memo.pop(road, None)
            self._map_memo.pop(road, None)

    def clone_with_weights(
        self, road_weights: dict[int, float]
    ) -> "SeedSelectionObjective":
        """A same-settings objective with different road weights.

        The influence cache is shared through the fidelity service
        (influence depends only on the graph, floor and transform),
        which is what makes partitioned selection cheap.
        """
        return SeedSelectionObjective(
            self._graph,
            min_fidelity=self._min_fidelity,
            road_weights=road_weights,
            transform=self._transform,
            fidelity_service=self._service,
            use_kernel=self.use_kernel,
        )

    def new_state(self) -> CoverageState:
        """A fresh empty-set coverage state."""
        return CoverageState(self)

    def value(self, seeds: Iterable[int]) -> float:
        """Q(S) computed from scratch (use CoverageState when iterating)."""
        state = self.new_state()
        for seed in dict.fromkeys(seeds):  # preserve order, drop duplicates
            state.add(seed)
        return state.value

    def coverage_fraction(self, seeds: Iterable[int]) -> float:
        """Q(S) normalised by its ceiling, in [0, 1]."""
        ceiling = self.max_value
        if ceiling <= 0:
            raise SelectionError("objective ceiling is zero; no weighted roads")
        return self.value(seeds) / ceiling
