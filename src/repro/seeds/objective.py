"""The seed-selection objective: probabilistic influence coverage.

A seed helps exactly to the extent that its evidence reaches other
roads, so the quality of a seed set ``S`` is measured by how well it
covers the network with influence::

    Q(S) = Σ_r w_r · (1 − Π_{u ∈ S} (1 − q(u → r)))

where ``q(u → r)`` derives from the best-path fidelity from seed ``u``
to road ``r`` over the correlation graph (the same influence notion the
fast Step-1 inference uses) and ``w_r`` is an optional road importance
weight. The inner product treats seeds as independent coverage trials —
the probabilistic-coverage form standard in influence maximisation.

**Influence calibration.** Raw trend fidelity ``q = 2p − 1`` measures
*sign* agreement, which under-states how much of a road's speed
variance a seed explains: for jointly Gaussian deviations the Pearson
correlation is ``ρ = sin(πq/2) ≥ q``. The default ``"variance"``
transform therefore scores a seed's influence as the variance explained
``ρ² = sin²(πq/2)``, which aligns the coverage objective with the
downstream Step-2 regression error (verified in experiment F5). The
``"fidelity"`` transform keeps raw ``q`` for analyses of the trend step
itself.

**Properties** (exploited by the greedy algorithms and property-tested
in the suite):

* *Monotone*: adding a seed never decreases Q.
* *Submodular*: the marginal gain of a seed shrinks as the set grows,
  because ``(1 − q)`` factors only ever multiply the residual down.

Hence plain greedy achieves the (1 − 1/e) approximation of Nemhauser et
al., and lazy evaluation (CELF) is valid. Maximising Q exactly is
NP-hard — see :mod:`repro.seeds.hardness` for the machine-checked
reduction from Set Cover.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.core.errors import SelectionError
from repro.history.correlation import CorrelationGraph
from repro.trend.propagation import propagate_fidelity

#: Supported influence transforms (see module docstring).
INFLUENCE_TRANSFORMS = ("variance", "fidelity")


class CoverageState:
    """Mutable residual-coverage tracker for one growing seed set.

    ``residual[r] = Π_{u∈S} (1 − q(u→r))`` — the probability road ``r``
    is still *uncovered*. The state makes marginal-gain queries O(reach)
    and additions O(reach).
    """

    def __init__(self, objective: "SeedSelectionObjective") -> None:
        self._objective = objective
        self.residual = np.ones(objective.num_roads)
        self.seeds: list[int] = []
        self.value = 0.0

    def gain(self, candidate: int) -> float:
        """Marginal gain of adding ``candidate`` to the current set."""
        if candidate in self._objective.index and candidate not in self.seeds:
            gain = 0.0
            weights = self._objective.weights
            index = self._objective.index
            for road, q in self._objective.influence_map(candidate).items():
                i = index[road]
                gain += weights[i] * self.residual[i] * q
            return gain
        if candidate in self.seeds:
            return 0.0
        raise SelectionError(f"candidate {candidate} not in correlation graph")

    def add(self, seed: int) -> float:
        """Add a seed; returns its realised marginal gain."""
        gain = self.gain(seed)
        index = self._objective.index
        for road, q in self._objective.influence_map(seed).items():
            self.residual[index[road]] *= 1.0 - q
        self.seeds.append(seed)
        self.value += gain
        return gain


class SeedSelectionObjective:
    """Influence-coverage objective over a correlation graph.

    ``min_fidelity`` truncates influence propagation (matching the fast
    inference); ``road_weights`` defaults to uniform. A road always
    covers itself with fidelity 1, so Q(S) ≥ Σ_{u∈S} w_u.
    """

    def __init__(
        self,
        graph: CorrelationGraph,
        min_fidelity: float = 0.05,
        road_weights: dict[int, float] | None = None,
        transform: str = "variance",
    ) -> None:
        if transform not in INFLUENCE_TRANSFORMS:
            raise SelectionError(
                f"unknown influence transform {transform!r}; "
                f"choose from {INFLUENCE_TRANSFORMS}"
            )
        self._graph = graph
        self._min_fidelity = min_fidelity
        self._transform = transform
        self._road_ids = graph.road_ids
        self.index: dict[int, int] = {road: i for i, road in enumerate(self._road_ids)}
        if road_weights is None:
            self.weights = np.ones(len(self._road_ids))
        else:
            missing = set(road_weights) - set(self._road_ids)
            if missing:
                raise SelectionError(
                    f"weights given for unknown roads {sorted(missing)[:5]}"
                )
            self.weights = np.array(
                [road_weights.get(road, 0.0) for road in self._road_ids]
            )
            if np.any(self.weights < 0):
                raise SelectionError("road weights must be non-negative")
        self._influence_cache: dict[int, dict[int, float]] = {}

    @property
    def graph(self) -> CorrelationGraph:
        return self._graph

    @property
    def num_roads(self) -> int:
        return len(self._road_ids)

    @property
    def road_ids(self) -> list[int]:
        return list(self._road_ids)

    @property
    def max_value(self) -> float:
        """The objective's ceiling: every road fully covered."""
        return float(self.weights.sum())

    @property
    def transform(self) -> str:
        return self._transform

    @property
    def min_fidelity(self) -> float:
        return self._min_fidelity

    def influence_map(self, road: int) -> dict[int, float]:
        """road -> transformed influence from ``road`` (cached, incl. itself)."""
        cached = self._influence_cache.get(road)
        if cached is None:
            raw = propagate_fidelity(
                self._graph, road, min_fidelity=self._min_fidelity
            )
            if self._transform == "variance":
                cached = {
                    r: math.sin(math.pi * q / 2.0) ** 2 for r, q in raw.items()
                }
            else:
                cached = raw
            self._influence_cache[road] = cached
        return cached

    def clone_with_weights(
        self, road_weights: dict[int, float]
    ) -> "SeedSelectionObjective":
        """A same-settings objective with different road weights.

        The influence cache is shared (influence depends only on the
        graph, floor and transform), which is what makes partitioned
        selection cheap.
        """
        clone = SeedSelectionObjective(
            self._graph,
            min_fidelity=self._min_fidelity,
            road_weights=road_weights,
            transform=self._transform,
        )
        clone._influence_cache = self._influence_cache
        return clone

    def new_state(self) -> CoverageState:
        """A fresh empty-set coverage state."""
        return CoverageState(self)

    def value(self, seeds: Iterable[int]) -> float:
        """Q(S) computed from scratch (use CoverageState when iterating)."""
        state = self.new_state()
        for seed in dict.fromkeys(seeds):  # preserve order, drop duplicates
            state.add(seed)
        return state.value

    def coverage_fraction(self, seeds: Iterable[int]) -> float:
        """Q(S) normalised by its ceiling, in [0, 1]."""
        ceiling = self.max_value
        if ceiling <= 0:
            raise SelectionError("objective ceiling is zero; no weighted roads")
        return self.value(seeds) / ceiling
