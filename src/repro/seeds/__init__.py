"""Seed selection: objective, greedy family, baselines, NP-hardness reduction."""

from repro.seeds.baselines import (
    betweenness_select,
    k_center_select,
    make_objective,
    random_select,
    top_degree_select,
)
from repro.seeds.costaware import (
    DEFAULT_CLASS_COSTS,
    cost_aware_select,
    default_road_costs,
    selection_cost,
)
from repro.seeds.greedy import (
    SelectionResult,
    greedy_select,
    validate_budget,
    validate_candidates,
)
from repro.seeds.hardness import (
    SeedSelectionHardnessInstance,
    covers_all_elements,
    min_seed_budget,
    min_set_cover_size,
    set_cover_to_seed_selection,
)
from repro.seeds.lazy import lazy_greedy_select
from repro.seeds.objective import (
    INFLUENCE_TRANSFORMS,
    CoverageState,
    SeedSelectionObjective,
)
from repro.seeds.parallel import DistrictPool, parallel_partition_select
from repro.seeds.partition import (
    allocate_budget,
    partition_graph,
    partition_greedy_select,
)
from repro.seeds.reselect import IncrementalCelfSelector

__all__ = [
    "CoverageState",
    "DEFAULT_CLASS_COSTS",
    "DistrictPool",
    "INFLUENCE_TRANSFORMS",
    "IncrementalCelfSelector",
    "cost_aware_select",
    "default_road_costs",
    "selection_cost",
    "SeedSelectionHardnessInstance",
    "SeedSelectionObjective",
    "SelectionResult",
    "allocate_budget",
    "betweenness_select",
    "covers_all_elements",
    "greedy_select",
    "k_center_select",
    "lazy_greedy_select",
    "make_objective",
    "min_seed_budget",
    "min_set_cover_size",
    "parallel_partition_select",
    "partition_graph",
    "partition_greedy_select",
    "random_select",
    "set_cover_to_seed_selection",
    "top_degree_select",
    "validate_budget",
    "validate_candidates",
]
