"""Seed-selection baselines the greedy family is compared against (F5).

* random — uniform without replacement (seeded);
* top-degree — highest correlation-graph degree first;
* betweenness — highest betweenness centrality in the correlation graph;
* k-center — spatial farthest-point traversal over segment midpoints,
  the "spread the sensors out evenly" heuristic.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import SelectionError
from repro.history.correlation import CorrelationGraph
from repro.roadnet.network import RoadNetwork
from repro.seeds.greedy import SelectionResult
from repro.seeds.objective import SeedSelectionObjective


def _as_result(
    method: str, objective: SeedSelectionObjective, seeds: list[int]
) -> SelectionResult:
    state = objective.new_state()
    gains: list[float] = []
    values: list[float] = []
    for seed in seeds:
        gains.append(state.add(seed))
        values.append(state.value)
    return SelectionResult(
        method=method,
        seeds=tuple(seeds),
        gains=tuple(gains),
        values=tuple(values),
        evaluations=0,
    )


def _check_budget(budget: int, population: int) -> None:
    if budget < 1:
        raise SelectionError(f"budget must be >= 1, got {budget}")
    if budget > population:
        raise SelectionError(f"budget {budget} exceeds {population} roads")


def random_select(
    objective: SeedSelectionObjective, budget: int, seed: int = 0
) -> SelectionResult:
    """Uniform random seeds, deterministic given ``seed``."""
    roads = objective.road_ids
    _check_budget(budget, len(roads))
    rng = np.random.default_rng(seed)
    picks = [int(r) for r in rng.choice(roads, size=budget, replace=False)]
    return _as_result("random", objective, picks)


def top_degree_select(
    objective: SeedSelectionObjective, budget: int
) -> SelectionResult:
    """Highest correlation degree first (hubs of the correlation graph)."""
    graph = objective.graph
    roads = objective.road_ids
    _check_budget(budget, len(roads))
    ranked = sorted(roads, key=lambda r: (-graph.degree(r), r))
    return _as_result("top-degree", objective, ranked[:budget])


def betweenness_select(
    objective: SeedSelectionObjective, budget: int
) -> SelectionResult:
    """Highest betweenness centrality in the correlation graph.

    Uses networkx; edge weights are ignored (topological centrality),
    which matches how this baseline is typically configured.
    """
    import networkx as nx

    graph = objective.graph
    roads = objective.road_ids
    _check_budget(budget, len(roads))
    g = nx.Graph()
    g.add_nodes_from(roads)
    g.add_edges_from((e.road_u, e.road_v) for e in graph.edges())
    centrality = nx.betweenness_centrality(g)
    ranked = sorted(roads, key=lambda r: (-centrality[r], r))
    return _as_result("betweenness", objective, ranked[:budget])


def k_center_select(
    objective: SeedSelectionObjective,
    budget: int,
    network: RoadNetwork,
) -> SelectionResult:
    """Spatial k-center: farthest-point traversal over road midpoints.

    Starts from the road closest to the network centroid, then
    repeatedly adds the road farthest from all chosen ones.
    """
    roads = objective.road_ids
    _check_budget(budget, len(roads))
    midpoints = {road: network.segment_midpoint(road) for road in roads}
    centre = network.bounding_box().center
    first = min(roads, key=lambda r: (midpoints[r].distance_to(centre), r))
    chosen = [first]
    min_dist = {
        road: midpoints[road].distance_to(midpoints[first]) for road in roads
    }
    while len(chosen) < budget:
        farthest = max(roads, key=lambda r: (min_dist[r], -r))
        chosen.append(farthest)
        for road in roads:
            d = midpoints[road].distance_to(midpoints[farthest])
            if d < min_dist[road]:
                min_dist[road] = d
    return _as_result("k-center", objective, chosen)


def make_objective(
    graph: CorrelationGraph, min_fidelity: float = 0.05
) -> SeedSelectionObjective:
    """Convenience constructor used by benchmarks and examples."""
    return SeedSelectionObjective(graph, min_fidelity=min_fidelity)
