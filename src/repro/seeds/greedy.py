"""Greedy seed selection.

Plain greedy: at every step, scan all remaining candidates, evaluate the
exact marginal gain against the current coverage state, and take the
best. Because the objective is monotone submodular, this gives the
classic (1 − 1/e) ≈ 0.632 approximation guarantee [Nemhauser, Wolsey,
Fisher 1978]. It is the *correct but slow* contender in experiment F4 —
O(K · n · reach) — which the lazy and partition variants accelerate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.clock import get_clock
from repro.core.errors import SelectionError
from repro.obs import get_recorder
from repro.seeds.objective import SeedSelectionObjective


@dataclass(frozen=True)
class SelectionResult:
    """The outcome of a seed-selection run.

    ``seeds`` is in pick order; ``gains[i]`` is the marginal gain
    realised by ``seeds[i]``; ``values[i]`` is the objective after the
    first ``i + 1`` picks; ``evaluations`` counts marginal-gain queries
    (the work measure used by the efficiency experiment F4).
    """

    method: str
    seeds: tuple[int, ...]
    gains: tuple[float, ...]
    values: tuple[float, ...]
    evaluations: int

    def __post_init__(self) -> None:
        if len(self.seeds) != len(self.gains) or len(self.seeds) != len(self.values):
            raise SelectionError("seeds, gains and values must align")

    @property
    def final_value(self) -> float:
        return self.values[-1] if self.values else 0.0


def validate_budget(objective: SeedSelectionObjective, budget: int) -> None:
    """Shared budget validation for all selection algorithms.

    Rejections say *why*: the requested K and the candidate-graph size
    are always in the message, and each rejection bumps the
    ``seeds.budget_rejected`` counter so operators can see bad budget
    requests in the metrics, not just in logs.
    """
    if budget < 1:
        get_recorder().count("seeds.budget_rejected", reason="non_positive")
        raise SelectionError(
            f"budget must be >= 1, got K={budget} "
            f"({objective.num_roads} candidate roads available)"
        )
    if budget > objective.num_roads:
        get_recorder().count("seeds.budget_rejected", reason="exceeds_graph")
        raise SelectionError(
            f"budget K={budget} exceeds the {objective.num_roads} candidate "
            "roads in the correlation graph"
        )


def validate_candidates(
    objective: SeedSelectionObjective,
    budget: int,
    candidates: list[int] | None,
) -> list[int]:
    """Validate an explicit candidate pool and return it as a list.

    An invalid pool used to surface as a raw ``KeyError`` deep inside the
    objective (unknown road id) or silently double-count marginal gains
    (duplicate id seeded twice into the CELF heap). Both are caller bugs,
    so they are rejected up front with a typed :class:`SelectionError`
    naming the offending ids. ``None`` means "all roads" and is returned
    as the objective's own road list.
    """
    if candidates is None:
        pool = objective.road_ids
    else:
        pool = list(candidates)
        if not pool:
            get_recorder().count("seeds.candidates_rejected", reason="empty")
            raise SelectionError(
                f"candidate pool is empty (budget K={budget}, "
                f"{objective.num_roads} roads in the correlation graph)"
            )
        seen: set[int] = set()
        duplicates: set[int] = set()
        for road in pool:
            if road in seen:
                duplicates.add(road)
            seen.add(road)
        if duplicates:
            get_recorder().count("seeds.candidates_rejected", reason="duplicate")
            raise SelectionError(
                f"candidate pool contains duplicate road ids: "
                f"{sorted(duplicates)[:10]}"
            )
        index = objective.index
        unknown = sorted(road for road in seen if road not in index)
        if unknown:
            get_recorder().count("seeds.candidates_rejected", reason="unknown")
            raise SelectionError(
                f"candidate pool references roads absent from the "
                f"correlation graph: {unknown[:10]}"
            )
    if len(pool) < budget:
        raise SelectionError(
            f"candidate pool of {len(pool)} cannot fill budget {budget}"
        )
    return pool


def greedy_select(
    objective: SeedSelectionObjective,
    budget: int,
    candidates: list[int] | None = None,
) -> SelectionResult:
    """Plain greedy: exact best marginal gain at every step."""
    validate_budget(objective, budget)
    pool = validate_candidates(objective, budget, candidates)

    recorder = get_recorder()
    clock = get_clock()
    state = objective.new_state()
    remaining = set(pool)
    seeds: list[int] = []
    gains: list[float] = []
    values: list[float] = []
    evaluations = 0
    for _ in range(budget):
        pick_start = clock.monotonic()
        best_road = None
        best_gain = -1.0
        for candidate in sorted(remaining):
            gain = state.gain(candidate)
            evaluations += 1
            if gain > best_gain:
                best_gain = gain
                best_road = candidate
        assert best_road is not None
        state.add(best_road)
        remaining.discard(best_road)
        seeds.append(best_road)
        gains.append(best_gain)
        values.append(state.value)
        recorder.observe(
            "seeds.pick_seconds", clock.monotonic() - pick_start, method="greedy"
        )
    recorder.count("seeds.evaluations", evaluations, method="greedy")
    return SelectionResult(
        method="greedy",
        seeds=tuple(seeds),
        gains=tuple(gains),
        values=tuple(values),
        evaluations=evaluations,
    )
