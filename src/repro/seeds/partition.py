"""Partition-based approximate seed selection.

The fastest selection variant: split the correlation graph into
``num_partitions`` connected chunks (BFS-grown, deterministic), give
each chunk a budget share proportional to its size, and run lazy greedy
*inside* each chunk with influence restricted to chunk members.

Rationale: influence is local (pruned at a fidelity floor), so the gain
a seed earns outside its own neighbourhood is limited; ignoring
cross-partition coverage loses little objective value but makes every
marginal-gain evaluation touch only a chunk. Experiment F4 measures the
speed-up and F5 the objective cost versus exact greedy.
"""

from __future__ import annotations

from collections import deque

from repro.core.errors import SelectionError
from repro.seeds.greedy import SelectionResult, validate_budget
from repro.seeds.lazy import lazy_greedy_select
from repro.seeds.objective import SeedSelectionObjective


def partition_graph(
    objective: SeedSelectionObjective, num_partitions: int
) -> list[list[int]]:
    """Deterministic BFS-grown partition of the correlation graph.

    Chunks are grown to ``ceil(n / num_partitions)`` roads from the
    smallest-id unassigned road, following correlation edges (strongest
    first, as ordered by the graph), so chunks are connected whenever the
    graph is. Returns non-empty chunks; there may be fewer than requested
    when the graph is small.
    """
    if num_partitions < 1:
        raise SelectionError(f"num_partitions must be >= 1, got {num_partitions}")
    graph = objective.graph
    roads = graph.road_ids
    target = -(-len(roads) // num_partitions)  # ceil division
    unassigned = set(roads)
    partitions: list[list[int]] = []
    while unassigned:
        start = min(unassigned)
        chunk: list[int] = []
        # deque.popleft() is O(1); a list.pop(0) here is O(queue) and made
        # the whole partition quadratic at metropolitan scale (50k+ roads).
        queue: deque[int] = deque([start])
        unassigned.discard(start)
        while queue and len(chunk) < target:
            road = queue.popleft()
            chunk.append(road)
            for neighbour in graph.neighbour_ids(road):
                if neighbour in unassigned:
                    unassigned.discard(neighbour)
                    queue.append(neighbour)
        # Roads pulled into the queue but not placed return to the pool.
        unassigned.update(queue)
        partitions.append(sorted(chunk))
    return partitions


def allocate_budget(partitions: list[list[int]], budget: int) -> list[int]:
    """Largest-remainder proportional budget split, ≥0 per chunk.

    Each chunk gets at most its own size; the total always equals
    ``budget`` (which callers must ensure does not exceed total roads).
    """
    total = sum(len(p) for p in partitions)
    if budget > total:
        raise SelectionError(f"budget {budget} exceeds {total} partitioned roads")
    exact = [budget * len(p) / total for p in partitions]
    shares = [min(len(p), int(e)) for p, e in zip(partitions, exact)]
    remainders = sorted(
        range(len(partitions)),
        key=lambda i: (exact[i] - int(exact[i]), -len(partitions[i])),
        reverse=True,
    )
    shortfall = budget - sum(shares)
    for i in remainders:
        if shortfall == 0:
            break
        room = len(partitions[i]) - shares[i]
        if room > 0:
            add = min(room, shortfall)
            shares[i] += add
            shortfall -= add
    if shortfall:
        # Distribute anything left to whichever chunks still have room.
        for i in range(len(partitions)):
            room = len(partitions[i]) - shares[i]
            add = min(room, shortfall)
            shares[i] += add
            shortfall -= add
            if shortfall == 0:
                break
    return shares


def partition_greedy_select(
    objective: SeedSelectionObjective,
    budget: int,
    num_partitions: int = 8,
) -> SelectionResult:
    """Partitioned lazy greedy; near-greedy quality at a fraction of cost."""
    validate_budget(objective, budget)
    partitions = partition_graph(objective, num_partitions)
    shares = allocate_budget(partitions, budget)

    seeds: list[int] = []
    evaluations = 0
    for chunk, share in zip(partitions, shares):
        if share == 0:
            continue
        member_weights = {
            road: float(objective.weights[objective.index[road]]) for road in chunk
        }
        local = objective.clone_with_weights(member_weights)
        result = lazy_greedy_select(local, share, candidates=chunk)
        seeds.extend(result.seeds)
        evaluations += result.evaluations

    # Score the combined set against the *global* objective so results
    # are comparable across methods.
    state = objective.new_state()
    gains: list[float] = []
    values: list[float] = []
    for seed in seeds:
        gains.append(state.add(seed))
        values.append(state.value)
    return SelectionResult(
        method="partition-greedy",
        seeds=tuple(seeds),
        gains=tuple(gains),
        values=tuple(values),
        evaluations=evaluations,
    )

